#!/usr/bin/env python3
"""Validate a metrics snapshot file and its Prometheus rendering.

CI's metrics-smoke job runs a small sweep with ``--metrics`` and feeds
the resulting ``metrics.json`` through this script, which checks:

1. the file parses and passes the registry schema check
   (:func:`repro.obs.metrics.validate_snapshot` — sections present,
   non-negative counters, histogram bucket sanity);
2. the Prometheus text rendering of the same snapshot is well-formed:
   every sample line is ``series value`` with a finite number, each
   histogram's ``_bucket`` series is cumulative non-decreasing, its
   ``le="+Inf"`` bucket equals the ``_count`` sample, and every
   counter/gauge value round-trips exactly;
3. any ``--expect-counter SERIES=VALUE`` / ``--min-counter
   SERIES=VALUE`` invariants hold (the smoke job pins warm-cache
   hit counts this way, proving registry and executor stats agree).

Exit 0 with a one-line summary on success, 1 with one line per
violation otherwise.

Usage:
    python scripts/check_metrics.py results/metrics.json \\
        --expect-counter 'repro_cellcache_fetch_total{outcome="hit"}=4'
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.metrics import (  # noqa: E402
    parse_series_key,
    render_prometheus,
    validate_snapshot,
)


def check_prometheus(snap: dict) -> List[str]:
    """Well-formedness violations in the snapshot's text rendering."""
    errors: List[str] = []
    samples: Dict[str, float] = {}
    for lineno, line in enumerate(
        render_prometheus(snap).splitlines(), 1
    ):
        if not line or line.startswith("#"):
            continue
        series, _, raw = line.rpartition(" ")
        try:
            value = float(raw)
        except ValueError:
            errors.append(f"prometheus line {lineno}: bad value {raw!r}")
            continue
        if not series or not math.isfinite(value):
            errors.append(f"prometheus line {lineno}: malformed {line!r}")
            continue
        if series in samples:
            errors.append(f"prometheus: duplicate series {series}")
        samples[series] = value

    for key, value in snap.get("counters", {}).items():
        if samples.get(key) != float(value):
            errors.append(
                f"counter {key}: rendered {samples.get(key)}, "
                f"snapshot {value}"
            )
    for key, value in snap.get("gauges", {}).items():
        if samples.get(key) != float(value):
            errors.append(
                f"gauge {key}: rendered {samples.get(key)}, "
                f"snapshot {value}"
            )
    for key, h in snap.get("histograms", {}).items():
        name, labels = parse_series_key(key)
        cumulative = -1.0
        for series, value in samples.items():
            sname, slabels = parse_series_key(series)
            if sname != name + "_bucket":
                continue
            if {k: v for k, v in slabels.items() if k != "le"} != labels:
                continue
            if value < cumulative:
                errors.append(
                    f"histogram {key}: bucket le={slabels.get('le')} "
                    f"not cumulative ({value} < {cumulative})"
                )
            cumulative = value
        count_key = None
        for series in samples:
            sname, slabels = parse_series_key(series)
            if sname == name + "_count" and slabels == labels:
                count_key = series
        if count_key is None:
            errors.append(f"histogram {key}: no _count sample")
        elif samples[count_key] != cumulative:
            errors.append(
                f"histogram {key}: +Inf bucket {cumulative} != "
                f"_count {samples[count_key]}"
            )
    return errors


def _parse_expectations(pairs, flag: str) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for pair in pairs:
        series, sep, raw = pair.rpartition("=")
        if not sep or not series:
            raise SystemExit(f"{flag} wants SERIES=VALUE, got {pair!r}")
        out[series] = float(raw)
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("snapshot", type=Path,
                        help="metrics JSON snapshot (from --metrics)")
    parser.add_argument(
        "--expect-counter", action="append", default=[],
        metavar="SERIES=VALUE",
        help="require the counter series to equal VALUE exactly "
        "(repeatable)",
    )
    parser.add_argument(
        "--min-counter", action="append", default=[],
        metavar="SERIES=VALUE",
        help="require the counter series to be at least VALUE "
        "(repeatable)",
    )
    args = parser.parse_args(argv)

    try:
        snap = json.loads(args.snapshot.read_text())
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.snapshot}: {exc}",
              file=sys.stderr)
        return 1
    errors = validate_snapshot(snap)
    if not errors:
        errors.extend(check_prometheus(snap))
        counters = snap.get("counters", {})
        for series, want in _parse_expectations(
            args.expect_counter, "--expect-counter"
        ).items():
            have = counters.get(series)
            if have != want:
                errors.append(
                    f"counter {series}: {have} (expected exactly {want})"
                )
        for series, want in _parse_expectations(
            args.min_counter, "--min-counter"
        ).items():
            have = float(counters.get(series, 0.0))
            if have < want:
                errors.append(
                    f"counter {series}: {have} (expected >= {want})"
                )
    for err in errors:
        print(f"error: {err}", file=sys.stderr)
    if errors:
        print(f"{len(errors)} violation(s)", file=sys.stderr)
        return 1
    print(
        f"{args.snapshot}: {len(snap.get('counters', {}))} counters, "
        f"{len(snap.get('gauges', {}))} gauges, "
        f"{len(snap.get('histograms', {}))} histograms ok"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
