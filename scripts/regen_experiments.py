#!/usr/bin/env python3
"""Regenerate the raw data behind EXPERIMENTS.md.

Runs the core sweeps (Table-1 rows, the Theorem-1 frontier, the
Theorem-2 points) and writes JSON result files under ``results/``.
A later run can be compared against a stored baseline with
``--compare`` to spot behavioural drift.

Usage:
    python scripts/regen_experiments.py [--outdir results] [--compare]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.child_encoding import ChildEncodingAdvice
from repro.core.dfs_wakeup import DfsWakeUp
from repro.core.fip06 import Fip06TreeAdvice
from repro.core.spanner_advice import LogSpannerAdvice
from repro.core.sqrt_advice import SqrtThresholdAdvice
from repro.experiments.storage import compare_records, load_records, save_records
from repro.experiments.sweeps import er_single_wake, sweep
from repro.experiments.table1 import measure_table1
from repro.lowerbounds.theorem1 import run_prefix_tradeoff
from repro.lowerbounds.theorem2 import OneShotProbe, run_time_restricted
from repro.models.knowledge import Knowledge

SIZES = [64, 128, 256, 512]

SWEEPS = {
    "corollary1": (Fip06TreeAdvice, {}),
    "theorem5a": (SqrtThresholdAdvice, {}),
    "theorem5b": (ChildEncodingAdvice, {}),
    "corollary2": (LogSpannerAdvice, {}),
}


def regen(outdir: Path, compare: bool) -> int:
    outdir.mkdir(parents=True, exist_ok=True)
    drift_report = []

    def emit(name: str, records, params):
        path = outdir / f"{name}.json"
        if compare and path.exists():
            old = load_records(path)
            new = {"records": [r if isinstance(r, dict) else r.__dict__ for r in records]}
            drift_report.extend(
                f"{name}: {line}"
                for line in compare_records(old, new, key="messages")
            )
        save_records(path, records, experiment=name, params=params)
        print(f"wrote {path} ({len(records)} records)")

    # KT0 CONGEST advising-scheme sweeps
    for name, (factory, extra) in SWEEPS.items():
        rows = sweep(
            factory,
            er_single_wake(avg_degree=6.0, seed=13),
            sizes=SIZES,
            knowledge=Knowledge.KT0,
            bandwidth="CONGEST",
            trials=3,
            seed=2,
            **extra,
        )
        emit(name, rows, {"sizes": SIZES, "workload": "er_single_wake(6.0)"})

    # Theorem 3 (async KT1 LOCAL)
    rows = sweep(
        DfsWakeUp,
        er_single_wake(avg_degree=6.0, seed=13),
        sizes=SIZES,
        knowledge=Knowledge.KT1,
        bandwidth="LOCAL",
        trials=3,
        seed=2,
    )
    emit("theorem3", rows, {"sizes": SIZES})

    # Theorem-1 frontier
    points = run_prefix_tradeoff(n=48, betas=[0, 1, 2, 3, 4, 5], trials=2, seed=3)
    emit("theorem1_frontier", points, {"n": 48})

    # Theorem-2 matching upper bound
    points2 = [
        run_time_restricted(3, q, OneShotProbe(), seed=q) for q in (3, 4, 5, 7)
    ]
    emit("theorem2_oneshot", points2, {"k": 3, "qs": [3, 4, 5, 7]})

    # Table 1 snapshot
    t1 = measure_table1(n=200, seed=4)
    emit("table1", t1, {"n": 200, "seed": 4})

    if drift_report:
        print("\nDRIFT vs stored baseline:")
        for line in drift_report:
            print(" ", line)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outdir", type=Path, default=Path("results"))
    parser.add_argument(
        "--compare", action="store_true",
        help="diff against existing files before overwriting",
    )
    args = parser.parse_args(argv)
    return regen(args.outdir, args.compare)


if __name__ == "__main__":
    sys.exit(main())
