#!/usr/bin/env python3
"""Compare a benchmark run against its committed baseline.

Guards the perf-sensitive layers in CI.  Profiles:

* ``--profile engine`` (default) — the engine fast lane.
  ``benchmarks/bench_engine_hotpath.py`` cases keyed by
  ``(algorithm, engine, n)``; the guarded metric is
  ``events_per_sec`` against ``BENCH_engine.json``.
* ``--profile topology`` — the compiled-topology cache.
  ``benchmarks/bench_topology_compile.py`` cases keyed by
  ``(workload, n)``; the guarded metric is ``warm_speedup``
  (legacy-rebuild time over warm-fetch time) against
  ``BENCH_topology.json``.
* ``--profile check`` — the schedule explorer / worst-case search.
  ``benchmarks/bench_schedule_search.py`` cases keyed by
  ``(mode, algorithm, n)``; the guarded metric is
  ``schedules_per_sec`` against ``BENCH_check.json``.
* ``--profile bulk`` — the vectorized bulk frontier engine.
  ``benchmarks/bench_bulk_engine.py`` cases keyed by
  ``(algorithm, engine, n)``; the guarded metric is
  ``events_per_sec`` against ``BENCH_bulk.json`` (which carries both
  lanes, so a regression in either the sync comparison point or the
  bulk lane itself trips the gate).

The script fails (exit 1) when

1. either file is missing, unparsable, or missing the profile's
   required case fields, or
2. any case present in both files regressed by more than
   ``--max-regression`` (default 0.30, i.e. the metric below 70% of
   the baseline's).

Cases present in only one file are reported but not fatal: the
baseline is refreshed deliberately (rerun the bench with
``--out <baseline>`` and commit) and may trail newly added cases.
Faster-than-baseline results never fail — shared CI runners are noisy
in both directions, which is also why the default tolerance is as wide
as 30%: this catches "the fast lane fell off" (2x), not single-digit
jitter.

Usage:
    python scripts/check_bench_baseline.py CANDIDATE
        [--profile {engine,topology}] [--baseline PATH]
        [--max-regression FRACTION]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

# The profile registry (baseline file, case key, guarded metric,
# required fields) lives in repro.analysis.perf — the same source the
# unified perf-ledger gate reads — so the two checkers can never drift.
from repro.analysis.perf import BENCH_SCHEMAS, PROFILES  # noqa: E402


def load_cases(path: Path, profile: dict, errors: list,
               profile_name: str = "") -> dict:
    """Map the profile's case key -> case dict, validating fields.

    Accepts both bench envelopes: schema 1 (legacy, no ``profile``
    field) and schema 2 (which declares its profile — validated
    against the requested one when present).
    """
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        errors.append(f"{path}: missing")
        return {}
    except json.JSONDecodeError as exc:
        errors.append(f"{path}: not valid JSON ({exc})")
        return {}
    schema = payload.get("schema")
    if schema not in BENCH_SCHEMAS:
        errors.append(
            f"{path}: unsupported bench schema {schema!r} "
            f"(known: {BENCH_SCHEMAS})"
        )
        return {}
    declared = payload.get("profile")
    if declared is not None and profile_name and declared != profile_name:
        errors.append(
            f"{path}: declares profile {declared!r}, "
            f"checked as {profile_name!r}"
        )
        return {}
    cases = payload.get("cases")
    if not isinstance(cases, list) or not cases:
        errors.append(f"{path}: no 'cases' list")
        return {}
    metric = profile["metric"]
    out = {}
    for i, case in enumerate(cases):
        missing = [f for f in profile["required_fields"] if f not in case]
        if missing:
            errors.append(f"{path}: case {i} missing fields {missing}")
            continue
        if case[metric] <= 0:
            errors.append(f"{path}: case {i} has non-positive {metric}")
            continue
        out[tuple(case[f] for f in profile["key_fields"])] = case
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("candidate", type=Path,
                        help="bench output to check")
    parser.add_argument("--profile", choices=sorted(PROFILES),
                        default="engine",
                        help="which bench schema/metric to check "
                             "(default: engine)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="committed baseline (default: the "
                             "profile's BENCH_*.json)")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="tolerated fractional metric drop "
                             "(default 0.30)")
    args = parser.parse_args(argv)

    profile = PROFILES[args.profile]
    baseline_path = (
        args.baseline
        if args.baseline is not None
        else REPO_ROOT / profile["baseline"]
    )
    metric, unit = profile["metric"], profile["unit"]

    errors: list = []
    baseline = load_cases(
        baseline_path, profile, errors, profile_name=args.profile
    )
    candidate = load_cases(
        args.candidate, profile, errors, profile_name=args.profile
    )

    shared = sorted(set(baseline) & set(candidate), key=repr)
    if baseline and candidate and not shared:
        errors.append("no cases in common between baseline and candidate")
    for key in sorted(set(baseline) ^ set(candidate), key=repr):
        which = "baseline" if key in baseline else "candidate"
        print(f"note: case {key} only in {which}")

    for key in shared:
        base = baseline[key][metric]
        cand = candidate[key][metric]
        ratio = cand / base
        status = "ok"
        if ratio < 1.0 - args.max_regression:
            status = "REGRESSION"
            errors.append(
                f"case {key}: {cand:.0f} {unit} is "
                f"{(1.0 - ratio) * 100:.0f}% below baseline {base:.0f}"
            )
        print(f"{key}: baseline {base:10.0f}  candidate {cand:10.0f}  "
              f"({ratio:.2f}x)  {status}")

    if errors:
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        return 1
    print(f"{len(shared)} cases within {args.max_regression:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
