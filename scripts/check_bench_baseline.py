#!/usr/bin/env python3
"""Compare a hot-path benchmark run against the committed baseline.

Guards the engine fast lane in CI: ``benchmarks/bench_engine_hotpath.py``
writes a candidate JSON, and this script fails (exit 1) when

1. either file is missing, unparsable, or missing required fields
   (every case needs ``algorithm``/``engine``/``n``/``events``/
   ``messages``/``wall_s``/``events_per_sec``), or
2. any case present in both files regressed by more than
   ``--max-regression`` (default 0.30, i.e. events/sec below 70% of
   the baseline's).

Cases present in only one file are reported but not fatal: the
baseline is refreshed deliberately (rerun the bench with
``--out BENCH_engine.json`` and commit) and may trail newly added
cases.  Faster-than-baseline results never fail — shared CI runners
are noisy in both directions, which is also why the default tolerance
is as wide as 30%: this catches "the fast lane fell off" (2x), not
single-digit jitter.

Usage:
    python scripts/check_bench_baseline.py CANDIDATE [--baseline PATH]
        [--max-regression FRACTION]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Must match benchmarks/bench_engine_hotpath.py CASE_FIELDS.
REQUIRED_CASE_FIELDS = (
    "algorithm",
    "engine",
    "n",
    "events",
    "messages",
    "wall_s",
    "events_per_sec",
)


def load_cases(path: Path, errors: list) -> dict:
    """Map (algorithm, engine, n) -> case dict, validating fields."""
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        errors.append(f"{path}: missing")
        return {}
    except json.JSONDecodeError as exc:
        errors.append(f"{path}: not valid JSON ({exc})")
        return {}
    cases = payload.get("cases")
    if not isinstance(cases, list) or not cases:
        errors.append(f"{path}: no 'cases' list")
        return {}
    out = {}
    for i, case in enumerate(cases):
        missing = [f for f in REQUIRED_CASE_FIELDS if f not in case]
        if missing:
            errors.append(f"{path}: case {i} missing fields {missing}")
            continue
        if case["events_per_sec"] <= 0:
            errors.append(f"{path}: case {i} has non-positive events_per_sec")
            continue
        out[(case["algorithm"], case["engine"], case["n"])] = case
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("candidate", type=Path,
                        help="bench output to check")
    parser.add_argument("--baseline", type=Path,
                        default=REPO_ROOT / "BENCH_engine.json",
                        help="committed baseline (default: BENCH_engine.json)")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="tolerated fractional events/sec drop "
                             "(default 0.30)")
    args = parser.parse_args(argv)

    errors: list = []
    baseline = load_cases(args.baseline, errors)
    candidate = load_cases(args.candidate, errors)

    shared = sorted(set(baseline) & set(candidate), key=repr)
    if baseline and candidate and not shared:
        errors.append("no cases in common between baseline and candidate")
    for key in sorted(set(baseline) ^ set(candidate), key=repr):
        which = "baseline" if key in baseline else "candidate"
        print(f"note: case {key} only in {which}")

    for key in shared:
        base = baseline[key]["events_per_sec"]
        cand = candidate[key]["events_per_sec"]
        ratio = cand / base
        status = "ok"
        if ratio < 1.0 - args.max_regression:
            status = "REGRESSION"
            errors.append(
                f"case {key}: {cand:.0f} events/s is "
                f"{(1.0 - ratio) * 100:.0f}% below baseline {base:.0f}"
            )
        print(f"{key}: baseline {base:10.0f}  candidate {cand:10.0f}  "
              f"({ratio:.2f}x)  {status}")

    if errors:
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        return 1
    print(f"{len(shared)} cases within {args.max_regression:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
