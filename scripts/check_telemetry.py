#!/usr/bin/env python3
"""Validate a telemetry JSONL stream against the repro.obs schema.

Checks, in order:

1. every line parses as a JSON object and passes
   :func:`repro.obs.events.validate_event` (schema version, required
   fields, cell_end statuses).  Exception: a contiguous run of
   malformed lines at the very *end* of the stream is skipped and
   counted, not flagged — a producer killed mid-write (routine once
   the serve daemon exists) leaves exactly that torn tail.  Malformed
   lines *followed by* valid ones are still violations;
2. cell lifecycle: every cell key reaches exactly as many terminal
   events (``cell_end`` or ``cell_timeout``) as it has ``cell_start``
   events, and no terminal event appears without a ``cell_start``.
   Count-matching (rather than exactly-one) is what a daemon stream
   needs: the same cell key legitimately recurs once per job that
   touches it;
3. job lifecycle (daemon streams): per job id, ``job_start`` events
   never exceed ``job_queued`` and ``job_end`` never exceeds
   ``job_start`` — incomplete lifecycles are fine (it is a
   flight-recorder format), inverted ones are not;
4. every *executed* ok cell (``cell_end`` with ``status=ok`` and
   ``cached=false``) has at least one ``phase_end`` event for its key
   — the profiling guarantee the engines' implicit "engine" phase
   provides;
5. every ``metrics_snapshot`` event carries a schema-valid registry
   snapshot (sections present, non-negative counters, histogram bucket
   sanity via :func:`repro.obs.metrics.validate_snapshot`), and
   counters are monotone non-decreasing across successive snapshots —
   one process-global registry only ever accumulates.

Exit status 0 and a one-line summary on success; 1 with one line per
violation otherwise.  ``--min-cells N`` additionally requires at least
N ``cell_start`` events (CI smoke runs use it to prove the stream is
not trivially empty).  ``--expect-topology-builds N`` requires the
summed ``topology_stats`` counters to report exactly N topology builds
— the warm-store smoke invariant: builds equal the number of distinct
(workload, n) cells, everything else is a cache hit.

Usage: python scripts/check_telemetry.py PATH [--min-cells N]
       [--expect-topology-builds N]
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.events import (  # noqa: E402
    TERMINAL_CELL_KINDS,
    parse_line,
    validate_event,
)
from repro.obs.metrics import validate_snapshot  # noqa: E402


def check_metrics_snapshots(events) -> List[str]:
    """Violations in the stream's ``metrics_snapshot`` events.

    Each snapshot must pass the registry schema check, and every
    counter series must be monotone non-decreasing from one snapshot to
    the next (snapshots are cumulative views of one registry, never
    resets — a drop means two registries wrote the same stream).
    """
    errors: List[str] = []
    prev_counters: Dict[str, float] = {}
    index = 0
    for e in events:
        if e.get("kind") != "metrics_snapshot":
            continue
        index += 1
        for problem in validate_snapshot(e):
            errors.append(f"metrics_snapshot #{index}: {problem}")
        counters = e.get("counters")
        if not isinstance(counters, dict):
            continue
        for key, value in counters.items():
            before = prev_counters.get(key, 0.0)
            if float(value) < before:
                errors.append(
                    f"metrics_snapshot #{index}: counter {key} "
                    f"dropped {before} -> {value} (must be monotone)"
                )
        for key in prev_counters:
            if key not in counters:
                errors.append(
                    f"metrics_snapshot #{index}: counter {key} "
                    "disappeared (must be monotone)"
                )
        prev_counters = {k: float(v) for k, v in counters.items()}
    return errors


def check_stream(lines, min_cells: int = 0, expect_topology_builds=None):
    """Return (errors, summary) for an iterable of JSONL lines."""
    errors: List[str] = []
    events: List[Dict[str, object]] = []
    # Parse in two passes over the buffered lines so malformed lines at
    # the *tail* (a writer killed mid-record — normal daemon debris)
    # can be told apart from corruption in the middle of the stream.
    numbered = [
        (lineno, line)
        for lineno, line in enumerate(lines, 1)
        if line.strip()
    ]
    parsed: List[tuple] = []  # (lineno, event-or-None, error-or-None)
    last_good = -1
    for i, (lineno, line) in enumerate(numbered):
        try:
            event = parse_line(line)
        except ValueError as exc:
            parsed.append((lineno, None, f"unparseable ({exc})"))
            continue
        parsed.append((lineno, event, None))
        last_good = i
    skipped_tail = 0
    for i, (lineno, event, problem) in enumerate(parsed):
        if event is None:
            if i > last_good:
                skipped_tail += 1  # torn tail: tolerated, counted
            else:
                errors.append(f"line {lineno}: {problem}")
            continue
        for violation in validate_event(event):
            errors.append(f"line {lineno}: {violation}")
        events.append(event)

    census = Counter(str(e.get("kind")) for e in events)
    started: Counter = Counter()
    terminal: Counter = Counter()
    executed_ok: List[str] = []
    phase_keys = {
        str(e["key"])
        for e in events
        if e.get("kind") == "phase_end" and "key" in e
    }
    for e in events:
        kind = e.get("kind")
        if kind == "cell_start":
            started[str(e.get("key"))] += 1
        elif kind in TERMINAL_CELL_KINDS:
            key = str(e.get("key"))
            terminal[key] += 1
            if key not in started:
                errors.append(
                    f"{kind} for key {key[:12]} without a cell_start"
                )
            if (
                kind == "cell_end"
                and e.get("status") == "ok"
                and not e.get("cached")
            ):
                executed_ok.append(key)
    for key, starts in started.items():
        count = terminal[key]
        if count != starts:
            errors.append(
                f"cell {key[:12]} has {count} terminal events "
                f"(want {starts}, one per cell_start)"
            )
    for key in executed_ok:
        if key not in phase_keys:
            errors.append(
                f"executed cell {key[:12]} has no phase_end event"
            )
    errors.extend(check_job_lifecycle(events))
    if len(started) < min_cells:
        errors.append(
            f"only {len(started)} cell_start events (require >= {min_cells})"
        )
    errors.extend(check_metrics_snapshots(events))
    topo = {"build": 0, "hit_mem": 0, "hit_disk": 0}
    for e in events:
        if e.get("kind") == "topology_stats":
            for field in topo:
                topo[field] += int(e.get(field, 0))
    if expect_topology_builds is not None:
        if not census.get("topology_stats"):
            errors.append(
                "no topology_stats event "
                f"(expected {expect_topology_builds} builds)"
            )
        elif topo["build"] != expect_topology_builds:
            errors.append(
                f"{topo['build']} topology builds "
                f"(expected exactly {expect_topology_builds}; "
                f"hits: mem={topo['hit_mem']} disk={topo['hit_disk']})"
            )

    summary = {
        "events": len(events),
        "cells": len(started),
        "terminal": sum(terminal.values()),
        "census": dict(sorted(census.items())),
        "topology": topo,
        "skipped_tail": skipped_tail,
    }
    return errors, summary


def check_job_lifecycle(events) -> List[str]:
    """Ordering violations in the serve daemon's ``job_*`` events.

    Per job id the counts must nest: ``job_end <= job_start <=
    job_queued``.  Truncated lifecycles (queued but never started,
    started but no end yet) are legitimate — the stream is a flight
    recorder, and a killed daemon leaves exactly that."""
    errors: List[str] = []
    queued: Counter = Counter()
    started: Counter = Counter()
    ended: Counter = Counter()
    for e in events:
        kind = e.get("kind")
        if kind == "job_queued":
            queued[str(e.get("job"))] += 1
        elif kind == "job_start":
            started[str(e.get("job"))] += 1
        elif kind == "job_end":
            ended[str(e.get("job"))] += 1
    for jid in set(queued) | set(started) | set(ended):
        if started[jid] > queued[jid]:
            errors.append(
                f"job {jid}: {started[jid]} job_start events but only "
                f"{queued[jid]} job_queued"
            )
        if ended[jid] > started[jid]:
            errors.append(
                f"job {jid}: {ended[jid]} job_end events but only "
                f"{started[jid]} job_start"
            )
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Validate a repro telemetry JSONL file."
    )
    parser.add_argument("path", help="telemetry JSONL file")
    parser.add_argument(
        "--min-cells",
        type=int,
        default=0,
        help="require at least this many cell_start events",
    )
    parser.add_argument(
        "--expect-topology-builds",
        type=int,
        default=None,
        metavar="N",
        help=(
            "require the topology_stats counters to report exactly N "
            "builds (warm-store smoke invariant)"
        ),
    )
    args = parser.parse_args(argv)
    try:
        # errors="replace": a tail torn inside a multi-byte sequence
        # must degrade into a skipped line, not a UnicodeDecodeError.
        with open(
            args.path, "r", encoding="utf-8", errors="replace"
        ) as fh:
            errors, summary = check_stream(
                fh,
                min_cells=args.min_cells,
                expect_topology_builds=args.expect_topology_builds,
            )
    except OSError as exc:
        print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 1
    for err in errors:
        print(f"error: {err}", file=sys.stderr)
    census = " ".join(f"{k}={v}" for k, v in summary["census"].items())
    tail = (
        f", skipped {summary['skipped_tail']} torn tail line(s)"
        if summary["skipped_tail"]
        else ""
    )
    print(
        f"{args.path}: {summary['events']} events, "
        f"{summary['cells']} cells ({census or 'empty'}){tail}"
    )
    if errors:
        print(f"{len(errors)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
