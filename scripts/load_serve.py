#!/usr/bin/env python3
"""Load harness for the serve daemon: hundreds of concurrent jobs.

Fires ``--jobs`` submissions (default 200) from ``--clients`` parallel
client threads against one daemon.  The job mix cycles through a small
pool of ``--distinct`` sweep specs, so most submissions duplicate an
in-flight or completed job — exactly the workload the daemon's dedup
and warm-cache paths exist for.  Each client watches its job to the
final summary line and records the end-to-end latency.

Reported at the end (and checked, exit 1 on violation):

* every job must reach a terminal ``done`` state (no rejections — the
  mix is sized under the admission limits; no failures);
* **dedup rate** — jobs attached to an existing execution / total;
* **warm-cell hit-rate** — cached / (cached + executed) summed over
  the distinct executions' executor stats;
* **latency** — p50 / p99 / max seconds from submit to final line.

With ``--spawn`` the harness starts its own daemon on a private socket
(and tmp caches) and shuts it down afterwards, so one command is a
self-contained smoke: ``python scripts/load_serve.py --spawn``.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve import ServeClient, ServeError  # noqa: E402


def build_mix(distinct: int):
    """A pool of distinct sweep specs, all tiny and admission-sized."""
    sizes_options = ([10], [12], [10, 14], [12, 16])
    return [
        {
            "kind": "sweep",
            "algorithm": "flooding",
            "sizes": sizes_options[i % len(sizes_options)],
            "trials": 1,
            "seed": i // len(sizes_options),
            "degree": 3.0,
        }
        for i in range(distinct)
    ]


def percentile(sorted_vals, q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(
        len(sorted_vals) - 1, max(0, round(q * (len(sorted_vals) - 1)))
    )
    return sorted_vals[idx]


def run_load(socket_path: str, jobs: int, clients: int, distinct: int,
             timeout: float):
    mix = build_mix(distinct)
    specs = [mix[i % len(mix)] for i in range(jobs)]
    results = [None] * jobs
    latencies = [0.0] * jobs
    cursor = {"next": 0}
    lock = threading.Lock()

    def worker():
        client = ServeClient(socket_path, timeout=timeout)
        while True:
            with lock:
                i = cursor["next"]
                if i >= jobs:
                    return
                cursor["next"] = i + 1
            start = time.perf_counter()
            try:
                final, _events = client.run_job(specs[i])
            except ServeError as exc:
                final = {"ok": False, "error": str(exc)}
            latencies[i] = time.perf_counter() - start
            results[i] = final

    threads = [
        threading.Thread(target=worker, daemon=True)
        for _ in range(clients)
    ]
    wall = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout + 60.0)
    wall = time.perf_counter() - wall
    return results, latencies, wall


def summarize(results, latencies, wall, jobs):
    errors = []
    done = {}
    bad = []
    for final in results:
        if final is None:
            bad.append("client thread never finished")
            continue
        job = final.get("job")
        if not isinstance(job, dict):
            bad.append(f"no summary: {final}")
            continue
        if job.get("state") != "done":
            bad.append(f"{job.get('id')}: {job.get('state')} "
                       f"({job.get('error')})")
            continue
        done[job["id"]] = job
    if bad:
        errors.append(f"{len(bad)} job(s) did not complete cleanly")
        for line in bad[:10]:
            errors.append(f"  {line}")

    executed = cached = 0
    for job in done.values():
        stats = (job.get("result") or {}).get("stats") or {}
        executed += int(stats.get("executed", 0))
        cached += int(stats.get("cached", 0))
    total_cells = executed + cached
    hit_rate = cached / total_cells if total_cells else 0.0
    dedup_rate = (jobs - len(done)) / jobs if jobs else 0.0

    lat = sorted(latencies)
    p50 = percentile(lat, 0.50)
    p99 = percentile(lat, 0.99)

    print(f"jobs:        {jobs} submitted, {len(done)} distinct "
          f"executions, {jobs - len(done)} deduped "
          f"({100 * dedup_rate:.1f}%)")
    print(f"cells:       {executed} executed, {cached} cached "
          f"(warm hit-rate {100 * hit_rate:.1f}%)")
    print(f"latency:     p50 {p50 * 1000:.1f} ms, "
          f"p99 {p99 * 1000:.1f} ms, max {lat[-1] * 1000:.1f} ms")
    print(f"wall:        {wall:.2f}s "
          f"({jobs / wall:.1f} jobs/s end-to-end)")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Concurrent-job load harness for `repro serve`."
    )
    parser.add_argument(
        "--socket", default="results/serve.sock",
        help="daemon socket (default: %(default)s)",
    )
    parser.add_argument(
        "--jobs", type=int, default=200,
        help="total submissions (default: %(default)s)",
    )
    parser.add_argument(
        "--clients", type=int, default=32,
        help="concurrent client threads (default: %(default)s)",
    )
    parser.add_argument(
        "--distinct", type=int, default=20,
        help="distinct job specs in the mix (default: %(default)s)",
    )
    parser.add_argument(
        "--timeout", type=float, default=120.0,
        help="per-client socket timeout (default: %(default)s)",
    )
    parser.add_argument(
        "--spawn", action="store_true",
        help="start (and stop) a private daemon for the run",
    )
    parser.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="with --spawn: daemon JSONL event log "
        "(validate with scripts/check_telemetry.py)",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="with --spawn: daemon metrics snapshot on exit "
        "(validate with scripts/check_metrics.py)",
    )
    args = parser.parse_args(argv)

    proc = None
    tmpdir = None
    socket_path = args.socket
    if args.spawn:
        tmpdir = tempfile.TemporaryDirectory(prefix="repro-serve-load-")
        socket_path = str(Path(tmpdir.name) / "serve.sock")
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--socket", socket_path,
            "--cache-dir", str(Path(tmpdir.name) / "cache"),
            "--topology-dir", str(Path(tmpdir.name) / "topo"),
            "--progress", "off",
        ]
        if args.telemetry:
            cmd += ["--telemetry", args.telemetry]
        if args.metrics:
            cmd += ["--metrics", args.metrics]
        proc = subprocess.Popen(
            cmd,
            cwd=str(REPO_ROOT),
            env={**__import__("os").environ,
                 "PYTHONPATH": str(REPO_ROOT / "src")},
        )

    client = ServeClient(socket_path, timeout=args.timeout)
    try:
        if not client.wait_ready(30.0):
            print(f"error: no daemon at {socket_path}", file=sys.stderr)
            return 1
        results, latencies, wall = run_load(
            socket_path, args.jobs, args.clients, args.distinct,
            args.timeout,
        )
        errors = summarize(results, latencies, wall, args.jobs)
        try:
            stats = client.stats()
            depth = stats.get("queue_depth")
            print(f"daemon:      queue_depth={depth}, "
                  f"jobs_by_state={json.dumps(stats.get('jobs_by_state'))}")
            if depth:
                errors.append(
                    f"queue depth {depth} after drain (want 0)"
                )
        except ServeError as exc:
            errors.append(f"daemon unreachable after load: {exc}")
        for err in errors:
            print(f"error: {err}", file=sys.stderr)
        return 1 if errors else 0
    finally:
        if proc is not None:
            try:
                client.shutdown()
                proc.wait(timeout=30.0)
            except (ServeError, subprocess.TimeoutExpired):
                proc.kill()
        if tmpdir is not None:
            tmpdir.cleanup()


if __name__ == "__main__":
    sys.exit(main())
