#!/usr/bin/env python3
"""Maintain and query the append-only perf ledger (PERF_LEDGER.jsonl).

Thin CLI over :mod:`repro.analysis.perf` — the same operations the
``repro perf {record,show,check}`` subcommands expose, usable without
an installed package (CI invokes this file directly).

Subcommands:

* ``record BENCH [--profile P]`` — validate one bench output
  (schema 1 or 2 envelope) and append its per-case metrics as one
  ledger entry.  With no BENCH arguments, ingests every committed
  ``BENCH_*.json`` whose profile is known (the seeding path).
* ``show`` — the per-profile history with geometric-mean headlines.
* ``check --candidate PROFILE=PATH ...`` — the unified regression
  gate: each candidate is compared case-by-case against the latest
  ledger entry of its profile (default tolerance 30%, same semantics
  as the retired per-file baseline checks).

Usage:
    python scripts/perf_ledger.py record BENCH_engine.json
    python scripts/perf_ledger.py show
    python scripts/perf_ledger.py check --candidate engine=/tmp/b.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.perf import (  # noqa: E402
    DEFAULT_LEDGER,
    PROFILES,
    PerfError,
    check,
    record,
    show,
)


def _parse_candidates(pairs) -> dict:
    candidates = {}
    for pair in pairs:
        profile, sep, path = pair.partition("=")
        if not sep or not path:
            raise SystemExit(
                f"--candidate wants PROFILE=PATH, got {pair!r}"
            )
        candidates[profile] = Path(path)
    return candidates


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--ledger", type=Path, default=REPO_ROOT / DEFAULT_LEDGER,
        help="ledger path (default: %(default)s)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_rec = sub.add_parser("record", help="append bench runs to the ledger")
    p_rec.add_argument(
        "benches", nargs="*", type=Path,
        help="bench JSON files (default: every committed BENCH_*.json)",
    )
    p_rec.add_argument(
        "--profile", choices=sorted(PROFILES), default=None,
        help="force the profile (required for ambiguous schema-1 files)",
    )

    sub.add_parser("show", help="print the per-profile history")

    p_chk = sub.add_parser("check", help="unified regression gate")
    p_chk.add_argument(
        "--candidate", action="append", default=[], metavar="PROFILE=PATH",
        help="fresh bench output to gate (repeatable)",
    )
    p_chk.add_argument(
        "--max-regression", type=float, default=0.30,
        help="tolerated fractional metric drop (default 0.30)",
    )

    args = parser.parse_args(argv)

    if args.command == "record":
        benches = args.benches
        if not benches:
            benches = [
                REPO_ROOT / prof["baseline"]
                for prof in PROFILES.values()
                if (REPO_ROOT / prof["baseline"]).exists()
            ]
            if not benches:
                print("error: no BENCH_*.json files found",
                      file=sys.stderr)
                return 1
        for bench in benches:
            try:
                entry = record(bench, args.ledger, profile=args.profile)
            except PerfError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            print(
                f"recorded [{entry['profile']}] {bench} "
                f"({len(entry['cases'])} cases) -> {args.ledger}"
            )
        return 0

    if args.command == "show":
        try:
            show(args.ledger)
        except PerfError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return 0

    # check
    candidates = _parse_candidates(args.candidate)
    if not candidates:
        print("error: check wants at least one --candidate PROFILE=PATH",
              file=sys.stderr)
        return 1
    errors = check(
        candidates, args.ledger, max_regression=args.max_regression
    )
    if errors:
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        return 1
    print(
        f"{len(candidates)} profile(s) within tolerance of the ledger"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
