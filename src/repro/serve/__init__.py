"""The wake-up sweep service: a long-lived job daemon.

The paper's subject is *adversarial wake-up* — work arriving at times
the algorithm does not control.  This package is the repro's systems
counterpart: ``repro serve`` keeps the executor, caches, and metrics
registry warm in one process while many concurrent clients submit
sweep/check/worstcase jobs over a local socket and watch their
schema-versioned telemetry stream live.

Layers (see ``docs/serving.md`` for the full protocol):

* :mod:`repro.serve.protocol` — JSON lines over a unix socket;
* :mod:`repro.serve.jobs` — spec validation, content-addressed job
  identity (the dedup key), execution;
* :mod:`repro.serve.server` — admission control, the job runner,
  event fan-out, metrics;
* :mod:`repro.serve.client` — ``repro submit`` / ``repro jobs`` and
  ``scripts/load_serve.py`` build on this.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import (
    JOB_KINDS,
    canonical_spec,
    count_cells,
    execute_job,
    job_id,
    validate_job,
)
from repro.serve.protocol import DEFAULT_SOCKET, is_event
from repro.serve.server import ServeConfig, SweepServer

__all__ = [
    "DEFAULT_SOCKET",
    "JOB_KINDS",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "SweepServer",
    "canonical_spec",
    "count_cells",
    "execute_job",
    "is_event",
    "job_id",
    "validate_job",
]
