"""Job specs: validation, canonical identity, and execution.

A *job* is one unit of client-requested work — a ``sweep``, ``check``,
or ``worstcase`` run described by a plain JSON dict.  The daemon
deduplicates work by content: :func:`job_id` hashes the canonicalized
spec (defaults filled in, keys sorted), so two clients submitting the
same request — whether they spelled out the defaults or not — name the
same job and share one execution.  Below the job level, sweep cells
hash into the executor's cell cache exactly as CLI sweeps do, so a job
overlapping an earlier one (same algorithm, subset of sizes) re-executes
only the cells nobody has computed yet.

Execution is budgeted twice: per-cell (``cell_timeout``, enforced
inside :func:`repro.experiments.parallel.run_cell` by a
:class:`repro.deadline.Watchdog`) and per-job (the daemon's wall
budget, a second watchdog around :func:`execute_job` — see
:mod:`repro.serve.server`).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional

from repro.core import algorithm_names, get_algorithm
from repro.obs.recorder import NULL_RECORDER, Recorder

#: Work kinds the daemon accepts.
JOB_KINDS = ("sweep", "check", "worstcase")

_SWEEP_DEFAULTS: Dict[str, Any] = {
    "sizes": [64, 128],
    "trials": 2,
    "seed": 0,
    "degree": 6.0,
    "backend": None,
    "workload": None,  # filled from degree/seed when absent
    "cell_timeout": None,
}

_CHECK_DEFAULTS: Dict[str, Any] = {
    "n": 4,
    "graph": "cycle",
    "awake": 1,
    "stagger": 0.0,
    "degree": 3.0,
    "seed": 0,
    "max_schedules": 2_000,
    "max_states": 50_000,
    "max_depth": 128,
}

_WORSTCASE_DEFAULTS: Dict[str, Any] = {
    "workload": "er",
    "n": 6,
    "graph": "er",
    "awake": 1,
    "stagger": 0.0,
    "degree": 3.0,
    "objective": "time",
    "beam": 2,
    "horizon": 8,
    "branch_cap": 2,
    "trials": 8,
    "seed": 0,
}

_DEFAULTS = {
    "sweep": _SWEEP_DEFAULTS,
    "check": _CHECK_DEFAULTS,
    "worstcase": _WORSTCASE_DEFAULTS,
}


def canonical_spec(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Fill defaults and drop unknown keys, so specs that *mean* the
    same thing hash the same regardless of how much the client spelled
    out.  Raises ``ValueError`` for an unusable spec — callers surface
    the message as a structured rejection."""
    errors = validate_job(spec)
    if errors:
        raise ValueError("; ".join(errors))
    kind = spec["kind"]
    out: Dict[str, Any] = {"kind": kind, "algorithm": spec["algorithm"]}
    for field, default in _DEFAULTS[kind].items():
        out[field] = spec.get(field, default)
    if kind == "sweep":
        out["sizes"] = sorted(int(n) for n in out["sizes"])
        if out["workload"] is None:
            out["workload"] = {
                "kind": "er_single_wake",
                "avg_degree": float(out["degree"]),
                "seed": int(out["seed"]),
            }
    return out


def job_id(spec: Dict[str, Any]) -> str:
    """Content-addressed job identity over the canonical spec."""
    canon = canonical_spec(spec)
    blob = json.dumps(canon, sort_keys=True, separators=(",", ":"))
    return "j" + hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def validate_job(spec: Any) -> List[str]:
    """Return a list of admission violations (empty = acceptable)."""
    if not isinstance(spec, dict):
        return [f"job spec is {type(spec).__name__}, not an object"]
    errors: List[str] = []
    kind = spec.get("kind")
    if kind not in JOB_KINDS:
        return [f"unknown job kind {kind!r}; known: {list(JOB_KINDS)}"]
    algorithm = spec.get("algorithm")
    if algorithm not in algorithm_names():
        errors.append(f"unknown algorithm {algorithm!r}")
    if kind == "sweep":
        sizes = spec.get("sizes", _SWEEP_DEFAULTS["sizes"])
        if (
            not isinstance(sizes, (list, tuple))
            or not sizes
            or not all(isinstance(n, int) and n >= 2 for n in sizes)
        ):
            errors.append("sizes must be a non-empty list of ints >= 2")
        trials = spec.get("trials", _SWEEP_DEFAULTS["trials"])
        if not isinstance(trials, int) or trials < 1:
            errors.append("trials must be an int >= 1")
        ct = spec.get("cell_timeout")
        if ct is not None and (
            not isinstance(ct, (int, float)) or ct <= 0
        ):
            errors.append("cell_timeout must be a positive number")
    else:
        n = spec.get("n", _DEFAULTS[kind]["n"])
        if not isinstance(n, int) or n < 2:
            errors.append("n must be an int >= 2")
        if kind == "worstcase":
            workload = spec.get(
                "workload", _WORSTCASE_DEFAULTS["workload"]
            )
            if workload not in ("er", "class-g"):
                errors.append(
                    f"worstcase workload {workload!r} not in "
                    "('er', 'class-g')"
                )
            objective = spec.get(
                "objective", _WORSTCASE_DEFAULTS["objective"]
            )
            if objective not in ("time", "messages", "bits"):
                errors.append(f"unknown objective {objective!r}")
    return errors


def count_cells(spec: Dict[str, Any]) -> int:
    """The cell budget a job will consume if admitted (sweeps:
    ``len(sizes) * trials``; check/worstcase: one schedule-space search
    counts as one cell — their own ``max_*`` knobs bound the interior
    work)."""
    canon = canonical_spec(spec)
    if canon["kind"] == "sweep":
        return len(canon["sizes"]) * int(canon["trials"])
    return 1


def execute_job(
    canon: Dict[str, Any],
    executor,
    recorder: Optional[Recorder] = None,
) -> Dict[str, Any]:
    """Run one canonicalized job to completion; returns the JSON-able
    result payload.  Per-cell failures inside a sweep stay structured
    (the executor never raises for them); anything raised here is the
    *job* failing and becomes a ``failed`` job record server-side."""
    recorder = recorder if recorder is not None else NULL_RECORDER
    kind = canon["kind"]
    if kind == "sweep":
        return _execute_sweep(canon, executor)
    if kind == "check":
        return _execute_check(canon, recorder)
    return _execute_worstcase(canon, recorder)


def _execute_sweep(canon: Dict[str, Any], executor) -> Dict[str, Any]:
    from repro.experiments.sweeps import (
        rows_from_outcomes,
        sweep_cells,
    )

    algo = get_algorithm(canon["algorithm"])
    knowledge = "KT1" if algo.requires_kt1 else "KT0"
    bandwidth = "CONGEST" if algo.congest_safe else "LOCAL"
    engine = (
        algo.synchrony if algo.synchrony in ("sync", "async") else "async"
    )
    if canon["backend"] == "bulk" and algo.synchrony == "both":
        engine = "sync"
    cells = sweep_cells(
        canon["algorithm"],
        canon["workload"],
        sizes=canon["sizes"],
        engine=engine,
        backend=canon["backend"],
        knowledge=knowledge,
        bandwidth=bandwidth,
        trials=int(canon["trials"]),
        seed=int(canon["seed"]),
    )
    outcomes = executor.run(cells)
    rows = rows_from_outcomes(outcomes)
    failed = [
        {
            "n": o.spec.n,
            "trial": o.spec.trial,
            "status": o.status,
            "error": o.error,
        }
        for o in outcomes
        if not o.ok
    ]
    return {
        "kind": "sweep",
        "rows": [r.as_dict() for r in rows],
        "failed_cells": failed,
        "stats": dict(executor.stats),
    }


def _execute_check(
    canon: Dict[str, Any], recorder: Recorder
) -> Dict[str, Any]:
    from repro.check import explore
    from repro.check.worlds import build_check_world

    algo = get_algorithm(canon["algorithm"])
    world, _times = build_check_world(
        algo,
        n=int(canon["n"]),
        graph=canon["graph"],
        awake=int(canon["awake"]),
        stagger=float(canon["stagger"]),
        degree=float(canon["degree"]),
        seed=int(canon["seed"]),
    )
    result = explore(
        world,
        max_schedules=int(canon["max_schedules"]),
        max_states=int(canon["max_states"]),
        max_depth=int(canon["max_depth"]),
        seed=int(canon["seed"]) + 3,
        recorder=recorder,
    )
    s = result.stats
    return {
        "kind": "check",
        "schedules": s.schedules,
        "states": s.states,
        "violations": s.violations,
        "completed": result.completed,
        "violation_invariants": [
            v.invariant for v in result.violations
        ],
    }


def _execute_worstcase(
    canon: Dict[str, Any], recorder: Recorder
) -> Dict[str, Any]:
    from repro.check import worstcase_search
    from repro.check.worlds import build_check_world, build_class_g_world

    algo = get_algorithm(canon["algorithm"])
    if canon["workload"] == "class-g":
        world, _times = build_class_g_world(
            algo, int(canon["n"]), seed=int(canon["seed"])
        )
    else:
        world, _times = build_check_world(
            algo,
            n=int(canon["n"]),
            graph=canon["graph"],
            awake=int(canon["awake"]),
            stagger=float(canon["stagger"]),
            degree=float(canon["degree"]),
            seed=int(canon["seed"]),
        )
    wc = worstcase_search(
        world,
        canon["objective"],
        beam_width=int(canon["beam"]),
        horizon=int(canon["horizon"]),
        branch_cap=int(canon["branch_cap"]),
        seed=int(canon["seed"]) + 3,
        recorder=recorder,
    )
    return {
        "kind": "worstcase",
        "objective": canon["objective"],
        "score": wc.score,
        "evaluations": wc.evaluations,
        "greedy_scores": dict(wc.greedy_scores),
    }
