"""The wake-up sweep daemon.

``repro serve`` binds a local stream socket and accepts
sweep/check/worstcase jobs from many concurrent clients — the software
analogue of the paper's adversarial arrival model: work shows up at
unpredictable times and the system must stay responsive and bounded.

Architecture (one process, three thread roles):

* **accept loop** — takes connections off the listener, one handler
  thread per connection (the protocol is one request per connection,
  so handlers are short-lived unless they ``watch`` a job).
* **handlers** — parse the request, run admission control, and either
  answer immediately or subscribe to a job's event stream.
* **job runner** — a single thread draining the admitted-job queue.
  Jobs execute serially; *intra*-job parallelism is the executor's
  worker pool.  Serial execution is also what makes cross-job work
  deduplication free: overlapping jobs admitted together run one after
  another against the same cell cache, so each distinct cell executes
  exactly once (the later job replays it as a cache hit).

Admission control — every path produces a *structured* rejection line,
never a dropped connection:

* invalid spec (``validate_job``) → ``invalid: ...``;
* cell budget (``count_cells(spec) > max_cells``) → ``cell budget``;
* bounded queue full (``max_queue``) → ``queue full`` (backpressure:
  thousands of queued jobs degrade into fast rejections, not
  unbounded memory).

Budgets: each cell runs under the executor's ``cell_timeout`` watchdog
and the whole job under a second :class:`repro.deadline.Watchdog`
(``job_timeout``).  ``JobTimeout`` derives from ``BaseException`` so
the broad ``except Exception`` inside cell execution cannot swallow
the job-level deadline.  Both watchdogs work precisely because the
budget machinery no longer depends on SIGALRM: the runner is not the
main thread.

A crashed or timed-out cell is already a structured outcome at the
executor layer; a job that raises, times out, or is cancelled by
shutdown becomes a structured ``failed``/``timeout`` job record — the
daemon itself keeps serving either way.
"""

from __future__ import annotations

import contextlib
import os
import queue
import socket
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.deadline import Watchdog
from repro.experiments.parallel import (
    DEFAULT_CACHE_DIR,
    ParallelSweepExecutor,
)
from repro.graphs.compile import DEFAULT_TOPOLOGY_DIR
from repro.obs.events import serialize_event
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.serve.jobs import (
    canonical_spec,
    count_cells,
    execute_job,
    job_id,
)
from repro.serve.protocol import (
    DEFAULT_SOCKET,
    MAX_LINE_BYTES,
    ProtocolError,
    dump_line,
    parse_request,
)


class JobTimeout(BaseException):
    """Job wall-budget expiry.  A ``BaseException`` so per-cell
    ``except Exception`` handlers inside the job cannot absorb it."""


#: States a job can be observed in; the last three are terminal.
JOB_STATES = ("queued", "running", "done", "failed", "timeout")


@dataclass
class ServeConfig:
    """Daemon knobs (all surfaced as ``repro serve`` flags)."""

    socket_path: str = DEFAULT_SOCKET
    #: Bounded admission queue; a full queue rejects, never blocks.
    max_queue: int = 64
    #: Largest cell budget a single job may claim.
    max_cells: int = 512
    #: Per-job wall-clock budget in seconds (None = unbounded).
    job_timeout: Optional[float] = 120.0
    #: Per-cell budget cap; job specs may ask for less, never more.
    cell_timeout: Optional[float] = 30.0
    #: Executor worker processes (0/1 = in-process cells).
    workers: int = 0
    #: Execution backend for multi-worker jobs (``serial`` / ``fork``
    #: / ``steal``).  The daemon defaults to the work-stealing pool so
    #: queued jobs' cells interleave (largest first) instead of
    #: running head-of-line; rows are backend-independent.
    backend: str = "steal"
    cache_dir: str = str(DEFAULT_CACHE_DIR)
    topology_dir: str = str(DEFAULT_TOPOLOGY_DIR)
    use_cache: bool = True
    #: Per-job event backlog replayed to late watchers (ring buffer).
    backlog_events: int = 10_000
    #: Terminal jobs remembered for ``status``/``jobs`` queries.
    history: int = 1024


class Job:
    """One admitted job: spec + state + an event stream fan-out.

    ``publish``/``subscribe``/``finish`` share one lock, so a watcher
    atomically receives the backlog-so-far and then every later event
    exactly once, in order, regardless of when it attached.
    """

    def __init__(self, jid: str, spec: Dict[str, Any], backlog: int):
        self.id = jid
        self.spec = spec
        self.state = "queued"
        self.submitted = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.duration = 0.0
        self.clients = 1
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        self._lock = threading.Lock()
        self._backlog: deque = deque(maxlen=backlog)
        self._subs: List[queue.SimpleQueue] = []

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed", "timeout")

    def publish(self, line: bytes) -> None:
        with self._lock:
            self._backlog.append(line)
            for q in self._subs:
                q.put(line)

    def subscribe(
        self,
    ) -> Tuple[List[bytes], Optional["queue.SimpleQueue"]]:
        """Backlog snapshot + a live queue (None when already
        terminal — the backlog is the whole story)."""
        with self._lock:
            backlog = list(self._backlog)
            if self.terminal:
                return backlog, None
            q: queue.SimpleQueue = queue.SimpleQueue()
            self._subs.append(q)
            return backlog, q

    def unsubscribe(self, q: "queue.SimpleQueue") -> None:
        with self._lock:
            if q in self._subs:
                self._subs.remove(q)

    def finish(
        self,
        state: str,
        result: Optional[Dict[str, Any]],
        error: Optional[str],
        duration: float,
    ) -> None:
        with self._lock:
            self.state = state
            self.result = result
            self.error = error
            self.duration = duration
            self.finished = time.time()
            for q in self._subs:
                q.put(None)  # stream sentinel
            self._subs.clear()

    def summary(self, with_result: bool = True) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "id": self.id,
            "kind": self.spec["kind"],
            "algorithm": self.spec["algorithm"],
            "state": self.state,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "duration": self.duration,
            "clients": self.clients,
        }
        if self.error is not None:
            out["error"] = self.error
        if with_result and self.result is not None:
            out["result"] = self.result
        return out


class _JobRecorder(Recorder):
    """Fans executor/explorer telemetry out to a job's watchers and
    tees it into the daemon-wide log (``repro serve --telemetry``)."""

    def __init__(self, job: Job, tee: Recorder):
        super().__init__()
        self._job = job
        self._tee = tee

    def write(self, event: Dict[str, Any]) -> None:
        self._job.publish(
            (serialize_event(event) + "\n").encode("ascii")
        )
        if self._tee.enabled:
            self._tee.write(event)


class SweepServer:
    """See the module docstring for the threading/admission model."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        recorder: Optional[Recorder] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.config = config or ServeConfig()
        self.log = recorder if recorder is not None else NULL_RECORDER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue(
            maxsize=self.config.max_queue
        )
        self._lock = threading.Lock()  # _jobs + depth bookkeeping
        self._mlock = threading.Lock()  # handler-side metric writes
        self._depth = 0  # admitted, not yet terminal
        self._shutdown = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self.started_at = time.time()

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        path = Path(self.config.socket_path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        with contextlib.suppress(OSError):
            os.unlink(path)
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(str(path))
        listener.listen(128)
        listener.settimeout(0.2)
        self._listener = listener
        for target, name in (
            (self._accept_loop, "serve-accept"),
            (self._runner_loop, "serve-runner"),
        ):
            t = threading.Thread(target=target, name=name, daemon=True)
            t.start()
            self._threads.append(t)

    def serve_forever(self) -> None:
        """Blocking entry point: :meth:`start` then wait for a
        ``shutdown`` op or KeyboardInterrupt."""
        if self._listener is None:
            self.start()
        try:
            while not self._shutdown.wait(timeout=0.2):
                pass
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def stop(self) -> None:
        """Stop accepting; fail queued jobs structurally; wait for the
        runner to finish the in-flight job."""
        self._shutdown.set()
        for t in self._threads:
            t.join(timeout=30.0)
        if self._listener is not None:
            with contextlib.suppress(OSError):
                self._listener.close()
            self._listener = None
        with contextlib.suppress(OSError):
            os.unlink(self.config.socket_path)
        # Jobs still queued never ran: terminal, structured, observable.
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            if job is None:
                continue
            self._finish_job(
                job, "failed", None,
                "daemon shut down before execution", 0.0,
            )

    # -- accept / handlers ----------------------------------------------
    def _accept_loop(self) -> None:
        while not self._shutdown.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            t = threading.Thread(
                target=self._serve_conn, args=(conn,), daemon=True
            )
            t.start()

    def _serve_conn(self, conn: socket.socket) -> None:
        try:
            conn.settimeout(30.0)
            try:
                req = parse_request(self._recv_line(conn))
            except ProtocolError as exc:
                self._send(conn, {"ok": False, "error": str(exc)})
                return
            handler = {
                "ping": self._op_ping,
                "submit": self._op_submit,
                "status": self._op_status,
                "jobs": self._op_jobs,
                "stats": self._op_stats,
                "shutdown": self._op_shutdown,
            }[req["op"]]
            handler(conn, req)
        except (BrokenPipeError, ConnectionResetError, socket.timeout):
            pass
        finally:
            with contextlib.suppress(OSError):
                conn.close()

    @staticmethod
    def _recv_line(conn: socket.socket) -> bytes:
        buf = b""
        while b"\n" not in buf:
            chunk = conn.recv(65536)
            if not chunk:
                break
            buf += chunk
            if len(buf) > MAX_LINE_BYTES:
                raise ProtocolError("request exceeds MAX_LINE_BYTES")
        return buf.split(b"\n", 1)[0]

    @staticmethod
    def _send(conn: socket.socket, obj: Dict[str, Any]) -> None:
        conn.sendall(dump_line(obj))

    # -- ops -------------------------------------------------------------
    def _op_ping(self, conn, req) -> None:
        self._send(
            conn,
            {"ok": True, "pong": True,
             "uptime": time.time() - self.started_at},
        )

    def _op_status(self, conn, req) -> None:
        jid = req.get("job")
        with self._lock:
            job = self._jobs.get(jid)
        if job is None:
            self._send(
                conn, {"ok": False, "error": f"unknown job {jid!r}"}
            )
            return
        self._send(conn, {"ok": True, "job": job.summary()})

    def _op_jobs(self, conn, req) -> None:
        with self._lock:
            summaries = [
                j.summary(with_result=False)
                for j in self._jobs.values()
            ]
        self._send(conn, {"ok": True, "jobs": summaries})

    def _op_stats(self, conn, req) -> None:
        with self._lock:
            depth = self._depth
            by_state: Dict[str, int] = {}
            for j in self._jobs.values():
                by_state[j.state] = by_state.get(j.state, 0) + 1
        self._send(
            conn,
            {
                "ok": True,
                "queue_depth": depth,
                "jobs_by_state": by_state,
                "uptime": time.time() - self.started_at,
                "metrics": self._metrics_snapshot(),
            },
        )

    def _op_shutdown(self, conn, req) -> None:
        self._send(conn, {"ok": True, "stopping": True})
        self._shutdown.set()

    def _op_submit(self, conn, req) -> None:
        raw = req.get("job")
        watch = bool(req.get("watch", False))
        job, deduped, rejection = self._admit(raw)
        if rejection is not None:
            self._send(conn, rejection)
            return
        ack = {
            "ok": True,
            "job": job.id,
            "state": job.state,
            "deduped": deduped,
            "queue_depth": self._depth,
        }
        if not watch:
            self._send(conn, ack)
            return
        self._send(conn, ack)
        backlog, live = job.subscribe()
        try:
            for line in backlog:
                conn.sendall(line)
            if live is not None:
                while True:
                    line = live.get()
                    if line is None:
                        break
                    conn.sendall(line)
            self._send(conn, {"done": True, "job": job.summary()})
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass
        finally:
            if live is not None:
                job.unsubscribe(live)

    # -- admission -------------------------------------------------------
    def _admit(
        self, raw: Any
    ) -> Tuple[Optional[Job], bool, Optional[Dict[str, Any]]]:
        try:
            canon = canonical_spec(raw if raw is not None else {})
        except ValueError as exc:
            return None, False, self._reject("invalid", f"invalid: {exc}")
        jid = job_id(canon)
        cells = count_cells(canon)
        if cells > self.config.max_cells:
            return None, False, self._reject(
                jid,
                f"cell budget: job wants {cells} cells, "
                f"max_cells={self.config.max_cells}",
            )
        with self._lock:
            existing = self._jobs.get(jid)
            if existing is not None and existing.state in (
                "queued", "running", "done",
            ):
                # In-flight or completed dedup: attach, don't re-run.
                existing.clients += 1
                with self._mlock:
                    self.metrics.counter(
                        "repro_serve_jobs_total", status="deduped"
                    ).inc()
                return existing, True, None
            job = Job(jid, canon, self.config.backlog_events)
            try:
                self._queue.put_nowait(job)
            except queue.Full:
                return None, False, self._reject(
                    jid,
                    f"queue full: {self.config.max_queue} jobs "
                    "already admitted",
                )
            self._jobs[jid] = job
            self._depth += 1
            depth = self._depth
            self._trim_history()
        with self._mlock:
            self.metrics.gauge("repro_serve_queue_depth").set(depth)
        _JobRecorder(job, self.log).emit(
            "job_queued", job=jid, job_kind=canon["kind"],
            queue_depth=depth,
        )
        return job, False, None

    def _reject(self, jid: str, reason: str) -> Dict[str, Any]:
        with self._mlock:
            self.metrics.counter(
                "repro_serve_jobs_total", status="rejected"
            ).inc()
        if self.log.enabled:
            self.log.emit("job_rejected", job=jid, reason=reason)
        return {
            "ok": False,
            "rejected": True,
            "job": jid,
            "reason": reason,
        }

    def _trim_history(self) -> None:
        # Under self._lock.  Evict oldest *terminal* jobs beyond the
        # history bound; live jobs are never evicted.
        excess = len(self._jobs) - self.config.history
        if excess <= 0:
            return
        for jid in [
            j.id for j in self._jobs.values() if j.terminal
        ][:excess]:
            del self._jobs[jid]

    # -- the runner ------------------------------------------------------
    def _runner_loop(self) -> None:
        while not self._shutdown.is_set():
            try:
                job = self._queue.get(timeout=0.2)
            except queue.Empty:
                continue
            if job is None:
                continue
            self._run_job(job)

    def _make_executor(
        self, job: Job, rec: Recorder
    ) -> ParallelSweepExecutor:
        requested = job.spec.get("cell_timeout")
        cap = self.config.cell_timeout
        if requested is None:
            cell_timeout = cap
        elif cap is None:
            cell_timeout = float(requested)
        else:
            cell_timeout = min(float(requested), cap)
        return ParallelSweepExecutor(
            workers=self.config.workers,
            cache_dir=self.config.cache_dir,
            use_cache=self.config.use_cache,
            cell_timeout=cell_timeout,
            recorder=rec,
            topology_dir=self.config.topology_dir,
            metrics=self.metrics,
            backend=self.config.backend,
        )

    def _run_job(self, job: Job) -> None:
        rec = _JobRecorder(job, self.log)
        job.state = "running"
        job.started = time.time()
        start = time.perf_counter()
        rec.emit("job_start", job=job.id, job_kind=job.spec["kind"])
        status: str = "done"
        result: Optional[Dict[str, Any]] = None
        error: Optional[str] = None
        budget = self.config.job_timeout
        dog = (
            Watchdog(budget, exc_type=JobTimeout)
            if budget is not None
            else None
        )
        try:
            try:
                if dog is not None:
                    dog.start()
                executor = self._make_executor(job, rec)
                result = execute_job(job.spec, executor, recorder=rec)
                # A sweep whose cells crashed / timed out / failed is a
                # *failed job* with the per-cell records attached — not
                # a "done" job with bad news buried in the payload.
                bad = (result or {}).get("failed_cells") or []
                if bad:
                    status = "failed"
                    error = "{} cell(s) did not complete ({})".format(
                        len(bad),
                        ", ".join(sorted({str(c["status"]) for c in bad})),
                    )
            except JobTimeout:
                dog.mark_caught()
                status, error = "timeout", _budget_msg(budget)
            except Exception as exc:  # the job failed, not the daemon
                status = "failed"
                error = f"{type(exc).__name__}: {exc}"
            finally:
                if dog is not None:
                    dog.cancel()
        except JobTimeout:
            dog.mark_caught()
            status, error, result = "timeout", _budget_msg(budget), None
        if dog is not None and dog.absorb():
            status, error, result = "timeout", _budget_msg(budget), None
        duration = time.perf_counter() - start
        rec.emit("job_end", job=job.id, status=status, duration=duration)
        self._finish_job(job, status, result, error, duration)

    def _finish_job(
        self,
        job: Job,
        status: str,
        result: Optional[Dict[str, Any]],
        error: Optional[str],
        duration: float,
    ) -> None:
        job.finish(status, result, error, duration)
        with self._lock:
            self._depth -= 1
            depth = self._depth
        with self._mlock:
            self.metrics.counter(
                "repro_serve_jobs_total", status=status
            ).inc()
            self.metrics.histogram("repro_serve_job_seconds").observe(
                duration
            )
            self.metrics.gauge("repro_serve_queue_depth").set(depth)

    def _metrics_snapshot(self) -> Dict[str, Any]:
        # The runner mutates the registry concurrently; a snapshot
        # taken mid-insert can hit a dict-changed-during-iteration —
        # retry, it settles immediately.
        for _ in range(8):
            try:
                with self._mlock:
                    return self.metrics.snapshot()
            except RuntimeError:
                continue
        return {"counters": {}, "gauges": {}, "histograms": {},
                "schema": 0}


def _budget_msg(budget: Optional[float]) -> str:
    return f"job exceeded its {budget:g}s wall budget"
