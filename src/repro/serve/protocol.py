"""The wire protocol: JSON lines over a local stream socket.

One request per connection: the client sends a single JSON object line
``{"op": ..., ...}`` and reads JSON object lines back until the
connection closes.  Responses come in two flavours:

* **control lines** — carry ``"ok"`` (and, for streams, a final line
  carrying ``"done"``); these are daemon bookkeeping, not telemetry.
* **event lines** — schema-versioned :mod:`repro.obs` events
  (distinguished by their ``"kind"`` + ``"schema"`` envelope).  A
  watched submit streams the job's full telemetry lifecycle
  (``job_queued`` … ``job_end`` with the per-cell events in between),
  so a captured stream validates with ``scripts/check_telemetry.py``
  unchanged.

Ops
---

==========  ========================================================
``ping``      liveness probe → ``{"ok": true, "pong": ...}``
``submit``    submit a job spec; ``"watch": true`` streams events
              then ``{"done": true, "job": <summary>}``
``status``    one job's summary by id
``jobs``      every job the daemon remembers (newest last)
``stats``     queue depth + a metrics-registry snapshot
``shutdown``  stop accepting, finish the running job, exit
==========  ========================================================

Streams are ASCII (``json.dumps`` default) so a truncated tail is
always a byte-prefix of a valid line — the malformed-tail tolerance in
the telemetry readers handles the kill-mid-write case.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Iterator, Optional

#: Default rendezvous point (kept under results/ with the other
#: runtime artifacts; override with ``--socket``).
DEFAULT_SOCKET = "results/serve.sock"

#: Requests/response lines larger than this are protocol errors.
MAX_LINE_BYTES = 4 * 1024 * 1024

OPS = ("ping", "submit", "status", "jobs", "stats", "shutdown")


class ProtocolError(Exception):
    """Malformed request or response line."""


def dump_line(obj: Dict[str, Any]) -> bytes:
    """One wire line (ASCII JSON + newline)."""
    return (json.dumps(obj, sort_keys=True, default=repr) + "\n").encode(
        "ascii"
    )


def parse_request(line: bytes) -> Dict[str, Any]:
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"request is not JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("request is not a JSON object")
    op = obj.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; known: {list(OPS)}")
    return obj


def is_event(obj: Dict[str, Any]) -> bool:
    """Event line vs control line (see module docstring)."""
    return "kind" in obj and "schema" in obj


def read_lines(
    sock: socket.socket, timeout: Optional[float] = None
) -> Iterator[Dict[str, Any]]:
    """Yield parsed JSON object lines until EOF."""
    sock.settimeout(timeout)
    buf = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        buf += chunk
        while b"\n" in buf:
            line, buf = buf.split(b"\n", 1)
            if not line.strip():
                continue
            try:
                obj = json.loads(line)
            except ValueError as exc:
                raise ProtocolError(
                    f"response line is not JSON: {exc}"
                ) from None
            if not isinstance(obj, dict):
                raise ProtocolError("response line is not a JSON object")
            yield obj
        if len(buf) > MAX_LINE_BYTES:
            raise ProtocolError("response line exceeds MAX_LINE_BYTES")
