"""Client side of the wire protocol (``repro submit`` / ``repro
jobs`` and the load harness build on this).

Every operation opens a fresh connection, sends one request line, and
reads the response — see :mod:`repro.serve.protocol`.  The interesting
call is :meth:`ServeClient.submit_watch`, which yields the job's
telemetry events as they stream and returns when the final control
line arrives.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import ReproError
from repro.serve.protocol import (
    DEFAULT_SOCKET,
    dump_line,
    is_event,
    read_lines,
)


class ServeError(ReproError):
    """Daemon unreachable or protocol-level failure (a *rejected* job
    is not an error — it is a structured response)."""


class ServeClient:
    def __init__(
        self,
        socket_path: str = DEFAULT_SOCKET,
        timeout: Optional[float] = 60.0,
    ):
        self.socket_path = str(socket_path)
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------
    def _connect(self) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.socket_path)
        except OSError as exc:
            sock.close()
            raise ServeError(
                f"cannot reach daemon at {self.socket_path}: {exc}"
            ) from None
        return sock

    def _request(self, req: Dict[str, Any]) -> Dict[str, Any]:
        """One request, one response line."""
        sock = self._connect()
        try:
            sock.sendall(dump_line(req))
            for obj in read_lines(sock, timeout=self.timeout):
                return obj
            raise ServeError("daemon closed the connection mid-reply")
        except OSError as exc:
            raise ServeError(f"request failed: {exc}") from None
        finally:
            sock.close()

    # -- operations ------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self._request({"op": "ping"})

    def stats(self) -> Dict[str, Any]:
        return self._request({"op": "stats"})

    def jobs(self) -> List[Dict[str, Any]]:
        resp = self._request({"op": "jobs"})
        return resp.get("jobs", [])

    def status(self, job: str) -> Dict[str, Any]:
        return self._request({"op": "status", "job": job})

    def shutdown(self) -> Dict[str, Any]:
        return self._request({"op": "shutdown"})

    def submit(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """Fire-and-forget submit; returns the ack (or the structured
        rejection — check ``resp.get("ok")``)."""
        return self._request({"op": "submit", "job": spec})

    def submit_watch(
        self, spec: Dict[str, Any]
    ) -> Iterator[Dict[str, Any]]:
        """Submit and stream: yields the ack/rejection line first, then
        every telemetry event line, then the final ``done`` line."""
        sock = self._connect()
        try:
            sock.sendall(
                dump_line({"op": "submit", "job": spec, "watch": True})
            )
            for obj in read_lines(sock, timeout=self.timeout):
                yield obj
                if obj.get("done") or obj.get("ok") is False:
                    return
        except OSError as exc:
            raise ServeError(f"watch stream failed: {exc}") from None
        finally:
            sock.close()

    # -- conveniences ----------------------------------------------------
    def run_job(
        self, spec: Dict[str, Any]
    ) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
        """Submit, watch to completion; returns ``(final, events)``.
        ``final`` is the job summary (or the rejection line)."""
        events: List[Dict[str, Any]] = []
        final: Dict[str, Any] = {}
        for obj in self.submit_watch(spec):
            if is_event(obj):
                events.append(obj)
            else:
                final = obj
        return final, events

    def wait_ready(self, budget: float = 10.0) -> bool:
        """Poll until the daemon answers ``ping`` (startup helper)."""
        deadline = time.monotonic() + budget
        while time.monotonic() < deadline:
            try:
                if self.ping().get("ok"):
                    return True
            except ServeError:
                time.sleep(0.05)
        return False
