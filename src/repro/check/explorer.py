"""Bounded exhaustive exploration of the schedule space.

For small n the set of schedules the oblivious adversary can force is
finite: at every choice point the next event is one of the enabled
wake/delivery heads (see :mod:`repro.check.controller`).  The explorer
enumerates this tree by **stateless re-execution** — each schedule is
one fresh controlled run replaying a choice prefix and then following
the canonical (index-0) continuation, recording every free choice point
where siblings remain to be visited.  Two standard reductions keep the
tree tractable:

* **state deduplication** — a blake2b fingerprint of the
  schedule-relevant state (node algorithm state, awake flags, rng
  streams, channel contents, schedule position, monotone message
  totals; *not* event times or sequence numbers).  Reaching an
  already-seen state stops the branch: the first visit enqueued that
  state's siblings, so its subtree is covered exactly once.
* **sleep-set partial-order reduction** (Godefroid) — when two enabled
  deliveries target *distinct* destination vertices they commute:
  executing either leaves the other enabled and the final state equal.
  After branching on one, the other enters the child's sleep set and
  is not branched again until a dependent event (any wake, or a
  delivery to the same destination) wakes it.  Wakes are conservatively
  dependent on everything.  POR soundness is argued in
  ``docs/modelcheck.md`` and regression-tested by comparing por=True
  and por=False reachable sets.

Budgets (``max_schedules``, ``max_states``, ``max_depth``) bound the
work; ``completed`` reports whether the space was exhausted within
them.  Every completed schedule is checked against the invariant set
(:mod:`repro.check.invariants`); violations carry their replayable
choice sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.check.controller import (
    ABORT,
    ChoicePoint,
    EnabledEvent,
    ScheduleController,
)
from repro.check.invariants import (
    Invariant,
    InvariantContext,
    default_invariants,
)
from repro.errors import SimulationError
from repro.obs.recorder import NULL_RECORDER
from repro.sim.runner import run_wakeup
from repro.sim.trace import Trace

#: A world factory returns a fresh (setup, algorithm, adversary) triple
#: per call; runs must not share mutable state.
WorldFactory = Callable[[], tuple]


@dataclass
class ExploreStats:
    """Counters surfaced in ``check_stats`` telemetry."""

    schedules: int = 0
    states: int = 0
    pruned_sleep: int = 0
    pruned_state: int = 0
    truncated: int = 0
    violations: int = 0
    max_depth: int = 0


@dataclass
class FoundViolation:
    """One invariant violation with its replayable witness."""

    invariant: str
    detail: str
    choices: Tuple[int, ...]
    schedule_index: int


@dataclass
class ExploreResult:
    stats: ExploreStats
    violations: List[FoundViolation]
    #: Fingerprints of every state visited at any choice point, plus
    #: final states — the containment test's reference set.
    states: Set[str]
    #: (messages, bits, awake_count, final_fingerprint) per schedule.
    outcomes: Set[Tuple[int, int, int, str]]
    #: True when the whole space fit inside the budgets.
    completed: bool


class _ExplorerShared:
    """State shared across the DFS runs of one explore() call."""

    def __init__(self, por, dedup, max_depth, mutation):
        self.por = por
        self.dedup = dedup
        self.max_depth = max_depth
        self.mutation = mutation
        self.seen: Set[str] = set()
        self.stats = ExploreStats()


class _DfsController(ScheduleController):
    """Drives one run: replays ``prefix``, then takes the first
    non-slept candidate everywhere, recording sibling branch points."""

    record_states = True

    def __init__(self, shared: _ExplorerShared, prefix: Tuple[int, ...],
                 sleep: Dict[int, object]):
        self._shared = shared
        self._prefix = prefix
        # seq -> destination vertex of the sleeping delivery.
        self._sleep = dict(sleep)
        self._free_seen = 0
        #: (position, enabled, candidates, sleep-before-choice) per
        #: branch point with unvisited siblings.
        self.records: List[tuple] = []
        self.stopped: Optional[str] = None
        self.mutation = shared.mutation

    def _filter_sleep(self, ev: EnabledEvent) -> None:
        """Executed ``ev``: keep only sleeping events independent of it
        (deliveries to a different destination)."""
        if not self._sleep:
            return
        if ev.kind == "wake":
            self._sleep.clear()
        else:
            dst = ev.vertex
            self._sleep = {
                s: d for s, d in self._sleep.items() if d != dst
            }

    def choose(self, cp: ChoicePoint) -> int:
        shared = self._shared
        past_prefix = self._free_seen >= len(self._prefix)
        if not cp.free:
            # The sleep set handed to this run reflects the state
            # *after* the branch choice; it only evolves from there on.
            if past_prefix:
                self._filter_sleep(cp.enabled[0])
            return 0
        pos = self._free_seen
        self._free_seen += 1
        if pos < len(self._prefix):
            idx = self._prefix[pos]
            if not 0 <= idx < len(cp.enabled):
                raise SimulationError(
                    "exploration replay diverged: prefix choice "
                    f"{idx} of {len(cp.enabled)} enabled at point {pos}"
                )
            return idx
        # New territory.
        if shared.dedup:
            fp = cp.fingerprint()
            if fp in shared.seen:
                shared.stats.pruned_state += 1
                self.stopped = "state"
                return ABORT
            shared.seen.add(fp)
        enabled = cp.enabled
        if shared.por and self._sleep:
            candidates = [
                i
                for i, ev in enumerate(enabled)
                if not (ev.kind == "deliver" and ev.seq in self._sleep)
            ]
            if not candidates:
                shared.stats.pruned_sleep += 1
                self.stopped = "sleep"
                return ABORT
        else:
            candidates = list(range(len(enabled)))
        if pos >= shared.max_depth:
            shared.stats.truncated += 1
        elif len(candidates) > 1:
            self.records.append(
                (pos, enabled, tuple(candidates), dict(self._sleep))
            )
        idx = candidates[0]
        self._filter_sleep(enabled[idx])
        return idx


def _child_sleep(
    por: bool,
    sleep_at: Dict[int, object],
    done: Sequence[EnabledEvent],
    ev: EnabledEvent,
) -> Dict[int, object]:
    """Sleep set for the child that takes ``ev`` at a branch point
    where the events in ``done`` were (or will be) explored first:
    everything slept or done that is independent of ``ev``."""
    if not por:
        return {}
    child: Dict[int, object] = {}
    if ev.kind == "deliver":
        for s, d in sleep_at.items():
            if d != ev.vertex:
                child[s] = d
        for prev in done:
            if prev.kind == "deliver" and prev.vertex != ev.vertex:
                child[prev.seq] = prev.vertex
    # A wake is dependent on everything: the child starts sleep-free.
    return child


def explore(
    world: WorldFactory,
    *,
    invariants: Optional[List[Invariant]] = None,
    max_schedules: int = 20_000,
    max_states: int = 500_000,
    max_depth: int = 256,
    max_violations: int = 25,
    por: bool = True,
    dedup: bool = True,
    seed: int = 0,
    laziness: float = 0.0,
    mutation: Optional[str] = None,
    recorder=None,
) -> ExploreResult:
    """Exhaustively explore the schedule space of one workload.

    ``world`` builds a fresh (setup, algorithm, adversary) per run.
    When ``invariants`` is None the default set for the workload's
    algorithm attaches (:func:`default_invariants`).  A planted
    ``mutation`` disables POR automatically — the planted bugs break
    the commutativity argument the reduction relies on.

    Emits one ``check_stats`` telemetry event when ``recorder`` is set.
    """
    rec = recorder if recorder is not None else NULL_RECORDER
    if mutation is not None:
        por = False
    shared = _ExplorerShared(por, dedup, max_depth, mutation)
    stats = shared.stats
    states: Set[str] = set()
    outcomes: Set[Tuple[int, int, int, str]] = set()
    violations: List[FoundViolation] = []
    algorithm_name: Optional[str] = None
    completed = True

    # DFS over choice prefixes; each entry is (prefix, sleep-set).
    stack: List[Tuple[Tuple[int, ...], Dict[int, object]]] = [((), {})]
    while stack:
        if stats.schedules >= max_schedules or len(states) >= max_states:
            completed = False
            break
        prefix, sleep = stack.pop()
        setup, algorithm, adversary = world()
        if invariants is None:
            invariants = default_invariants(algorithm.name)
        algorithm_name = algorithm.name
        ctl = _DfsController(shared, prefix, sleep)
        ctl.laziness = laziness
        trace = Trace()
        result = run_wakeup(
            setup,
            algorithm,
            adversary,
            engine="async",
            seed=seed,
            require_all_awake=False,
            trace=trace,
            controller=ctl,
        )
        log = ctl.log
        states.update(log.states)
        states.add(log.final_state)
        if len(log.choices) > stats.max_depth:
            stats.max_depth = len(log.choices)
        if log.completed:
            stats.schedules += 1
            outcomes.add(
                (
                    result.messages,
                    result.bits,
                    result.metrics.awake_count(),
                    log.final_state,
                )
            )
            ictx = InvariantContext(
                setup=setup,
                adversary=adversary,
                result=result,
                trace=trace,
                log=log,
            )
            for inv in invariants:
                problem = inv.check(ictx)
                if problem is not None:
                    stats.violations += 1
                    if len(violations) < max_violations:
                        violations.append(
                            FoundViolation(
                                inv.name,
                                problem,
                                tuple(log.choices),
                                stats.schedules - 1,
                            )
                        )
        # Enqueue unexplored siblings (reversed: deepest-first pop).
        for pos, enabled, candidates, sleep_at in reversed(ctl.records):
            done: List[EnabledEvent] = [enabled[candidates[0]]]
            for ci in candidates[1:]:
                ev = enabled[ci]
                child = _child_sleep(por, sleep_at, done, ev)
                stack.append((tuple(log.choices[:pos]) + (ci,), child))
                done.append(ev)
    stats.states = len(states)

    from repro.obs.metrics import get_registry

    mreg = get_registry()
    if mreg.enabled:
        algo = algorithm_name or "?"
        mreg.counter(
            "repro_check_schedules_total", algorithm=algo
        ).inc(stats.schedules)
        mreg.counter(
            "repro_check_states_total", algorithm=algo
        ).inc(stats.states)
        mreg.counter(
            "repro_check_dedup_hits_total", algorithm=algo
        ).inc(stats.pruned_state)
        mreg.counter(
            "repro_check_sleep_prunes_total", algorithm=algo
        ).inc(stats.pruned_sleep)

    if rec.enabled:
        rec.emit(
            "check_stats",
            algorithm=algorithm_name or "?",
            schedules=stats.schedules,
            states=stats.states,
            pruned_sleep=stats.pruned_sleep,
            pruned_state=stats.pruned_state,
            violations=stats.violations,
            max_depth=stats.max_depth,
            completed=completed,
        )
    return ExploreResult(
        stats=stats,
        violations=violations,
        states=states,
        outcomes=outcomes,
        completed=completed,
    )


def random_probe(
    world: WorldFactory,
    *,
    seed: int = 0,
    laziness: float = 0.0,
) -> Tuple[Set[str], Tuple[int, int, int, str]]:
    """One random-controller run: (visited fingerprints, outcome).

    The containment test asserts both land inside the exhaustive
    explorer's reachable set.
    """
    from repro.check.controller import RandomController

    setup, algorithm, adversary = world()
    ctl = RandomController(seed=seed, laziness=laziness,
                           record_states=True)
    result = run_wakeup(
        setup,
        algorithm,
        adversary,
        engine="async",
        seed=0,
        require_all_awake=False,
        controller=ctl,
    )
    log = ctl.log
    visited = set(log.states)
    visited.add(log.final_state)
    outcome = (
        result.messages,
        result.bits,
        result.metrics.awake_count(),
        log.final_state,
    )
    return visited, outcome
