"""Pluggable invariants evaluated on every explored schedule.

Two families:

* **safety** — properties of the model itself, checked against the
  execution trace: a node never sends before its wake event, message
  accounting charges every send to the right sender, per-channel
  FIFO order and the (0, 1] delay bound hold on every delivery;
* **liveness / bounds** — properties of the algorithm: every node is
  awake at quiescence, and the time/message totals stay within the
  per-algorithm *claimed bound shape* (wired from the registry name —
  e.g. flooding sends at most one broadcast per node, 2m messages).

An invariant returns ``None`` when satisfied, or a human-readable
description of the violation.  The explorer runs every invariant on
every completed schedule; a non-None answer becomes a
:class:`~repro.check.explorer.FoundViolation` that the shrinker can
minimize (see ``docs/modelcheck.md``).
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.check.controller import ScheduleLog
from repro.sim.trace import Trace

#: Slack on the per-delivery delay bound: the plain engine's FIFO bump
#: may legally push a delivery _FIFO_EPS past the raw delay.
_DELAY_TOL = 1e-9

#: Slack on float time comparisons in the bound invariants.
_TIME_TOL = 1e-6


@dataclass
class InvariantContext:
    """Everything an invariant may inspect about one execution."""

    setup: object
    adversary: object
    result: object  # WakeUpResult
    trace: Trace
    log: Optional[ScheduleLog] = None

    @property
    def n(self) -> int:
        return self.setup.n

    @property
    def m(self) -> int:
        return self.setup.graph.num_edges

    @property
    def scheduled_wakes(self) -> int:
        return len(self.adversary.schedule)


class Invariant:
    """Base: ``check`` returns None (ok) or a violation description."""

    name = "invariant"

    def check(self, ctx: InvariantContext) -> Optional[str]:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Safety
# ----------------------------------------------------------------------


class SendsRequireWake(Invariant):
    """No node sends a message before its wake event (Sec 1.1: a
    sleeping node performs no computation)."""

    name = "sends-require-wake"

    def check(self, ctx):
        awake = set()
        for e in ctx.trace.events:
            if e.kind == "wake":
                awake.add(e.vertex)
            elif e.kind == "send" and e.vertex not in awake:
                return (
                    f"{e.vertex!r} sent {e.detail.payload!r} at "
                    f"t={e.time:.6g} before any wake event"
                )
        return None


class MessageAccounting(Invariant):
    """The metrics charge every traced send to the right sender, and
    nothing is delivered that was never sent."""

    name = "message-accounting"

    def check(self, ctx):
        sends = ctx.trace.sends()
        metrics = ctx.result.metrics
        if len(sends) != metrics.messages_total:
            return (
                f"trace has {len(sends)} sends but metrics charge "
                f"{metrics.messages_total}"
            )
        by_src = Counter(m.src for m in sends)
        if by_src != +metrics.sent_by:
            return (
                f"per-sender counts diverge: trace {dict(by_src)!r} vs "
                f"metrics {dict(+metrics.sent_by)!r}"
            )
        by_edge = Counter((m.src, m.dst) for m in sends)
        if by_edge != +metrics.edge_messages:
            return "per-edge message counts diverge from the trace"
        bits = sum(m.bits for m in sends)
        if bits != metrics.bits_total:
            return (
                f"trace carries {bits} bits but metrics charge "
                f"{metrics.bits_total}"
            )
        sent_seqs = {m.seq for m in sends}
        for m in ctx.trace.deliveries():
            if m.seq not in sent_seqs:
                return f"delivered message seq {m.seq} was never sent"
        return None


class FifoPerChannel(Invariant):
    """Every directed channel delivers in send order, and every
    realized delay stays in (0, 1] (tau-normalized, eps slack for the
    engine's FIFO bump)."""

    name = "fifo-per-channel"

    def check(self, ctx):
        last_seq: Dict = {}
        for e in ctx.trace.events:
            if e.kind != "deliver":
                continue
            msg = e.detail
            delay = e.time - msg.sent_at
            if not 0.0 < delay <= 1.0 + _DELAY_TOL:
                return (
                    f"seq {msg.seq} over {msg.src!r}->{msg.dst!r} "
                    f"realized delay {delay:.6g} outside (0, 1]"
                )
            chan = (msg.src, msg.dst)
            prev = last_seq.get(chan)
            if prev is not None and msg.seq < prev:
                return (
                    f"channel {msg.src!r}->{msg.dst!r} delivered seq "
                    f"{msg.seq} after seq {prev} (FIFO violated)"
                )
            last_seq[chan] = msg.seq
        return None


# ----------------------------------------------------------------------
# Liveness / bounds
# ----------------------------------------------------------------------


class AllAwakeAtQuiescence(Invariant):
    """The wake-up problem is solved: no node is still asleep when the
    execution quiesces."""

    name = "all-awake-at-quiescence"

    def check(self, ctx):
        asleep = ctx.result.asleep
        if asleep:
            names = ", ".join(sorted(repr(v) for v in asleep))
            return f"{len(asleep)} node(s) asleep at quiescence: {names}"
        return None


#: Per-algorithm message-bound shapes (registry name -> bound callable).
#: These are the *claimed* worst-case shapes the exhaustive explorer
#: validates over every schedule: flooding broadcasts once per node
#: (<= sum of degrees = 2m); echo-flooding adds one ack per node; the
#: DFS token of dfs-rank crosses each edge at most twice per scheduled
#: wake (each wake mints at most one token).
CLAIMED_MESSAGE_BOUNDS: Dict[str, Callable[[InvariantContext], float]] = {
    "flooding": lambda ctx: 2 * ctx.m,
    "echo-flooding": lambda ctx: 2 * ctx.m + ctx.n,
    "dfs-rank": lambda ctx: 2 * ctx.m * ctx.scheduled_wakes + 2 * ctx.n,
}


class ClaimedMessageBound(Invariant):
    """Message total within the algorithm's claimed bound shape."""

    name = "claimed-message-bound"

    def check(self, ctx):
        bound_fn = CLAIMED_MESSAGE_BOUNDS.get(ctx.result.algorithm)
        if bound_fn is None:
            return None
        bound = bound_fn(ctx)
        if ctx.result.messages > bound:
            return (
                f"{ctx.result.algorithm} sent {ctx.result.messages} "
                f"messages, over the claimed bound {bound:g} "
                f"(n={ctx.n}, m={ctx.m}, wakes={ctx.scheduled_wakes})"
            )
        return None


class FloodingTimeBound(Invariant):
    """Flooding's time guarantee, generalized to staggered schedules:
    every node v wakes by ``min over scheduled (u, t_u) of
    (t_u + dist(u, v))`` — each hop costs at most tau = 1.  This is the
    rho_awk statement of Eq. 1 evaluated against the *realized* wake
    times, valid for any delay assignment the adversary can produce.
    """

    name = "flooding-time-bound"

    def check(self, ctx):
        graph = ctx.setup.graph
        bound: Dict = {}
        for u, t_u in ctx.adversary.schedule.times().items():
            # BFS from u with offset t_u; keep per-vertex minima.
            dist = {u: float(t_u)}
            frontier = deque([u])
            while frontier:
                x = frontier.popleft()
                for y in graph.neighbors(x):
                    if y not in dist:
                        dist[y] = dist[x] + 1.0
                        frontier.append(y)
            for v, d in dist.items():
                if v not in bound or d < bound[v]:
                    bound[v] = d
        for v, woke_at in ctx.result.wake_time.items():
            b = bound.get(v)
            if b is not None and woke_at > b + _TIME_TOL:
                return (
                    f"{v!r} woke at t={woke_at:.6g}, past the flooding "
                    f"bound {b:.6g}"
                )
        return None


# ----------------------------------------------------------------------
# Wiring
# ----------------------------------------------------------------------


def default_invariants(algorithm_name: Optional[str] = None) -> List[Invariant]:
    """The standard invariant set for one algorithm.

    Safety invariants always apply; the bound invariants attach only
    when the registry name has a claimed shape to check against.
    """
    invs: List[Invariant] = [
        SendsRequireWake(),
        MessageAccounting(),
        FifoPerChannel(),
        AllAwakeAtQuiescence(),
    ]
    if algorithm_name in CLAIMED_MESSAGE_BOUNDS:
        invs.append(ClaimedMessageBound())
    if algorithm_name in ("flooding", "echo-flooding"):
        invs.append(FloodingTimeBound())
    return invs
