"""Deterministic world factories for ``check`` / ``worstcase``.

A *world* is a zero-argument callable returning a fresh
``(setup, algorithm, adversary)`` triple.  The explorer, shrinker, and
worst-case search re-execute runs and need bit-equal starting states,
so topology, wake set, and stagger are resolved exactly once and the
factory rebuilds an identical world per call.

Extracted from the CLI so the :mod:`repro.serve` daemon (whose job
specs arrive as plain dicts over a socket) and the ``repro check`` /
``repro worstcase`` subcommands share one construction path.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Tuple

from repro.errors import ReproError
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule

#: Topologies :func:`build_check_world` accepts for ``graph``.
CHECK_GRAPHS = ("complete", "path", "cycle", "star", "er")

World = Callable[[], Tuple[object, object, Adversary]]


def build_check_world(
    algo,
    n: int,
    graph: str = "cycle",
    awake: int = 1,
    stagger: float = 0.0,
    degree: float = 3.0,
    seed: int = 0,
) -> Tuple[World, Dict]:
    """World factory over a named small topology.

    Returns ``(world, times)`` where ``times`` is the resolved wake
    schedule (vertex -> wake time) — callers embed it in replay
    artifacts.
    """
    from repro.graphs.generators import (
        complete_graph,
        connected_erdos_renyi,
        cycle_graph,
        path_graph,
        star_graph,
    )

    if graph == "er":
        g = connected_erdos_renyi(n, degree / max(1, n - 1), seed=seed)
    elif graph in CHECK_GRAPHS:
        g = {
            "complete": complete_graph,
            "path": path_graph,
            "cycle": cycle_graph,
            "star": star_graph,
        }[graph](n)
    else:
        raise ReproError(
            f"unknown check graph {graph!r}; known: {CHECK_GRAPHS}"
        )
    rng = random.Random(seed + 1)
    woken = rng.sample(sorted(g.vertices(), key=repr),
                       max(1, min(awake, n)))
    times = {v: i * stagger for i, v in enumerate(woken)}
    knowledge = Knowledge.KT1 if algo.requires_kt1 else Knowledge.KT0
    bandwidth = "CONGEST" if algo.congest_safe else "LOCAL"
    setup_seed = seed + 2

    def world():
        setup = make_setup(
            g, knowledge=knowledge, bandwidth=bandwidth, seed=setup_seed
        )
        return (
            setup,
            algo,
            Adversary(WakeSchedule(dict(times)), UnitDelay()),
        )

    return world, times


def build_class_g_world(algo, n: int, seed: int = 0) -> Tuple[World, Dict]:
    """World factory over the Theorem-1 lower-bound topology."""
    from repro.lowerbounds.graph_g import build_class_g

    cg = build_class_g(n)
    knowledge = Knowledge.KT1 if algo.requires_kt1 else Knowledge.KT0
    times = {v: 0.0 for v in cg.centers}

    def world():
        setup = cg.make_setup(
            seed=seed + 2, bandwidth="LOCAL", knowledge=knowledge
        )
        return (
            setup,
            algo,
            Adversary(WakeSchedule(dict(times)), UnitDelay()),
        )

    return world, times
