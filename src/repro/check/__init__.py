"""repro.check — adversarial schedule explorer.

Bounded model checking (:mod:`~repro.check.explorer`), worst-case
schedule search (:mod:`~repro.check.worstcase`), counterexample
shrinking (:mod:`~repro.check.shrink`), all built on the controlled
async engine loop (:mod:`~repro.check.controller`).  See
``docs/modelcheck.md``.
"""

from repro.check.controller import (
    ABORT,
    DEFAULT_REPLAY_DIR,
    MUTATION_SKIP_FIFO,
    ChoicePoint,
    EnabledEvent,
    RandomController,
    ReplayController,
    ReplayDelay,
    ScheduleController,
    ScheduleLog,
    load_replay,
    make_replay,
    save_replay,
)
from repro.check.explorer import (
    ExploreResult,
    ExploreStats,
    FoundViolation,
    explore,
    random_probe,
)
from repro.check.invariants import (
    CLAIMED_MESSAGE_BOUNDS,
    Invariant,
    InvariantContext,
    default_invariants,
)
from repro.check.shrink import ShrinkOutcome, shrink_violation
from repro.check.worstcase import (
    GREEDY_POLICIES,
    PolicyController,
    WorstCaseResult,
    baseline_trial_specs,
    random_baseline,
    worstcase_search,
)

__all__ = [
    "ABORT",
    "DEFAULT_REPLAY_DIR",
    "MUTATION_SKIP_FIFO",
    "ChoicePoint",
    "EnabledEvent",
    "RandomController",
    "ReplayController",
    "ReplayDelay",
    "ScheduleController",
    "ScheduleLog",
    "load_replay",
    "make_replay",
    "save_replay",
    "ExploreResult",
    "ExploreStats",
    "FoundViolation",
    "explore",
    "random_probe",
    "CLAIMED_MESSAGE_BOUNDS",
    "Invariant",
    "InvariantContext",
    "default_invariants",
    "ShrinkOutcome",
    "shrink_violation",
    "GREEDY_POLICIES",
    "PolicyController",
    "WorstCaseResult",
    "baseline_trial_specs",
    "random_baseline",
    "worstcase_search",
]
