"""Controlled nondeterminism for the asynchronous engine.

The plain :class:`~repro.sim.async_engine.AsyncEngine` resolves all
nondeterminism up front: the adversary's :class:`DelayStrategy` fixes
every delivery time, and the heap fixes the event order.  This module
replaces that with an explicit *choice-point* model: at every step the
engine asks a :class:`ScheduleController` which of the currently
*enabled* events fires next —

* the head of the adversary's wake schedule (when no pending message is
  forced to be delivered first by the tau = 1 deadline), or
* the FIFO head of any nonempty directed channel.

The controller therefore ranges over exactly the executions the
oblivious adversary could have produced: every interleaving of channel
heads and scheduled wakes that respects per-channel FIFO order and the
(0, 1] delay bound.  Delivery *times* are assigned on the fly:

``lo = now + STEP`` and ``hi = min(own deadline, oldest other pending
deadline - GUARD, next wake time - GUARD)``; the chosen time is
``lo + laziness * (hi - lo)``.  ``laziness = 0`` (exploration) delivers
as eagerly as the timestamp order allows; ``laziness = 1`` (worst-case
time search) stretches every delivery to the edge of its legality
envelope.  When the envelope is empty (``hi < lo``) the engine falls
back to the eager time, which is always legal while the event budget
keeps the accumulated STEP drift far below tau = 1.

Because assigned times are strictly increasing, never collide with a
pending wake time, and are FIFO-monotone per channel, feeding the
recorded per-send delays back through :class:`ReplayDelay` makes the
*plain* engine reproduce the controlled execution bit-for-bit — the
heap sorts the same order the controller chose.  That closes the loop:
any schedule found by the explorer or the worst-case search is an
ordinary :class:`~repro.sim.adversary.DelayStrategy` artifact.

See ``docs/modelcheck.md`` for the full model and its two deliberate
approximations (equal-time wake permutations are not branched; wakes
within GUARD of a pending deadline are ordered after the delivery).
"""

from __future__ import annotations

import heapq
import json
import math
import random
from collections import deque
from dataclasses import dataclass, field
from hashlib import blake2b
from pathlib import Path
from typing import (
    Any,
    Deque,
    Dict,
    Hashable,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import SimulationError
from repro.sim.adversary import DelayStrategy
from repro.sim.async_engine import _STEP_EVERY
from repro.sim.messages import Message, bit_size_cached

Vertex = Hashable

#: Minimal spacing between consecutive controlled event times.  Small
#: enough that the drift over a full event budget stays far below the
#: tau = 1 delay bound (5e6 events * 1e-9 = 5e-3).
STEP = 1e-9

#: Room reserved before a pending deadline or wake time when stretching
#: a lazy delivery; also the slack under which a wake is considered
#: blocked by an older pending message's deadline.
GUARD = 1e-3

#: A controller may return this from ``choose`` to abort the run (the
#: explorer's pruning signal).  The engine stops cleanly with
#: ``log.completed = False``.
ABORT = -1

#: The planted bug for the mutation smoke test: the enabled set exposes
#: *every* pending message instead of only the per-channel FIFO heads,
#: so the controller can re-order a channel — exactly the bug the
#: ``fifo-per-channel`` invariant exists to catch.
MUTATION_SKIP_FIFO = "skip-fifo"

_MUTATIONS = (None, MUTATION_SKIP_FIFO)


class EnabledEvent(NamedTuple):
    """One event the controller may fire next.

    ``kind`` is "wake" or "deliver".  For wakes, ``vertex`` is the
    scheduled vertex, ``src`` is None, ``seq`` is the wake's heap
    sequence number and ``sent_at == deadline`` is the scheduled time.
    For deliveries, ``vertex`` is the destination, ``deadline`` is
    ``sent_at + 1.0`` (the tau = 1 bound) and ``seq`` is the message's
    global send sequence.  ``dst_awake`` tells worst-case policies
    whether firing this event can still wake somebody.
    """

    kind: str
    vertex: Vertex
    src: Optional[Vertex]
    seq: int
    sent_at: float
    deadline: float
    payload: Any
    dst_awake: bool


class ChoicePoint:
    """The engine's question to the controller: one of ``enabled``
    fires next.

    ``position`` is the ordinal among *free* choice points so far (the
    index into the recorded choice sequence); ``step`` counts all
    processed events.  ``free`` is False when only one event is enabled
    — the controller is still consulted (so it can observe the state)
    but any non-ABORT answer means index 0.  ``fingerprint()`` is the
    canonical state hash (memoized), shared with the explorer's
    deduplication.
    """

    __slots__ = ("position", "step", "now", "enabled", "free", "_loop", "_fp")

    def __init__(self, position, step, now, enabled, free, loop):
        self.position = position
        self.step = step
        self.now = now
        self.enabled = enabled
        self.free = free
        self._loop = loop
        self._fp: Optional[str] = None

    def fingerprint(self) -> str:
        """Canonical hash of the schedule-relevant simulation state."""
        if self._fp is None:
            self._fp = self._loop.fingerprint()
        return self._fp


@dataclass
class ScheduleLog:
    """Everything recorded about one controlled run.

    ``choices``/``branch_sizes`` cover the free choice points only (a
    replay needs nothing else — forced points have a unique answer);
    ``delays`` maps every message seq to its assigned delay, which is
    what :class:`ReplayDelay` feeds back into the plain engine.
    ``states`` is filled only when the controller sets
    ``record_states`` (one fingerprint per choice point).
    """

    choices: List[int] = field(default_factory=list)
    branch_sizes: List[int] = field(default_factory=list)
    delays: Dict[int, float] = field(default_factory=dict)
    states: List[str] = field(default_factory=list)
    final_state: str = ""
    steps: int = 0
    completed: bool = False


class ScheduleController:
    """Base controller: subclasses implement ``choose``.

    Class attributes are the protocol knobs the engine reads:
    ``laziness`` scales delivery times across the legality envelope,
    ``mutation`` enables a planted bug (tests only), ``record_states``
    asks the loop to log a state fingerprint at every choice point.
    The loop sets ``log`` (and keeps itself reachable as ``loop``)
    before the first ``choose`` call.
    """

    laziness: float = 0.0
    mutation: Optional[str] = None
    record_states: bool = False
    log: Optional[ScheduleLog] = None
    loop: Optional["_ControlledLoop"] = None

    def choose(self, cp: ChoicePoint) -> int:
        """Index into ``cp.enabled`` of the event to fire, or ABORT."""
        raise NotImplementedError


class ReplayController(ScheduleController):
    """Replays a recorded choice sequence bit-exactly.

    One recorded choice is consumed per *free* choice point.  In the
    default lenient mode an exhausted or out-of-range choice falls back
    to index 0 (the canonical event) — this is what lets the shrinker
    chop arbitrary chunks out of a sequence and still get a legal run.
    ``strict=True`` raises instead, for replay-fidelity tests.
    """

    def __init__(
        self,
        choices: Sequence[int],
        strict: bool = False,
        laziness: float = 0.0,
        mutation: Optional[str] = None,
    ):
        self._choices = [int(c) for c in choices]
        self._strict = strict
        self._i = 0
        self.laziness = laziness
        self.mutation = mutation

    def choose(self, cp: ChoicePoint) -> int:
        if not cp.free:
            return 0
        if self._i >= len(self._choices):
            if self._strict:
                raise SimulationError(
                    f"replay exhausted after {self._i} choices but the "
                    "run has more free choice points"
                )
            return 0
        c = self._choices[self._i]
        self._i += 1
        if not 0 <= c < len(cp.enabled):
            if self._strict:
                raise SimulationError(
                    f"replay choice {c} out of range for "
                    f"{len(cp.enabled)} enabled events"
                )
            return 0
        return c


class RandomController(ScheduleController):
    """Uniformly random choice at every free point — the sampling side
    of the containment test (random runs must stay inside the
    exhaustive explorer's reachable set)."""

    def __init__(self, seed: int = 0, laziness: float = 0.0,
                 record_states: bool = False):
        self._rng = random.Random(seed)
        self.laziness = laziness
        self.record_states = record_states

    def choose(self, cp: ChoicePoint) -> int:
        if not cp.free:
            return 0
        return self._rng.randrange(len(cp.enabled))


class ReplayDelay(DelayStrategy):
    """Feeds a controlled run's recorded per-seq delays back through
    the plain engine.

    A pure function of the send sequence number, so it is a legitimate
    oblivious :class:`DelayStrategy`; the controlled loop guarantees
    the recorded delays are in (0, 1], strictly increasing in global
    send order, and FIFO-monotone per channel — the plain heap then
    reproduces the controlled event order exactly.
    """

    def __init__(self, delays: Mapping[int, float]):
        self._delays = {int(k): float(v) for k, v in delays.items()}

    def delay(self, src, dst, sent_at, seq):
        try:
            return self._delays[seq]
        except KeyError:
            raise SimulationError(
                f"replay has no recorded delay for send seq {seq}; the "
                "replayed run diverged from the recorded one"
            ) from None


# ----------------------------------------------------------------------
# State canonicalization
# ----------------------------------------------------------------------


def _canon(obj, depth: int = 0):
    """A deterministic, order-insensitive normal form for node state.

    Dict/set iteration order and object identity must not leak into
    state fingerprints — two runs reaching the same logical state have
    to hash equal.  Unknown objects recurse through ``__dict__``; a
    default ``object.__repr__`` (which embeds a memory address) is
    rejected loudly rather than silently producing useless or — worse,
    across runs — colliding fingerprints.
    """
    if depth > 12:
        raise SimulationError("node state too deeply nested to fingerprint")
    t = type(obj)
    if obj is None or t in (int, float, str, bool, bytes):
        return obj
    if t in (tuple, list):
        return ("seq",) + tuple(_canon(x, depth + 1) for x in obj)
    if t in (set, frozenset):
        return ("set",) + tuple(
            sorted(repr(_canon(x, depth + 1)) for x in obj)
        )
    if t is dict:
        return ("map",) + tuple(
            sorted(
                (repr(_canon(k, depth + 1)), repr(_canon(v, depth + 1)))
                for k, v in obj.items()
            )
        )
    if isinstance(obj, random.Random):
        return _rng_token(obj)
    d = getattr(obj, "__dict__", None)
    if d is not None:
        return (t.__name__, _canon(d, depth + 1))
    r = repr(obj)
    if " at 0x" in r:
        raise SimulationError(
            f"cannot fingerprint state containing {t.__name__} (its repr "
            "embeds a memory address; give it a stable __repr__)"
        )
    return (t.__name__, r)


def _rng_token(r) -> Tuple[str, object]:
    """Stable token for a node's rng: the raw seed before first use, a
    digest of the generator state after."""
    if type(r) is int:
        return ("rng-seed", r)
    return (
        "rng-state",
        blake2b(repr(r.getstate()).encode("utf-8"), digest_size=8).hexdigest(),
    )


# ----------------------------------------------------------------------
# The controlled event loop
# ----------------------------------------------------------------------


class _ControlledLoop:
    """One controlled execution over an already-constructed engine.

    Mirrors the plain loop's observable behaviour exactly — metrics,
    trace events, telemetry heartbeats, event accounting — while
    sourcing the event order from the controller and the event times
    from the STEP/GUARD scheme above.
    """

    def __init__(self, engine):
        controller = engine._controller
        self._engine = engine
        self._controller = controller
        self._laziness = float(getattr(controller, "laziness", 0.0))
        if not 0.0 <= self._laziness <= 1.0:
            raise SimulationError(
                f"controller laziness {self._laziness} outside [0, 1]"
            )
        self._mutation = getattr(controller, "mutation", None)
        if self._mutation not in _MUTATIONS:
            raise SimulationError(
                f"unknown controller mutation {self._mutation!r}"
            )
        if engine._drops is not None:
            raise SimulationError(
                "schedule controllers do not compose with drop strategies"
            )
        self.log = ScheduleLog()
        controller.log = self.log
        controller.loop = self
        # The engine's __init__ already heap-pushed every scheduled
        # wake; popping them out yields exactly the plain loop's firing
        # order (time, then schedule insertion seq).  Wakes consumed
        # seqs 0..W-1 of the shared counter, so message seqs — which
        # continue from the same counter — line up with a plain run's.
        wakes: List[Tuple[float, int, Vertex]] = []
        heap = engine._heap
        while heap:
            t, s, _kind, v = heapq.heappop(heap)
            wakes.append((t, s, v))
        self._wakes = wakes
        self._wake_i = 0
        self._channels: Dict[Tuple[Vertex, Vertex], Deque[Message]] = {}
        self._now = engine._now

    # -- enabled-set construction --------------------------------------
    def _oldest_deadline(self) -> Optional[float]:
        """Deadline (sent_at + 1) of the oldest pending message."""
        oldest = None
        for q in self._channels.values():
            if q and (oldest is None or q[0].sent_at < oldest):
                oldest = q[0].sent_at
        return None if oldest is None else oldest + 1.0

    def _wake_enabled(self, t_wake: float) -> bool:
        """A wake may fire next unless an older pending message's
        deadline forces that delivery first (with GUARD slack so the
        delivery keeps timestamp room below the wake)."""
        d_min = self._oldest_deadline()
        return d_min is None or d_min > t_wake + GUARD

    def _enabled_events(self) -> List[EnabledEvent]:
        vstate = self._engine._vstate
        if self._mutation == MUTATION_SKIP_FIFO:
            msgs = [m for q in self._channels.values() for m in q]
        else:
            msgs = [q[0] for q in self._channels.values() if q]
        msgs.sort(key=lambda m: m.seq)
        enabled: List[EnabledEvent] = []
        if self._wake_i < len(self._wakes):
            t_w, s_w, v_w = self._wakes[self._wake_i]
            if self._wake_enabled(t_w):
                enabled.append(
                    EnabledEvent(
                        "wake", v_w, None, s_w, t_w, t_w, None,
                        vstate[v_w][0]._awake,
                    )
                )
        # A delivery needs a timestamp strictly between now and the
        # next pending wake; when the wake leaves no room (e.g. several
        # wakes scheduled at the same instant), only the wake is
        # enabled — mirroring the plain engine, where same-time events
        # fire in heap order and wakes precede the (strictly later)
        # deliveries.
        if self._wake_i < len(self._wakes):
            t_w = self._wakes[self._wake_i][0]
            if self._now + STEP >= t_w:
                return enabled
        for m in msgs:
            enabled.append(
                EnabledEvent(
                    "deliver", m.dst, m.src, m.seq, m.sent_at,
                    m.sent_at + 1.0, m.payload, vstate[m.dst][0]._awake,
                )
            )
        return enabled

    # -- event execution -----------------------------------------------
    def _advance(self, time: float) -> None:
        if time > self._now:
            self._now = time
            self._engine._now = time

    def _fire_wake(self, ev: EnabledEvent) -> None:
        engine = self._engine
        self._wake_i += 1
        self._advance(ev.deadline)
        ctx, node = engine._vstate[ev.vertex]
        if ctx._awake:
            return  # waking is permanent; a repeat wake only advances time
        ctx._awake = True
        ctx.wake_cause = "adversary"
        engine.metrics.record_wake(ev.vertex, ev.deadline, "adversary")
        if engine.trace is not None:
            engine.trace.wake(ev.deadline, ev.vertex, "adversary")
        node.on_wake(ctx)
        self._flush(ev.vertex, ev.deadline)

    def _assign_time(self, ev: EnabledEvent) -> float:
        """Delivery-time assignment: eager floor, lazy ceiling."""
        lo = self._now + STEP
        if lo > ev.deadline:
            raise SimulationError(
                "controlled schedule exhausted the timestamp room below "
                f"the tau = 1 deadline of send seq {ev.seq} (too many "
                "events squeezed under one deadline)"
            )
        tau = lo
        if self._laziness > 0.0:
            hi = ev.deadline
            # The message being delivered is already out of its
            # channel, so this scans exactly the *other* pending sends.
            d_other = self._oldest_deadline()
            if d_other is not None and d_other - GUARD < hi:
                hi = d_other - GUARD
            if self._wake_i < len(self._wakes):
                t_w = self._wakes[self._wake_i][0]
                if t_w - GUARD < hi:
                    hi = t_w - GUARD
            if hi > lo:
                tau = lo + self._laziness * (hi - lo)
            # Float rounding can push the realized delay (tau - sent_at,
            # recomputed by the plain engine on replay) a few ulps past
            # the tau = 1 bound; nudge tau down until it passes.
            while tau - ev.sent_at > 1.0 and tau > lo:
                tau = math.nextafter(tau, lo)
        if (
            self._wake_i < len(self._wakes)
            and tau >= self._wakes[self._wake_i][0]
        ):
            raise SimulationError(
                "controlled schedule exhausted the timestamp room below "
                f"the pending wake at t={self._wakes[self._wake_i][0]:g}"
            )
        return tau

    def _deliver(self, ev: EnabledEvent) -> None:
        engine = self._engine
        chan = (ev.src, ev.vertex)
        q = self._channels[chan]
        if q[0].seq == ev.seq:
            msg = q.popleft()
        else:
            # Only reachable under the skip-fifo mutation.
            msg = next(m for m in q if m.seq == ev.seq)
            q.remove(msg)
        if not q:
            del self._channels[chan]
        tau = self._assign_time(ev)
        self.log.delays[msg.seq] = tau - msg.sent_at
        self._advance(tau)
        metrics = engine.metrics
        trace = engine.trace
        v = msg.dst
        ctx, node = engine._vstate[v]
        metrics.received_by[v] += 1
        if tau > metrics.last_activity:
            metrics.last_activity = tau
        if trace is not None:
            trace.deliver(tau, msg)
        if not ctx._awake:
            ctx._awake = True
            ctx.wake_cause = "message"
            metrics.record_wake(v, tau, "message")
            if trace is not None:
                trace.wake(tau, v, "message")
            node.on_wake(ctx)
        node.on_message(ctx, msg.dst_port, msg.payload)
        self._flush(v, tau)

    def _flush(self, v: Vertex, time: float) -> None:
        """Queue a node's outbox into the pending channels.

        Mirrors the plain engine's flush semantics (bandwidth check,
        send accounting, trace order); the delivery time is assigned
        later, when the controller fires the message.
        """
        engine = self._engine
        ctx = engine._ctx[v]
        if not ctx._outbox:
            return
        neighbors, back_ports = engine._tables[v]
        metrics = engine.metrics
        trace = engine.trace
        seq_next = engine._seq.__next__
        channels = self._channels
        for send in ctx._drain():
            port = send.port
            dst = neighbors[port - 1]
            payload = send.payload
            bits = bit_size_cached(payload)
            engine.setup.bandwidth.check(bits)
            seq = seq_next()
            msg = Message(
                v, dst, back_ports[port - 1], port, payload, bits, time, seq
            )
            metrics.record_send(v, dst, bits)
            if trace is not None:
                trace.send(time, msg)
            chan = (v, dst)
            q = channels.get(chan)
            if q is None:
                q = channels[chan] = deque()
            q.append(msg)

    # -- the loop ------------------------------------------------------
    def run(self):
        engine = self._engine
        controller = self._controller
        rec = engine.recorder
        rec_enabled = rec.enabled
        metrics = engine.metrics
        vstate = engine._vstate
        max_events = engine._max_events
        record_states = bool(getattr(controller, "record_states", False))
        log = self.log
        processed = 0
        aborted = False
        engine.phases._start("engine", None)
        try:
            while True:
                # Wakes of already-awake vertices are state no-ops (the
                # plain loop's _handle_wake returns early); fire them
                # silently instead of branching on them — they commute
                # with everything except the clock, which fingerprints
                # exclude.  They still count as processed events, like
                # in the plain loop.
                while self._wake_i < len(self._wakes):
                    t_w, _s, v_w = self._wakes[self._wake_i]
                    if not vstate[v_w][0]._awake:
                        break
                    if not self._wake_enabled(t_w):
                        break
                    self._wake_i += 1
                    self._advance(t_w)
                    processed += 1
                enabled = self._enabled_events()
                if not enabled:
                    break
                free = len(enabled) > 1
                cp = ChoicePoint(
                    len(log.choices), processed, self._now, tuple(enabled),
                    free, self,
                )
                if record_states:
                    log.states.append(cp.fingerprint())
                idx = controller.choose(cp)
                if idx == ABORT:
                    aborted = True
                    break
                if not 0 <= idx < len(enabled):
                    raise SimulationError(
                        f"controller chose event {idx} of "
                        f"{len(enabled)} enabled"
                    )
                if free:
                    log.choices.append(idx)
                    log.branch_sizes.append(len(enabled))
                ev = enabled[idx]
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"event budget of {max_events} exceeded; "
                        "the protocol is likely not terminating"
                    )
                if ev.kind == "wake":
                    self._fire_wake(ev)
                else:
                    self._deliver(ev)
                if rec_enabled and processed % _STEP_EVERY == 0:
                    rec.emit(
                        "engine_step",
                        events=processed,
                        now=self._now,
                        awake=metrics.awake_count(),
                        n=engine.setup.n,
                        engine="async",
                    )
        finally:
            engine.phases._stop()
        log.steps = processed
        log.completed = not aborted
        log.final_state = self.fingerprint()
        metrics.events_processed = processed
        return metrics

    # -- state fingerprinting ------------------------------------------
    def fingerprint(self) -> str:
        """Hash of everything that determines the run's *future*:
        per-node algorithm state, awake flags, rng streams, channel
        contents (in FIFO order), the wake-schedule position, and the
        monotone message/bit totals (so bound invariants stay sound
        under deduplication).  Event times and sequence numbers are
        deliberately excluded — they differ between schedules that are
        otherwise equivalent.
        """
        engine = self._engine
        setup = engine.setup
        id_of = setup.id_of
        nodes = []
        for v in sorted(engine._vstate, key=id_of):
            ctx, node = engine._vstate[v]
            nodes.append(
                (
                    id_of(v),
                    ctx._awake,
                    ctx.wake_cause,
                    _canon(node.__dict__),
                    _rng_token(ctx._rng),
                )
            )
        chans = []
        for (src, dst), q in self._channels.items():
            if q:
                chans.append(
                    (
                        id_of(src),
                        id_of(dst),
                        tuple(_canon(m.payload) for m in q),
                    )
                )
        chans.sort()
        blob = repr(
            (
                nodes,
                chans,
                self._wake_i,
                engine.metrics.messages_total,
                engine.metrics.bits_total,
            )
        )
        return blake2b(blob.encode("utf-8"), digest_size=16).hexdigest()


def run_controlled(engine):
    """Entry point the async engine delegates to when a controller is
    attached (see ``AsyncEngine.run``)."""
    return _ControlledLoop(engine).run()


# ----------------------------------------------------------------------
# Replay artifacts
# ----------------------------------------------------------------------

REPLAY_VERSION = 1
REPLAY_KIND = "repro-check-replay"

#: Where CLI-facing tools drop replay artifacts by default; reported by
#: ``repro cache info`` and purged by ``repro cache purge``.
DEFAULT_REPLAY_DIR = Path("results") / ".replays"


def make_replay(
    *,
    algorithm: str,
    n: int,
    log: ScheduleLog,
    schedule_times: Mapping,
    laziness: float = 0.0,
    mutation: Optional[str] = None,
    seed: int = 0,
    objective: Optional[str] = None,
    score: Optional[float] = None,
    invariant: Optional[str] = None,
    workload: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble the JSON-able replay artifact for one recorded run.

    ``choices`` + ``laziness`` replay through :class:`ReplayController`
    (bit-exactly, including the planted ``mutation`` if any);
    ``delays`` replay through the *plain* engine via
    :class:`ReplayDelay` (valid only for mutation-free runs — a FIFO
    violation cannot be expressed as a DelayStrategy).

    ``salts`` stamps the artifact with the ``engine`` and ``check``
    subsystem code salts it was recorded under
    (:func:`repro.versioning.replay_salt_vector`): a replay is only
    bit-exact against the code that produced it, and the stamp is what
    lets ``repro cache info`` / ``purge --stale`` tell live replays
    from orphaned ones without re-running anything.
    """
    from repro.versioning import replay_salt_vector

    return {
        "version": REPLAY_VERSION,
        "kind": REPLAY_KIND,
        "salts": replay_salt_vector(),
        "algorithm": algorithm,
        "n": int(n),
        "seed": int(seed),
        "laziness": float(laziness),
        "mutation": mutation,
        "objective": objective,
        "score": score,
        "invariant": invariant,
        "workload": dict(workload or {}),
        "choices": [int(c) for c in log.choices],
        "delays": {str(k): float(v) for k, v in sorted(log.delays.items())},
        "wake_times": {repr(v): float(t) for v, t in schedule_times.items()},
        "steps": int(log.steps),
    }


def save_replay(replay: Dict[str, object], path) -> Path:
    """Write one replay artifact (pretty, key-sorted JSON)."""
    from repro.obs.metrics import get_registry

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(replay, indent=2, sort_keys=True, default=repr) + "\n",
        encoding="utf-8",
    )
    get_registry().counter("repro_replay_store_total", op="save").inc()
    return path


def load_replay(path) -> Dict[str, object]:
    """Read a replay artifact back; delay keys return to ints."""
    from repro.obs.metrics import get_registry

    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("kind") != REPLAY_KIND:
        raise SimulationError(f"{path} is not a {REPLAY_KIND} artifact")
    if data.get("version") != REPLAY_VERSION:
        raise SimulationError(
            f"{path}: unsupported replay version {data.get('version')!r}"
        )
    data["delays"] = {int(k): float(v) for k, v in data["delays"].items()}
    data["choices"] = [int(c) for c in data["choices"]]
    get_registry().counter("repro_replay_store_total", op="load").inc()
    return data


def replay_is_stale(data: Mapping) -> bool:
    """Whether a replay artifact was recorded under superseded engine
    or check code.  Loading a stale replay still works (the format is
    stable) but bit-exactness is no longer guaranteed; ``repro cache
    info`` reports these and ``purge --stale`` removes them.  Artifacts
    predating the salt stamp count as stale — their provenance is
    unknowable."""
    from repro.versioning import replay_salt_vector

    salts = data.get("salts")
    if not isinstance(salts, dict):
        return True
    return dict(salts) != replay_salt_vector()
