"""Worst-case schedule search for sizes exhaustion cannot reach.

The explorer's tree explodes past n ~ 4; here the adversary is built
instead of enumerated.  Two stages:

1. **greedy policies** — hand-written heuristics choosing one enabled
   event per free choice point (e.g. *feed-awake*: prefer deliveries to
   already-awake destinations, so messages are wasted before any new
   node wakes).  Each policy is one controlled run; the best seeds the
   beam.
2. **beam search** — branch over the first ``horizon`` free choice
   points (``branch_cap`` children per point, ``beam_width`` survivors
   per depth), completing every prefix with the winning greedy policy.
   Scoring a prefix costs one run, so the budget is
   ``horizon * beam_width * branch_cap`` runs.

Delivery *timing* is handled by the controller's laziness knob, not
the search: for the time objective every delivery is stretched to the
top of its legality envelope (laziness 1.0), which dominates any
intermediate timing for makespan.  The search therefore only explores
event *orderings*.

The returned schedule is replayable two ways — bit-exactly through
:class:`~repro.check.controller.ReplayController`, and through the
*plain* engine via :class:`~repro.check.controller.ReplayDelay` — so a
found adversarial frontier is a first-class, checkable artifact next
to the analytic lower bounds (``benchmarks/bench_theorem*_lb.py``).
:func:`random_baseline` gives the comparison point: the best score a
plain ``UniformRandomDelay`` sweep finds at the same size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.check.controller import (
    ChoicePoint,
    EnabledEvent,
    ReplayController,
    ScheduleController,
    ScheduleLog,
)
from repro.errors import SimulationError
from repro.obs.recorder import NULL_RECORDER
from repro.sim.adversary import Adversary, UniformRandomDelay
from repro.sim.runner import WakeUpResult, run_wakeup
from repro.sim.trace import Trace

#: policy name -> chooser(enabled) -> index.  Wakes sort first in
#: ``enabled``; a policy that wants to starve wake-ups cannot (wake
#: postponement beyond the guard window is not in the adversary's
#: power — see controller._wake_enabled), but it can order deliveries.
PolicyFn = Callable[[Sequence[EnabledEvent]], int]


def _head(enabled: Sequence[EnabledEvent]) -> int:
    return 0


def _fifo(enabled: Sequence[EnabledEvent]) -> int:
    """Oldest send first (closest to the canonical engine order)."""
    best, best_key = 0, None
    for i, ev in enumerate(enabled):
        key = (ev.sent_at, ev.seq)
        if best_key is None or key < best_key:
            best, best_key = i, key
    return best


def _lifo(enabled: Sequence[EnabledEvent]) -> int:
    """Newest send first — starves old messages toward their tau
    deadline."""
    best, best_key = 0, None
    for i, ev in enumerate(enabled):
        if ev.kind != "deliver":
            continue
        key = (ev.sent_at, ev.seq)
        if best_key is None or key > best_key:
            best, best_key = i, key
    return best if best_key is not None else 0


def _feed_awake(enabled: Sequence[EnabledEvent]) -> int:
    """Deliver to already-awake nodes first: wasted messages pile up
    while fresh wake-ups are deferred as long as legality allows."""
    for i, ev in enumerate(enabled):
        if ev.kind == "deliver" and ev.dst_awake:
            return i
    # No wasted delivery available: fall back to the oldest send.
    return _fifo(enabled)


GREEDY_POLICIES: Dict[str, PolicyFn] = {
    "head": _head,
    "fifo": _fifo,
    "lifo": _lifo,
    "feed-awake": _feed_awake,
}


class PolicyController(ScheduleController):
    """Applies one greedy policy at every free choice point, after
    replaying an optional choice prefix (the beam's branch decisions).
    """

    def __init__(self, policy: PolicyFn, prefix: Sequence[int] = (),
                 laziness: float = 0.0):
        self._policy = policy
        self._prefix = [int(c) for c in prefix]
        self._i = 0
        self.laziness = laziness

    def choose(self, cp: ChoicePoint) -> int:
        if not cp.free:
            return 0
        if self._i < len(self._prefix):
            idx = self._prefix[self._i]
            self._i += 1
            if not 0 <= idx < len(cp.enabled):
                raise SimulationError(
                    f"beam prefix choice {idx} out of range for "
                    f"{len(cp.enabled)} enabled events"
                )
            return idx
        self._i += 1
        return self._policy(cp.enabled)


@dataclass
class WorstCaseResult:
    """The best adversarial schedule found, fully replayable."""

    objective: str
    score: float
    policy: str
    choices: Tuple[int, ...]
    delays: Dict[int, float]
    laziness: float
    result: WakeUpResult
    log: ScheduleLog
    evaluations: int
    greedy_scores: Dict[str, float] = field(default_factory=dict)


def _score(objective: str, result: WakeUpResult) -> float:
    if objective == "time":
        return float(result.time)
    if objective == "messages":
        return float(result.messages)
    if objective == "bits":
        return float(result.bits)
    raise SimulationError(f"unknown worst-case objective {objective!r}")


def worstcase_search(
    world,
    objective: str = "time",
    *,
    beam_width: int = 4,
    horizon: int = 12,
    branch_cap: int = 3,
    laziness: Optional[float] = None,
    seed: int = 0,
    recorder=None,
) -> WorstCaseResult:
    """Greedy + beam search for the worst schedule of one workload.

    ``world`` is a fresh-(setup, algorithm, adversary) factory as in
    :func:`repro.check.explorer.explore`.  ``laziness`` defaults to 1.0
    for the time objective (maximal legal delivery times) and 0.0
    otherwise — message counts depend on orderings, not timings, and
    eager runs keep more deliveries concurrently in flight, giving the
    beam more orderings to branch over.

    Emits one ``worstcase_stats`` telemetry event when ``recorder`` is
    set.
    """
    rec = recorder if recorder is not None else NULL_RECORDER
    if laziness is None:
        laziness = 1.0 if objective == "time" else 0.0

    evaluations = 0

    def evaluate(policy: PolicyFn, prefix: Sequence[int]):
        nonlocal evaluations
        evaluations += 1
        setup, algorithm, adversary = world()
        ctl = PolicyController(policy, prefix, laziness=laziness)
        result = run_wakeup(
            setup,
            algorithm,
            adversary,
            engine="async",
            seed=seed,
            require_all_awake=False,
            controller=ctl,
        )
        return _score(objective, result), ctl.log, result, algorithm.name

    # Stage 1: greedy policies.
    greedy_scores: Dict[str, float] = {}
    best = None  # (score, policy_name, log, result)
    algorithm_name = "?"
    for name, policy in GREEDY_POLICIES.items():
        score, log, result, algorithm_name = evaluate(policy, ())
        greedy_scores[name] = score
        if best is None or score > best[0]:
            best = (score, name, log, result)
    assert best is not None
    base_policy_name = best[1]
    base_policy = GREEDY_POLICIES[base_policy_name]

    # Stage 2: beam over the first `horizon` free choice points, each
    # prefix completed by the winning greedy policy.
    if beam_width > 0 and horizon > 0:
        beam: List[Tuple[float, Tuple[int, ...], ScheduleLog]] = [
            (best[0], (), best[2])
        ]
        tried: Set[Tuple[int, ...]] = {()}
        for depth in range(horizon):
            children: List[Tuple[float, Tuple[int, ...], ScheduleLog]] = []
            for score, prefix, log in beam:
                if depth >= len(log.branch_sizes):
                    continue  # run ended before this choice point
                width = min(log.branch_sizes[depth], branch_cap)
                taken = log.choices[depth]
                for ci in range(width):
                    # The child pins choices 0..depth-1 to what this
                    # run actually took and branches at `depth`.
                    child = tuple(log.choices[:depth]) + (ci,)
                    if ci == taken or child in tried:
                        continue
                    tried.add(child)
                    c_score, c_log, c_result, _ = evaluate(
                        base_policy, child
                    )
                    children.append((c_score, child, c_log))
                    if c_score > best[0]:
                        best = (c_score, base_policy_name, c_log, c_result)
            if not children:
                # Keep deepening along the incumbents only.
                continue
            merged = beam + children
            merged.sort(key=lambda t: (-t[0], t[1]))
            beam = merged[:beam_width]

    score, policy_name, log, result = best
    out = WorstCaseResult(
        objective=objective,
        score=score,
        policy=policy_name,
        choices=tuple(log.choices),
        delays=dict(log.delays),
        laziness=laziness,
        result=result,
        log=log,
        evaluations=evaluations,
        greedy_scores=greedy_scores,
    )
    from repro.obs.metrics import get_registry

    mreg = get_registry()
    if mreg.enabled:
        mreg.counter(
            "repro_worstcase_evaluations_total",
            algorithm=algorithm_name,
            objective=objective,
        ).inc(evaluations)
    if rec.enabled:
        rec.emit(
            "worstcase_stats",
            algorithm=algorithm_name,
            objective=objective,
            evaluations=evaluations,
            best_score=score,
            policy=policy_name,
        )
    return out


def baseline_trial_specs(base_spec, *, trials: int = 32, seed: int = 0):
    """The ``trials`` CellSpecs one random baseline decomposes into.

    Each trial pins the delay spec to the serial path's
    ``UniformRandomDelay(seed=seed + t)`` (default ``lo``) and the
    execution seed to the serial path's ``run_wakeup(seed=seed)``, so a
    cell built from a faithful ``base_spec`` reproduces the serial
    trial bit-exactly.  Exposed separately so callers (the atlas CLI,
    benches) can count or pre-warm baseline cells.
    """
    from dataclasses import replace

    return [
        replace(
            base_spec,
            trial=t,
            delay={"kind": "uniform", "seed": seed + t, "lo": 0.05},
            exec_seed=seed,
            require_all_awake=False,
        )
        for t in range(trials)
    ]


def random_baseline(
    world,
    objective: str = "time",
    *,
    trials: int = 32,
    seed: int = 0,
    executor=None,
    base_spec=None,
) -> float:
    """Best score a plain UniformRandomDelay sweep finds.

    The comparison point for :func:`worstcase_search`: the searched
    adversary must meet or beat the best of ``trials`` random-delay
    samples on the same workload (asserted by the worst-case tests and
    reported next to the frontier in the lower-bound benches).

    When ``executor`` (a
    :class:`~repro.experiments.parallel.ParallelSweepExecutor`) and
    ``base_spec`` (a :class:`~repro.experiments.parallel.CellSpec`
    describing the same world ``world`` builds — workload, schedule,
    knowledge, bandwidth, ``setup_seed``) are both given, the trials
    run as executor cells instead of a serial loop: parallel across
    workers, cached on disk, and bit-identical to the serial path
    because each cell rebuilds the identical world and runs the same
    ``(setup_seed, exec_seed, delay-seed)`` triple
    (:func:`baseline_trial_specs`; conformance-tested in
    ``tests/test_opt_evaluate.py``).  ``world`` may then be ``None``.
    """
    if executor is not None or base_spec is not None:
        if executor is None or base_spec is None:
            raise SimulationError(
                "random_baseline needs both executor and base_spec, "
                "or neither"
            )
        best = float("-inf")
        specs = baseline_trial_specs(base_spec, trials=trials, seed=seed)
        for out in executor.run(specs):
            if out.result is None:
                raise SimulationError(
                    f"random baseline cell {out.key[:12]} failed: "
                    f"{out.error}"
                )
            best = max(best, _score(objective, out.result))
        return best
    best = float("-inf")
    for t in range(trials):
        setup, algorithm, adversary = world()
        randomized = Adversary(
            schedule=adversary.schedule,
            delays=UniformRandomDelay(seed=seed + t),
        )
        result = run_wakeup(
            setup,
            algorithm,
            randomized,
            engine="async",
            seed=seed,
            require_all_awake=False,
        )
        best = max(best, _score(objective, result))
    return best
