"""Counterexample shrinking: delta-debug a violating schedule.

A violation found by the explorer or a fuzz run arrives as a choice
sequence (one index per free choice point).  The raw witness is often
long and full of irrelevant decisions; the shrinker minimizes it while
preserving the *same invariant violation*:

1. **ddmin chunk removal** — delete contiguous chunks of choices,
   halving chunk size until single choices, classic delta debugging.
   A :class:`~repro.check.controller.ReplayController` in lenient mode
   pads exhausted/out-of-range positions with choice 0, so any
   truncated or spliced sequence still denotes a valid schedule.
2. **point lowering** — drive each surviving choice toward 0 (smaller
   indices mean "deliver the oldest head", the canonical schedule), so
   the final witness reads as "canonical except at these points".
3. **trailing-zero strip** — choices equal to the canonical default
   carry no information at the tail; drop them.

Every candidate costs one fresh controlled run, so ``max_tests``
bounds the work.  The result replays deterministically:
``ReplayController(outcome.choices)`` on a fresh world reproduces the
violation (the mutation-smoke test asserts exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.check.controller import ReplayController
from repro.check.invariants import Invariant, InvariantContext
from repro.obs.recorder import NULL_RECORDER
from repro.sim.runner import run_wakeup
from repro.sim.trace import Trace


@dataclass
class ShrinkOutcome:
    """The minimized witness plus shrink-loop accounting."""

    choices: Tuple[int, ...]
    invariant: str
    detail: str
    tests: int
    initial_length: int
    final_length: int

    @property
    def reduction(self) -> float:
        """Fraction of the witness removed (0.0 when nothing shrank)."""
        if self.initial_length == 0:
            return 0.0
        return 1.0 - self.final_length / self.initial_length


class _Oracle:
    """Runs one candidate choice sequence; remembers the last detail."""

    def __init__(self, world, invariants, *, seed, laziness, mutation,
                 max_tests):
        self._world = world
        self._invariants = invariants
        self._seed = seed
        self._laziness = laziness
        self._mutation = mutation
        self._budget = max_tests
        self.tests = 0
        self.last_detail = ""

    @property
    def exhausted(self) -> bool:
        return self.tests >= self._budget

    def fails(self, choices: Sequence[int], invariant_name: str) -> bool:
        """True when replaying ``choices`` violates ``invariant_name``."""
        if self.exhausted:
            return False
        self.tests += 1
        setup, algorithm, adversary = self._world()
        ctl = ReplayController(
            list(choices),
            strict=False,
            laziness=self._laziness,
            mutation=self._mutation,
        )
        trace = Trace()
        result = run_wakeup(
            setup,
            algorithm,
            adversary,
            engine="async",
            seed=self._seed,
            require_all_awake=False,
            trace=trace,
            controller=ctl,
        )
        ictx = InvariantContext(
            setup=setup,
            adversary=adversary,
            result=result,
            trace=trace,
            log=ctl.log,
        )
        for inv in self._invariants:
            if inv.name != invariant_name:
                continue
            problem = inv.check(ictx)
            if problem is not None:
                self.last_detail = problem
                return True
        return False


def _ddmin(choices: List[int], oracle: _Oracle, invariant: str) -> List[int]:
    """Classic ddmin: remove chunks while the violation persists."""
    chunk = max(1, len(choices) // 2)
    while chunk >= 1 and choices:
        i = 0
        shrunk = False
        while i < len(choices):
            candidate = choices[:i] + choices[i + chunk:]
            if oracle.fails(candidate, invariant):
                choices = candidate
                shrunk = True
                # Same index now holds the next chunk; don't advance.
            else:
                i += chunk
            if oracle.exhausted:
                return choices
        if shrunk:
            continue  # retry removals at the same granularity
        if chunk == 1:
            break
        chunk //= 2
    return choices


def _lower_points(choices: List[int], oracle: _Oracle,
                  invariant: str) -> List[int]:
    """Drive each choice toward the canonical 0."""
    for i in range(len(choices)):
        while choices[i] > 0 and not oracle.exhausted:
            candidate = list(choices)
            candidate[i] = choices[i] - 1
            if oracle.fails(candidate, invariant):
                choices = candidate
            else:
                break
    return choices


def shrink_violation(
    world,
    choices: Sequence[int],
    invariant_name: str,
    *,
    invariants: List[Invariant],
    seed: int = 0,
    laziness: float = 0.0,
    mutation: Optional[str] = None,
    max_tests: int = 2_000,
    recorder=None,
) -> ShrinkOutcome:
    """Minimize ``choices`` while ``invariant_name`` still fires.

    ``world``/``seed``/``laziness``/``mutation`` must match the run
    that produced the witness — the shrinker re-executes candidates
    under identical conditions.  Raises ``ValueError`` if the original
    witness does not reproduce (a non-reproducing witness means the
    caller's world factory is not deterministic).

    Emits one ``shrink_stats`` telemetry event when ``recorder`` is
    set.
    """
    rec = recorder if recorder is not None else NULL_RECORDER
    oracle = _Oracle(
        world,
        invariants,
        seed=seed,
        laziness=laziness,
        mutation=mutation,
        max_tests=max_tests,
    )
    original = list(choices)
    if not oracle.fails(original, invariant_name):
        raise ValueError(
            f"witness does not reproduce invariant {invariant_name!r}; "
            "the world factory must be deterministic"
        )
    detail = oracle.last_detail

    current = _ddmin(original, oracle, invariant_name)
    current = _lower_points(current, oracle, invariant_name)
    # Canonical tail choices (0) are implied by lenient padding.
    while current and current[-1] == 0:
        candidate = current[:-1]
        if oracle.fails(candidate, invariant_name):
            current = candidate
        else:
            break
    if oracle.fails(current, invariant_name):
        detail = oracle.last_detail

    outcome = ShrinkOutcome(
        choices=tuple(current),
        invariant=invariant_name,
        detail=detail,
        tests=oracle.tests,
        initial_length=len(original),
        final_length=len(current),
    )
    from repro.obs.metrics import get_registry

    mreg = get_registry()
    if mreg.enabled:
        mreg.counter(
            "repro_shrink_iterations_total", invariant=invariant_name
        ).inc(outcome.tests)
    if rec.enabled:
        rec.emit(
            "shrink_stats",
            invariant=invariant_name,
            tests=outcome.tests,
            from_len=outcome.initial_length,
            to_len=outcome.final_length,
            reduction=round(outcome.reduction, 4),
        )
    return outcome
