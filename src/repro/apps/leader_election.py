"""Leader election and spanning-tree construction on top of wake-up.

Sec 1.3 of the paper situates wake-up among leader election and MST
under adversarial wake-up: those problems *contain* wake-up (every
node must participate in the output), and conversely the paper's
Theorem-3 machinery almost is a leader election.  This module closes
the gap, as a downstream consumer of the library's public API would:

Run the ranked-DFS wake-up; when a node's own token completes its
traversal (it visited every node and backtracked home), that node
announces itself as leader along the token's DFS tree — each tree edge
carries exactly one announcement message.  Several tokens may complete
(a small token can finish before a larger one overruns its territory),
so announcements carry their (rank, id) key and nodes adopt/forward
only strictly larger ones; since the maximum-key token always completes
and its tree spans every node, all nodes converge on the same leader.

Outputs per node: the leader's ID and the node's parent edge in the
winner's DFS tree — i.e. leader election *and* a spanning tree, for
O(n log n) + O(n) messages on top of wake-up (matching the classic
reductions the paper cites [KKM+12]).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.core.base import BOTH, WakeUpAlgorithm
from repro.core.dfs_wakeup import DfsWakeUpNode, RankKey
from repro.graphs.graph import Graph
from repro.models.knowledge import NetworkSetup
from repro.sim.node import NodeContext

ANNOUNCE = "leader-announce"

Vertex = Hashable


class _LeaderNode(DfsWakeUpNode):
    """DFS wake-up node extended with the announcement phase."""

    def __init__(self, vertex: Vertex, results: "LeaderElection", rank_exponent: int):
        super().__init__(rank_exponent=rank_exponent)
        self._vertex = vertex
        self._results = results
        self._announced: RankKey = (-1, -1)

    # -- completion hook ----------------------------------------------------
    def on_token_complete(self, ctx: NodeContext, key: RankKey, visited) -> None:
        self._adopt_leader(ctx, key, parent_port=None)

    # -- announcement handling ----------------------------------------------
    def on_message(self, ctx: NodeContext, port: int, payload: Any) -> None:
        if isinstance(payload, tuple) and payload[:1] == (ANNOUNCE,):
            _, rank, origin = payload
            self._adopt_leader(
                ctx, (rank, origin), parent_port=port
            )
            return
        super().on_message(ctx, port, payload)

    def _adopt_leader(
        self, ctx: NodeContext, key: RankKey, parent_port: Optional[int]
    ) -> None:
        if key <= self._announced:
            return  # we already follow an equal-or-better leader
        self._announced = key
        self._results.leader_of[self._vertex] = key[1]
        # Our parent edge in the winner's DFS tree (None at the leader).
        tree_parent = self.parent_port.get(key)
        self._results.tree_parent_port[self._vertex] = tree_parent
        for child_port in self.child_ports.get(key, ()):  # tree edges only
            ctx.send(child_port, (ANNOUNCE, key[0], key[1]))


class LeaderElection(WakeUpAlgorithm):
    """Leader election + spanning tree via ranked-DFS wake-up.

    After a run, :attr:`leader_of` maps each vertex to its elected
    leader's ID and :attr:`tree_parent_port` to its parent port in the
    winner's DFS tree; :meth:`agreed_leader` and :meth:`spanning_tree`
    aggregate and verify them.
    """

    name = "leader-election"
    synchrony = BOTH
    requires_kt1 = True
    uses_advice = False
    congest_safe = False

    def __init__(self, rank_exponent: int = 4):
        self._rank_exponent = rank_exponent
        self.leader_of: Dict[Vertex, int] = {}
        self.tree_parent_port: Dict[Vertex, Optional[int]] = {}
        self._setup: Optional[NetworkSetup] = None

    def make_node(self, vertex, setup) -> _LeaderNode:
        self._setup = setup
        return _LeaderNode(vertex, self, self._rank_exponent)

    # ------------------------------------------------------------------
    def agreed_leader(self) -> Optional[int]:
        """The unanimous leader ID, or None if nodes disagree or some
        node never learned a leader."""
        if self._setup is None:
            return None
        if set(self.leader_of) != set(self._setup.graph.vertices()):
            return None
        leaders = set(self.leader_of.values())
        if len(leaders) != 1:
            return None
        return leaders.pop()

    def spanning_tree(self) -> Optional[Graph]:
        """The elected leader's DFS tree as a graph, or None if the
        recorded parent edges do not form a spanning tree."""
        if self._setup is None or self.agreed_leader() is None:
            return None
        tree = Graph(self._setup.graph.vertices())
        roots = 0
        for v, port in self.tree_parent_port.items():
            if port is None:
                roots += 1
                continue
            parent = self._setup.ports.neighbor(v, port)
            tree.add_edge_safe(v, parent)
        if roots != 1 or tree.num_edges != self._setup.n - 1:
            return None
        from repro.graphs.traversal import is_tree

        return tree if is_tree(tree) else None
