"""Downstream applications built on the wake-up layer: what an adopter
of the library would write (Sec 1.3's leader-election/MST motivation)."""

from repro.apps.broadcast import FloodingBroadcast, TreeBroadcast
from repro.apps.leader_election import LeaderElection

__all__ = ["FloodingBroadcast", "TreeBroadcast", "LeaderElection"]
