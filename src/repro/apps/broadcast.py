"""Payload broadcast piggybacked on wake-up.

The Wake-on-LAN story usually wants more than "everyone is awake": the
controller has a payload (a boot configuration, a firmware version, a
job id) that every machine should hold once it is up.  This module
piggybacks an arbitrary payload on top of the library's wake-up
algorithms:

* :class:`FloodingBroadcast` — the payload rides the flooding wave:
  rho_awk time, Theta(m) messages, works in KT0 CONGEST for payloads
  within the bandwidth cap;
* :class:`TreeBroadcast` — the payload rides the child-encoding scheme
  (Theorem 5B): O(n) messages and O(log n)-bit advice, O(D log n)
  time.  Every CEN protocol message is extended with the rumor once
  the sender knows it; because CEN traffic spans the whole BFS tree
  from any start, every node ends up holding the payload.

Payload holders are recorded per node so tests can verify dissemination
exactly.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional

from repro.core.base import BOTH, WakeUpAlgorithm
from repro.core.child_encoding import (
    NEXT,
    PROBE,
    UP,
    ChildEncodingAdvice,
    _CenNode,
)
from repro.sim.node import NodeAlgorithm, NodeContext

Vertex = Hashable

RUMOR_WAKE = "bc-wake"


class _FloodNode(NodeAlgorithm):
    def __init__(self, vertex, holder: Dict, payload: Any):
        self._vertex = vertex
        self._holder = holder
        self._payload = payload

    def on_wake(self, ctx: NodeContext) -> None:
        if ctx.wake_cause == "adversary":
            # Adversary-woken nodes are the sources: they hold the
            # payload (e.g. the controller's configuration) a priori.
            self._holder[self._vertex] = self._payload
            ctx.broadcast((RUMOR_WAKE, self._payload))

    def on_message(self, ctx: NodeContext, port: int, payload: Any) -> None:
        if self._vertex in self._holder:
            return
        self._holder[self._vertex] = payload[1]
        ctx.broadcast((RUMOR_WAKE, payload[1]))


class FloodingBroadcast(WakeUpAlgorithm):
    """Wake everyone and hand them ``payload``, by flooding.

    The source is the vertex the adversary wakes (only source-woken
    dissemination makes sense; other adversary-woken nodes would have
    nothing to say — give them the payload too if you wake several).
    """

    name = "flooding-broadcast"
    synchrony = BOTH
    requires_kt1 = False
    uses_advice = False
    congest_safe = True

    def __init__(self, payload: Any):
        self.payload = payload
        self.holder: Dict[Vertex, Any] = {}

    def make_node(self, vertex, setup) -> NodeAlgorithm:
        return _FloodNode(vertex, self.holder, self.payload)

    def everyone_holds_payload(self, setup) -> bool:
        """Whether every vertex ended the run holding the payload."""
        return all(
            self.holder.get(v) == self.payload
            for v in setup.graph.vertices()
        )


class _CenBroadcastNode(_CenNode):
    """CEN node whose protocol messages carry the rumor once known."""

    def __init__(self, vertex, holder: Dict, payload: Optional[Any]):
        super().__init__()
        self._vertex = vertex
        self._holder = holder
        if payload is not None:
            self._holder[self._vertex] = payload

    # -- rumor plumbing ------------------------------------------------
    def _rumor(self) -> Any:
        return self._holder.get(self._vertex)

    def _learn(self, rumor: Any) -> None:
        if rumor is not None and self._vertex not in self._holder:
            self._holder[self._vertex] = rumor

    def _start(self, ctx: NodeContext, notify_parent: bool) -> None:
        if self._started:
            return
        self._started = True
        self._decode(ctx)
        rumor = self._rumor()
        if notify_parent and self._parent_port is not None:
            ctx.send(self._parent_port, (UP, rumor))
        if self._fc_port is not None:
            ctx.send(self._fc_port, (PROBE, rumor))

    def on_message(self, ctx: NodeContext, port: int, payload: Any) -> None:
        tag = payload[0]
        if tag == UP:
            self._learn(payload[1])
            self._start(ctx, notify_parent=True)
        elif tag == PROBE:
            self._learn(payload[1])
            self._decode(ctx)
            n1, n2 = self._next
            ctx.send(port, (NEXT, n1 or 0, n2 or 0, self._rumor()))
            self._start(ctx, notify_parent=False)
        elif tag == NEXT:
            _, n1, n2, rumor = payload
            self._learn(rumor)
            my_rumor = self._rumor()
            if n1:
                ctx.send(n1, (PROBE, my_rumor))
            if n2:
                ctx.send(n2, (PROBE, my_rumor))


class TreeBroadcast(ChildEncodingAdvice):
    """Theorem-5B wake-up carrying a payload: O(n) messages, O(log n)
    advice, O(D log n) time — broadcast at wake-up prices.

    The rumor propagates in both directions (up-chain and probes), so
    any single source disseminates to the whole tree.  Nodes that are
    woken before the rumor reaches them (possible when several nodes
    are adversary-woken and only one is the source) still receive it on
    the next protocol message from an informed neighbor; with a single
    adversary-woken source every node holds the payload at quiescence.
    """

    name = "tree-broadcast"

    def __init__(self, payload: Any):
        super().__init__()
        self.payload = payload
        self.holder: Dict[Vertex, Any] = {}
        self._source_assigned = False

    def make_node(self, vertex, setup) -> NodeAlgorithm:
        return _CenBroadcastNode(vertex, self.holder, None)

    def mark_source(self, vertex) -> None:
        """Mark ``vertex`` as the payload source (call before running)."""
        self.holder[vertex] = self.payload

    def everyone_holds_payload(self, setup) -> bool:
        """Whether every vertex ended the run holding the payload."""
        return all(
            self.holder.get(v) == self.payload
            for v in setup.graph.vertices()
        )
