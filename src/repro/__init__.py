"""repro — a full reproduction of "Rise and Shine Efficiently! The
Complexity of Adversarial Wake-up in Asynchronous Networks"
(Robinson & Tan, PODC 2025).

The package implements, from scratch:

* a deterministic discrete-event simulator for asynchronous and
  synchronous message-passing networks with adversarial wake-up
  (:mod:`repro.sim`);
* the KT0/KT1 knowledge models, LOCAL/CONGEST bandwidth enforcement,
  and the computing-with-advice framework (:mod:`repro.models`,
  :mod:`repro.advice`);
* every algorithm of the paper's Table 1 (:mod:`repro.core`);
* both lower-bound graph classes — including the Lazebnik–Ustimenko
  high-girth graphs over hand-rolled finite fields — and executable
  harnesses for the two lower bounds (:mod:`repro.lowerbounds`,
  :mod:`repro.graphs`);
* analysis and experiment drivers that regenerate the paper's Table 1
  (:mod:`repro.analysis`, :mod:`repro.experiments`).

Quick start::

    from repro import quick_run
    result = quick_run("dfs-rank", n=200, seed=1)
    print(result.messages, result.time)

See README.md for the full tour and DESIGN.md for the architecture.
"""

from __future__ import annotations

from repro.core import (
    ChildEncodingAdvice,
    DfsWakeUp,
    FastWakeUp,
    Fip06TreeAdvice,
    Flooding,
    LogSpannerAdvice,
    PrefixAdvice,
    SpannerAdvice,
    SqrtThresholdAdvice,
    WakeUpAlgorithm,
    algorithm_names,
    get_algorithm,
)
from repro.errors import (
    AdviceError,
    FieldError,
    GraphError,
    ModelViolation,
    ReproError,
    SimulationError,
    WakeUpFailure,
)
from repro.graphs import Graph, awake_distance
from repro.models import Knowledge, NetworkSetup, make_setup
from repro.sim import (
    Adversary,
    UniformRandomDelay,
    UnitDelay,
    WakeSchedule,
    WakeUpResult,
    run_wakeup,
)

__version__ = "1.0.0"

__all__ = [
    "ChildEncodingAdvice",
    "DfsWakeUp",
    "FastWakeUp",
    "Fip06TreeAdvice",
    "Flooding",
    "LogSpannerAdvice",
    "PrefixAdvice",
    "SpannerAdvice",
    "SqrtThresholdAdvice",
    "WakeUpAlgorithm",
    "algorithm_names",
    "get_algorithm",
    "AdviceError",
    "FieldError",
    "GraphError",
    "ModelViolation",
    "ReproError",
    "SimulationError",
    "WakeUpFailure",
    "Graph",
    "awake_distance",
    "Knowledge",
    "NetworkSetup",
    "make_setup",
    "Adversary",
    "UniformRandomDelay",
    "UnitDelay",
    "WakeSchedule",
    "WakeUpResult",
    "run_wakeup",
    "quick_run",
    "__version__",
]


def quick_run(
    algorithm: str = "dfs-rank",
    n: int = 100,
    avg_degree: float = 6.0,
    awake: int = 1,
    engine: str | None = None,
    seed: int = 0,
) -> WakeUpResult:
    """One-call demo: random connected network, adversarial wake-up,
    chosen algorithm; returns the :class:`WakeUpResult`.

    The knowledge/bandwidth/engine configuration is derived from the
    algorithm's declared requirements.
    """
    import random as _random

    from repro.graphs.generators import connected_erdos_renyi

    algo = get_algorithm(algorithm)
    graph = connected_erdos_renyi(n, avg_degree / max(1, n - 1), seed=seed)
    rng = _random.Random(seed + 1)
    awake_set = rng.sample(list(graph.vertices()), max(1, awake))
    knowledge = Knowledge.KT1 if algo.requires_kt1 else Knowledge.KT0
    bandwidth = "CONGEST" if algo.congest_safe else "LOCAL"
    if engine is None:
        engine = algo.synchrony if algo.synchrony in ("sync", "async") else "async"
    setup = make_setup(
        graph, knowledge=knowledge, bandwidth=bandwidth, seed=seed + 2
    )
    adversary = Adversary(WakeSchedule.all_at_once(awake_set), UnitDelay())
    return run_wakeup(setup, algo, adversary, engine=engine, seed=seed + 3)
