"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by the library derive from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for structurally invalid graph operations.

    Examples: adding a self-loop, querying a vertex that does not exist,
    or requesting a generator with impossible parameters (e.g. a
    d-regular graph on n vertices with n*d odd).
    """


class SimulationError(ReproError):
    """Raised when a simulation reaches an invalid state.

    Examples: a node sending over a port it does not have, an algorithm
    scheduling an event in the past, or exceeding the configured event
    budget (which usually indicates a non-terminating protocol).
    """


class ModelViolation(SimulationError):
    """Raised when an algorithm violates its declared computing model.

    Examples: a CONGEST algorithm sending a message larger than the
    O(log n)-bit cap, or a KT0 algorithm attempting to read neighbor IDs.
    """


class AdviceError(ReproError):
    """Raised for malformed advice strings or oracle misuse.

    Examples: decoding past the end of a :class:`~repro.advice.bits.BitReader`,
    or an oracle emitting advice for a vertex that is not in the graph.
    """


class FieldError(ReproError):
    """Raised for invalid finite-field construction or arithmetic.

    Examples: constructing GF(q) for non-prime-power q, or inverting the
    zero element.
    """


class WakeUpFailure(ReproError):
    """Raised when an execution completes without waking every node.

    Carries the set of nodes that remained asleep so tests and benches
    can report precisely which part of the network was missed.
    """

    def __init__(self, asleep: set, message: str | None = None):
        self.asleep = frozenset(asleep)
        detail = message or f"{len(self.asleep)} node(s) never woke up"
        super().__init__(detail)
