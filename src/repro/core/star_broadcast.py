"""Related-work demonstration (Sec 1.3): why all-awake KT1 algorithms
break under adversarial wake-up.

The asynchronous KT1 MST algorithm of King and Mashregi — used by
[DKMJ+22] — begins with every node flipping a coin: with probability
1/sqrt(n log n) a node becomes a "star" and initiates communication,
while non-star nodes of degree greater than sqrt(n) log^{3/2} n remain
*silent* until they receive a message.  Under the all-awake assumption
some star exists w.h.p. and everything proceeds; under adversarial
wake-up the paper observes (Sec 1.3) that waking exactly one
high-degree node leaves it a silent non-star with probability
1 - 1/sqrt(n log n), so the execution deadlocks and the wake-up problem
is unsolved with high probability.

:class:`StarBroadcast` reproduces this failure mode faithfully enough
to measure it: woken nodes sample the star coin; stars broadcast;
silent high-degree non-stars wait forever; low-degree non-stars
broadcast (they are allowed to talk).  The bench
``benchmarks/bench_star_failure.py`` wakes a single high-degree node
and confirms the predicted ~(1 - 1/sqrt(n log n)) failure rate, versus
the paper's algorithms which never fail.
"""

from __future__ import annotations

import math
from typing import Any, Optional

from repro.core.base import BOTH, WakeUpAlgorithm
from repro.sim.node import NodeAlgorithm, NodeContext

WAKE = "star-wake"


class _StarNode(NodeAlgorithm):
    def __init__(self, star_probability: Optional[float], degree_threshold: Optional[float]):
        self._p = star_probability
        self._thresh = degree_threshold
        self.is_star = False
        self.broadcasted = False

    def _params(self, ctx: NodeContext):
        n_hat = 1 << ctx.log2_n_bound
        p = self._p
        if p is None:
            p = 1.0 / math.sqrt(n_hat * math.log(n_hat))
        thresh = self._thresh
        if thresh is None:
            thresh = math.sqrt(n_hat) * math.log(n_hat) ** 1.5
        return p, thresh

    def on_wake(self, ctx: NodeContext) -> None:
        p, thresh = self._params(ctx)
        if ctx.wake_cause == "adversary":
            self.is_star = ctx.rng.random() < p
            if self.is_star or ctx.degree <= thresh:
                self._broadcast(ctx)
            # else: a silent high-degree non-star — the failure mode.
        else:
            # Once *some* message arrives, silence is lifted.
            self._broadcast(ctx)

    def on_message(self, ctx: NodeContext, port: int, payload: Any) -> None:
        self._broadcast(ctx)

    def _broadcast(self, ctx: NodeContext) -> None:
        if not self.broadcasted:
            self.broadcasted = True
            ctx.broadcast((WAKE,))


class StarBroadcast(WakeUpAlgorithm):
    """King–Mashregi-style star sampling; fails under adversarial
    wake-up of a single high-degree node (Sec 1.3)."""

    name = "star-broadcast"
    synchrony = BOTH
    requires_kt1 = True  # the MST context is KT1; the demo keeps it
    uses_advice = False
    congest_safe = True

    def __init__(
        self,
        star_probability: Optional[float] = None,
        degree_threshold: Optional[float] = None,
    ):
        self._p = star_probability
        self._thresh = degree_threshold

    def make_node(self, vertex, setup) -> NodeAlgorithm:
        return _StarNode(self._p, self._thresh)

    def bulk_kernel(self, setup):
        from repro.sim.bulk import StarBroadcastBulkKernel

        return StarBroadcastBulkKernel((WAKE,), self._p, self._thresh)
