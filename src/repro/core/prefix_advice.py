"""Theorem 1 witness — the beta-bit port-prefix advising scheme.

Theorem 1 says: on the lower-bound class 𝒢 (Sec 2), any KT0 scheme
whose expected message complexity is at most n^2 / (2^{beta+4} log2 n)
must spend Omega(beta) bits of advice per node on average.  This module
implements the *matching upper bound* that traces that frontier: with
beta bits of advice per center node, wake-up on 𝒢 costs
Theta(n^2 / 2^beta) messages.

Scheme (specific to pendant-matching graphs like 𝒢 and 𝒢ₖ):

* for every node v with pendant neighbors (degree-1 nodes reachable
  only through v), the oracle writes, per pendant, the top beta bits of
  the 0-based port number leading to it (in fixed width
  ceil(log2 deg(v)));
* additionally one designated node (minimum ID among the maximum-degree
  nodes) gets a "broadcaster" bit and floods all its ports, which wakes
  the densely-connected core with O(n) extra messages;
* upon waking, a node probes every port whose top-beta bits match one
  of its advised prefixes — about deg(v) / 2^beta ports per pendant —
  which is guaranteed to include the true pendant port.

With beta = 0 this degenerates to probe-everything (Theta(n^2)
messages, zero advice); with beta = ceil(log2 n) each probe set is a
single port (Theta(n) messages, Theta(log n) advice) — exactly the two
endpoints of the Theorem-1 trade-off, with the full curve in between.

Correctness caveat: this scheme is an analysis witness for
pendant-matching topologies where the awake set contains the pendant
hosts (the lower-bound scenario); it is not a general-purpose wake-up
algorithm.
"""

from __future__ import annotations

import math
from typing import Any, List, Tuple

from repro.advice.bits import BitReader, BitWriter, Bits
from repro.advice.oracle import AdviceMap
from repro.core.base import BOTH, WakeUpAlgorithm
from repro.models.knowledge import NetworkSetup
from repro.sim.node import NodeAlgorithm, NodeContext

PROBE = "pfx-probe"


def port_bucket(port: int, degree: int, beta: int) -> int:
    """Which of the 2^beta equal-width port buckets contains ``port``.

    Bucketing (rather than raw bit prefixes) keeps the probe-set size
    within a factor 2 of degree / 2^beta even when the degree is not a
    power of two, so the measured message curve is exactly geometric
    in beta.
    """
    return ((port - 1) << beta) // degree


def encode_prefix_advice(
    is_broadcaster: bool,
    degree: int,
    beta: int,
    pendant_ports: List[int],
) -> Bits:
    """Advice: broadcaster flag, gamma(beta), then the beta-bit bucket
    index of each pendant port."""
    w = BitWriter()
    w.write_bit(1 if is_broadcaster else 0)
    w.write_gamma0(beta)
    w.write_gamma0(len(pendant_ports))
    for port in pendant_ports:
        w.write_uint(port_bucket(port, degree, beta), beta)
    return w.getvalue()


def decode_prefix_advice(bits: Bits, degree: int):
    r = BitReader(bits)
    is_broadcaster = r.read_bit() == 1
    beta = r.read_gamma0()
    count = r.read_gamma0()
    buckets = [r.read_uint(beta) for _ in range(count)]
    return is_broadcaster, beta, buckets


class _PrefixNode(NodeAlgorithm):
    def on_wake(self, ctx: NodeContext) -> None:
        is_broadcaster, beta, buckets = decode_prefix_advice(
            ctx.advice, ctx.degree
        )
        if is_broadcaster:
            ctx.broadcast((PROBE,))
            return
        if not buckets:
            return
        wanted = set(buckets)
        for port in ctx.ports:
            if port_bucket(port, ctx.degree, beta) in wanted:
                ctx.send(port, (PROBE,))

    def on_message(self, ctx: NodeContext, port: int, payload: Any) -> None:
        pass


class PrefixAdvice(WakeUpAlgorithm):
    """The Theorem-1 frontier scheme: beta bits of advice vs
    ~n^2/2^beta messages on the class-𝒢 graphs."""

    name = "prefix-advice"
    synchrony = BOTH
    requires_kt1 = False
    uses_advice = True
    congest_safe = True

    def __init__(self, beta: int):
        if beta < 0:
            raise ValueError("beta must be nonnegative")
        self.beta = beta

    def compute_advice(self, setup: NetworkSetup) -> AdviceMap:
        graph = setup.graph
        # Pendants: degree-1 vertices; their unique neighbor must
        # discover the connecting port.
        pendant_hosts: dict = {v: [] for v in graph.vertices()}
        for w in graph.vertices():
            if graph.degree(w) == 1:
                host = graph.neighbors(w)[0]
                pendant_hosts[host].append(setup.ports.port(host, w))
        max_deg = graph.max_degree()
        candidates = [
            v for v in graph.vertices() if graph.degree(v) == max_deg
        ]
        broadcaster = min(candidates, key=setup.id_of) if candidates else None
        advice = {}
        for v in graph.vertices():
            advice[v] = encode_prefix_advice(
                v == broadcaster,
                graph.degree(v),
                self.beta,
                sorted(pendant_hosts[v]),
            )
        return AdviceMap(advice)

    def make_node(self, vertex, setup) -> NodeAlgorithm:
        return _PrefixNode()
