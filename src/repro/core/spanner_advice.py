"""Theorem 6 and Corollary 2 — spanner-based advising schemes (Sec 4.3).

A BFS tree gives O(D)-flavoured time bounds, but the awake distance
rho_awk can be much smaller than D.  Flooding over a *(2k-1)-spanner* H
wakes every node within (2k-1) * rho_awk hops of the awake set while
touching only |E(H)| = O(k n^{1+1/k}) edges.  The remaining question is
how a KT0 node learns its incident spanner edges cheaply — answered by
reusing the child-encoding idea on each node's spanner neighborhood:

For every node v, the oracle orders v's spanner neighbors
u_1, ..., u_s by v's port numbers and heap-structures them; v's advice
carries the port to u_1, and each u_i's advice carries — keyed by
*u_i's port back to v*, which is how u_i recognizes which host probed
it — the pair of ports at v leading to u_{2i} and u_{2i+1}.

Protocol: every node, upon waking (any cause), probes its first spanner
neighbor; a ``next`` reply reveals two more ports to probe, and so on.
A probed node is awake (the probe woke it if necessary) and runs the
same discovery for its own neighborhood, so the wake wave floods H.
Each spanner edge carries O(1) messages => O(k n^{1+1/k}) messages;
each neighborhood unfolds in O(log n) alternations over spanner paths
of stretch 2k-1 => O(k rho_awk log n) time.  Advice per node is
O((1 + spanner-degree) log n) bits — O(n^{1/k} log^2 n) on average
(paper Theorem 6; see DESIGN.md for the max-degree caveat).

Corollary 2 is the k = ceil(log2 n) instantiation: the spanner has
O(n) edges and stretch O(log n), giving O(rho_awk log^2 n) time,
O(n log^2 n) messages, and O(log^2 n) advice.

Model: asynchronous KT0 CONGEST.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, List, Optional, Tuple

from repro.advice.bits import BitReader, BitWriter, Bits
from repro.advice.oracle import AdviceMap
from repro.core.base import BOTH, AlgorithmBase, WakeUpAlgorithm
from repro.graphs.graph import Graph
from repro.graphs.spanner import (
    baswana_sen_spanner,
    bfs_tree_spanner,
    greedy_spanner,
)
from repro.models.knowledge import NetworkSetup
from repro.sim.node import NodeAlgorithm, NodeContext

SPROBE = "sp-probe"
SNEXT = "sp-next"

# Profiling phases (docs/observability.md): gamma-decoding the oracle
# advice vs the probe/next discovery traffic over the spanner.
PHASE_ADVICE_DECODE = "advice-decode"
PHASE_SPANNER_PROBE = "spanner-probe"


def encode_spanner_advice(
    first_port: Optional[int],
    entries: List[Tuple[int, Optional[int], Optional[int]]],
) -> Bits:
    """Encode (fc, [(host_port, next1, next2), ...]); gamma-coded.

    ``host_port`` is this node's own port leading to the host whose
    sibling structure the entry belongs to; ``next1``/``next2`` are
    ports at the host (0-free: None encoded as flag 0).
    """
    w = BitWriter()
    if first_port is None:
        w.write_bit(0)
    else:
        w.write_bit(1)
        w.write_gamma(first_port)
    w.write_gamma0(len(entries))
    for host_port, n1, n2 in entries:
        w.write_gamma(host_port)
        for nxt in (n1, n2):
            if nxt is None:
                w.write_bit(0)
            else:
                w.write_bit(1)
                w.write_gamma(nxt)
    return w.getvalue()


def decode_spanner_advice(bits: Bits):
    r = BitReader(bits)
    first = r.read_gamma() if r.read_bit() else None
    entries: Dict[int, Tuple[Optional[int], Optional[int]]] = {}
    count = r.read_gamma0()
    for _ in range(count):
        host_port = r.read_gamma()
        n1 = r.read_gamma() if r.read_bit() else None
        n2 = r.read_gamma() if r.read_bit() else None
        entries[host_port] = (n1, n2)
    return first, entries


def spanner_cen_advice(setup: NetworkSetup, spanner: Graph) -> AdviceMap:
    """Child-encode every node's spanner neighborhood."""
    ports = setup.ports
    first_port: Dict = {}
    entry_lists: Dict = {v: [] for v in setup.graph.vertices()}
    for v in setup.graph.vertices():
        nbrs = [
            u
            for u in ports.neighbors_in_port_order(v)
            if spanner.has_edge(v, u)
        ]
        first_port[v] = ports.port(v, nbrs[0]) if nbrs else None
        for i, u in enumerate(nbrs, start=1):
            n1 = (
                ports.port(v, nbrs[2 * i - 1])
                if 2 * i <= len(nbrs)
                else None
            )
            n2 = (
                ports.port(v, nbrs[2 * i]) if 2 * i + 1 <= len(nbrs) else None
            )
            entry_lists[u].append((ports.port(u, v), n1, n2))
    return AdviceMap(
        {
            v: encode_spanner_advice(first_port[v], entry_lists[v])
            for v in setup.graph.vertices()
        }
    )


class _SpannerNode(AlgorithmBase, NodeAlgorithm):
    phases = (PHASE_ADVICE_DECODE, PHASE_SPANNER_PROBE)

    def __init__(self) -> None:
        self._started = False
        self._first: Optional[int] = None
        self._entries: Dict[int, Tuple[Optional[int], Optional[int]]] = {}
        self._decoded = False

    def _decode(self, ctx: NodeContext) -> None:
        if not self._decoded:
            with self.phase(ctx, PHASE_ADVICE_DECODE):
                self._first, self._entries = decode_spanner_advice(
                    ctx.advice
                )
            self._decoded = True

    def on_wake(self, ctx: NodeContext) -> None:
        # Spanner flooding is symmetric: every node, however woken,
        # discovers and pings its whole spanner neighborhood.
        self._decode(ctx)
        self._started = True
        if self._first is not None:
            with self.phase(ctx, PHASE_SPANNER_PROBE):
                ctx.send(self._first, (SPROBE,))

    def on_message(self, ctx: NodeContext, port: int, payload: Any) -> None:
        tag = payload[0]
        if tag == SPROBE:
            self._decode(ctx)
            with self.phase(ctx, PHASE_SPANNER_PROBE):
                n1, n2 = self._entries.get(port, (None, None))
                ctx.send(port, (SNEXT, n1 or 0, n2 or 0))
        elif tag == SNEXT:
            with self.phase(ctx, PHASE_SPANNER_PROBE):
                _, n1, n2 = payload
                if n1:
                    ctx.send(n1, (SPROBE,))
                if n2:
                    ctx.send(n2, (SPROBE,))


class SpannerAdvice(WakeUpAlgorithm):
    """Theorem 6: O(k rho_awk log n) time, O(k n^{1+1/k}) messages,
    O(n^{1/k} log^2 n) advice; async KT0 CONGEST."""

    name = "spanner-advice"
    synchrony = BOTH
    requires_kt1 = False
    uses_advice = True
    congest_safe = True
    phases = _SpannerNode.phases

    def __init__(
        self, k: int = 3, spanner_seed: int = 0, method: str = "baswana-sen"
    ):
        if k < 1:
            raise ValueError("spanner parameter k must be >= 1")
        if method not in ("baswana-sen", "greedy"):
            raise ValueError(f"unknown spanner method {method!r}")
        self.k = k
        self.method = method
        self._spanner_seed = spanner_seed
        self.last_spanner: Optional[Graph] = None

    def _build_spanner(self, setup: NetworkSetup) -> Graph:
        from repro.graphs.compile import cached_spanner

        if self.method == "greedy":
            # Deterministic, matching the determinism claimed by
            # Theorem 6 (the oracle is allowed unlimited computation).
            return cached_spanner(
                setup.graph,
                "greedy",
                {"k": self.k},
                lambda g: greedy_spanner(g, self.k),
            )
        if isinstance(self._spanner_seed, int):
            # Deterministic in (graph, k, seed): safe to memoize per
            # compiled topology.  A live Random instance is stateful,
            # so that variant always rebuilds.
            return cached_spanner(
                setup.graph,
                "baswana-sen",
                {"k": self.k, "seed": self._spanner_seed},
                lambda g: baswana_sen_spanner(
                    g, self.k, seed=self._spanner_seed
                ),
            )
        return baswana_sen_spanner(
            setup.graph, self.k, seed=self._spanner_seed
        )

    def compute_advice(self, setup: NetworkSetup) -> AdviceMap:
        spanner = self._build_spanner(setup)
        self.last_spanner = spanner
        return spanner_cen_advice(setup, spanner)

    def make_node(self, vertex, setup) -> NodeAlgorithm:
        return _SpannerNode()


class LogSpannerAdvice(SpannerAdvice):
    """Corollary 2: SpannerAdvice at k = ceil(log2 n) — O(log^2 n)
    advice, O(n log^2 n) messages, O(rho_awk log^2 n) time."""

    name = "log-spanner-advice"

    def __init__(self, spanner_seed: int = 0, method: str = "baswana-sen"):
        # k is resolved per-setup; initialize with a placeholder.
        super().__init__(k=2, spanner_seed=spanner_seed, method=method)

    def _build_spanner(self, setup: NetworkSetup) -> Graph:
        self.k = max(2, math.ceil(math.log2(max(2, setup.n))))
        return super()._build_spanner(setup)


class TreeSpannerAdvice(SpannerAdvice):
    """Ablation: the same discovery protocol over a BFS-tree 'spanner'
    (n - 1 edges, stretch up to the diameter).  Separates the cost of
    the discovery mechanism from the benefit of the spanner's stretch."""

    name = "tree-spanner-advice"

    def _build_spanner(self, setup: NetworkSetup) -> Graph:
        from repro.graphs.compile import cached_spanner

        return cached_spanner(
            setup.graph, "bfs-tree", {}, bfs_tree_spanner
        )
