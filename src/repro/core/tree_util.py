"""Shared oracle-side tree machinery for the advice schemes.

All the KT0 CONGEST advising schemes (Corollary 1, Theorem 5A/5B) hang
their advice off a BFS tree of the network.  The oracle — which sees
the graph and all port mappings (Sec 4) — computes the tree centrally;
this module provides that computation in *port* terms, since KT0 advice
can only ever reference ports.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.graphs.graph import Graph, Vertex
from repro.graphs.traversal import bfs_children, bfs_tree
from repro.models.knowledge import NetworkSetup


class OracleTree:
    """A rooted spanning tree, viewed through each node's ports.

    Attributes
    ----------
    root:
        The root vertex (deterministically the minimum-ID vertex unless
        a root is supplied).
    parent:
        vertex -> parent vertex (None for the root).
    children:
        vertex -> list of child vertices, ordered by the parent's port
        numbers (deterministic given the port assignment).
    """

    def __init__(self, setup: NetworkSetup, root: Optional[Vertex] = None):
        graph = setup.graph
        if root is None:
            root = min(graph.vertices(), key=setup.id_of)
        parent, depth = bfs_tree(graph, root)
        if len(parent) != graph.num_vertices:
            raise ValueError("graph must be connected for tree advice")
        self.setup = setup
        self.root = root
        self.parent: Dict[Vertex, Optional[Vertex]] = parent
        self.depth = depth
        children = bfs_children(parent)
        # Order children by the port number at the parent: a canonical
        # order both the oracle and (implicitly) the algorithm share.
        self.children: Dict[Vertex, List[Vertex]] = {
            v: sorted(kids, key=lambda c: setup.ports.port(v, c))
            for v, kids in children.items()
        }

    # ------------------------------------------------------------------
    def parent_port(self, v: Vertex) -> Optional[int]:
        """Port at v leading to its parent (None for the root)."""
        p = self.parent[v]
        if p is None:
            return None
        return self.setup.ports.port(v, p)

    def child_ports(self, v: Vertex) -> List[int]:
        """Ports at v leading to its children, in child order."""
        return [self.setup.ports.port(v, c) for c in self.children[v]]

    def tree_ports(self, v: Vertex) -> List[int]:
        """Ports at v leading to all tree neighbors (parent first)."""
        ports = []
        pp = self.parent_port(v)
        if pp is not None:
            ports.append(pp)
        ports.extend(self.child_ports(v))
        return ports

    def tree_degree(self, v: Vertex) -> int:
        """Number of tree-incident edges at v (children + parent)."""
        return len(self.children[v]) + (0 if self.parent[v] is None else 1)
