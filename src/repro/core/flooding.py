"""Flooding — the baseline wake-up algorithm (Sec 1.2).

Every node, upon waking, broadcasts a wake-up message over all its
ports, once.  Flooding is time-optimal — it wakes every node within
exactly rho_awk time units (the awake distance, Eq. 1) — but
message-inefficient: it sends Theta(m) messages, which is the
unavoidable KT0 cost without advice [KPP+15] and the benchmark that the
paper's message-efficient algorithms beat.

Works in every model combination: KT0, CONGEST (the payload is a
constant-size tag), synchronous and asynchronous.
"""

from __future__ import annotations

from repro.core.base import BOTH, WakeUpAlgorithm
from repro.sim.node import NodeAlgorithm, NodeContext

WAKE_TAG = "wake"


class _FloodingNode(NodeAlgorithm):
    """Broadcast once upon waking; ignore all subsequent messages."""

    def on_wake(self, ctx: NodeContext) -> None:
        ctx.broadcast((WAKE_TAG,))

    def on_message(self, ctx: NodeContext, port: int, payload) -> None:
        # Waking already triggered the broadcast; nothing further to do.
        pass


class Flooding(WakeUpAlgorithm):
    """Theta(m)-message, rho_awk-time baseline."""

    name = "flooding"
    synchrony = BOTH
    requires_kt1 = False
    uses_advice = False
    congest_safe = True

    def make_node(self, vertex, setup) -> NodeAlgorithm:
        return _FloodingNode()

    def bulk_kernel(self, setup):
        from repro.sim.bulk import FloodingBulkKernel

        return FloodingBulkKernel((WAKE_TAG,))


class EchoFlooding(WakeUpAlgorithm):
    """Flooding variant where nodes acknowledge their waker.

    Sends exactly one extra message per awakened node (the "response"
    message of Lemma 1's wake-up -> NIH reduction uses the same trick).
    Used by tests that need explicit confirmation traffic.
    """

    name = "echo-flooding"
    synchrony = BOTH
    requires_kt1 = False
    uses_advice = False
    congest_safe = True

    class _Node(NodeAlgorithm):
        def __init__(self) -> None:
            self._woken_by_port = None
            self._acked = False

        def on_wake(self, ctx: NodeContext) -> None:
            ctx.broadcast((WAKE_TAG,))

        def on_message(self, ctx: NodeContext, port: int, payload) -> None:
            if payload == (WAKE_TAG,) and not self._acked:
                self._acked = True
                ctx.send(port, ("ack",))

    def make_node(self, vertex, setup) -> NodeAlgorithm:
        return self._Node()
