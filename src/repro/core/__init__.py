"""The paper's algorithms: one module per Table-1 row."""

from repro.core.base import ASYNC, BOTH, SYNC, WakeUpAlgorithm
from repro.core.child_encoding import ChildEncodingAdvice
from repro.core.dfs_wakeup import DfsWakeUp
from repro.core.fast_wakeup import FastWakeUp
from repro.core.fip06 import Fip06TreeAdvice
from repro.core.flooding import EchoFlooding, Flooding
from repro.core.gossip import PushGossipWakeUp, PushPullBroadcast
from repro.core.prefix_advice import PrefixAdvice
from repro.core.registry import (
    TABLE1_ROWS,
    algorithm_names,
    get_algorithm,
    register,
)
from repro.core.spanner_advice import (
    LogSpannerAdvice,
    SpannerAdvice,
    TreeSpannerAdvice,
)
from repro.core.sqrt_advice import SqrtThresholdAdvice
from repro.core.star_broadcast import StarBroadcast
from repro.core.tree_util import OracleTree

__all__ = [
    "ASYNC",
    "BOTH",
    "SYNC",
    "WakeUpAlgorithm",
    "ChildEncodingAdvice",
    "DfsWakeUp",
    "FastWakeUp",
    "Fip06TreeAdvice",
    "EchoFlooding",
    "Flooding",
    "PushGossipWakeUp",
    "PushPullBroadcast",
    "PrefixAdvice",
    "TABLE1_ROWS",
    "algorithm_names",
    "get_algorithm",
    "register",
    "LogSpannerAdvice",
    "SpannerAdvice",
    "TreeSpannerAdvice",
    "SqrtThresholdAdvice",
    "StarBroadcast",
    "OracleTree",
]
