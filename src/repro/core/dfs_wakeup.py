"""Theorem 3 — asynchronous KT1 LOCAL wake-up via ranked DFS tokens.

Every node woken *by the adversary* draws a random rank from [n^c] and
launches a depth-first-search token carrying (rank, origin ID, list of
visited IDs).  Nodes remember the lexicographically largest (rank, id)
pair they have ever seen; a token that arrives carrying a smaller pair
is discarded, a larger-or-equal one continues its DFS (Sec 3.1):

* the visited-ID list lets the current holder pick an unvisited
  neighbor (possible because of KT1 — it knows its neighbors' IDs);
* if all neighbors are visited, the token backtracks to its DFS parent;
* a token returning to its origin with nothing left to explore halts.

Nodes woken by a *message* never create ranks or tokens.

Guarantees (proved in the paper, verified empirically by the benches):

* correctness with probability 1 — the token of the maximum
  (rank, id) pair is never discarded and visits everyone (Las Vegas);
* each token's path is a DFS traversal of a tree, so a single token is
  forwarded O(n) times (Claim 1);
* every node forwards O(log n) distinct tokens w.h.p. (Claim 4), giving
  O(n log n) messages and O(n log n) time w.h.p.

LOCAL-only: the token carries up to n IDs, far beyond any CONGEST cap.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.base import ASYNC, BOTH, AlgorithmBase, WakeUpAlgorithm
from repro.sim.node import NodeAlgorithm, NodeContext

TOKEN = "dfs-token"

# Profiling phases (docs/observability.md): rank sampling at
# adversary-woken origins vs the DFS-token forwarding machinery.
PHASE_RANK_DRAW = "rank-draw"
PHASE_DFS_TOKEN = "dfs-token"

# Rank key: (rank, origin_id), compared lexicographically as in Sec 3.1.
RankKey = Tuple[int, int]


class DfsWakeUpNode(AlgorithmBase, NodeAlgorithm):
    """Per-node state machine of the ranked-DFS algorithm."""

    phases = (PHASE_RANK_DRAW, PHASE_DFS_TOKEN)

    def __init__(self, rank_exponent: int = 4):
        # Largest (rank, origin id) seen so far; (-1, -1) = nothing yet.
        self.best: RankKey = (-1, -1)
        # DFS parent port per token key (set on first adoption; the
        # origin has no entry).
        self.parent_port: Dict[RankKey, Optional[int]] = {}
        # Exploration ports per token key: where we forwarded the token
        # to a then-unvisited neighbor.  For the winning token these
        # are exactly this node's tree-child edges, which the
        # applications layer (leader election, spanning tree) reuses.
        self.child_ports: Dict[RankKey, List[int]] = {}
        self.tokens_forwarded: Set[RankKey] = set()
        self._rank_exponent = rank_exponent
        self.my_rank: Optional[int] = None

    # ------------------------------------------------------------------
    def on_wake(self, ctx: NodeContext) -> None:
        if ctx.wake_cause != "adversary":
            # Message-woken nodes neither create ranks nor start DFS
            # traversals (Sec 3.1).
            return
        # Rank from [n^c]: nodes know a constant-factor bound on log n,
        # so they can sample c * log2(n) random bits.
        with self.phase(ctx, PHASE_RANK_DRAW):
            rank_space = 1 << (self._rank_exponent * ctx.log2_n_bound)
            self.my_rank = ctx.rng.randrange(rank_space)
        key = (self.my_rank, ctx.node_id)
        self.best = key
        self.parent_port[key] = None  # origin: backtracking past me = halt
        self.tokens_forwarded.add(key)
        with self.phase(ctx, PHASE_DFS_TOKEN):
            self._advance(ctx, key, visited=(ctx.node_id,))

    def on_message(self, ctx: NodeContext, port: int, payload: Any) -> None:
        tag = payload[0]
        if tag != TOKEN:
            return
        with self.phase(ctx, PHASE_DFS_TOKEN):
            _, rank, origin, visited = payload
            key = (rank, origin)
            if key < self.best:
                # Case (b): a stale token — discard.
                return
            first_visit = ctx.node_id not in visited
            if first_visit:
                # Case (a): adopt and extend the traversal.
                self.best = key
                self.parent_port[key] = port
                visited = visited + (ctx.node_id,)
            else:
                # The token is backtracking through us; keep exploring.
                self.best = max(self.best, key)
            self.tokens_forwarded.add(key)
            self._advance(ctx, key, visited)

    # ------------------------------------------------------------------
    def _advance(self, ctx: NodeContext, key: RankKey, visited: Tuple[int, ...]) -> None:
        """Forward the token to an unvisited neighbor, or backtrack."""
        visited_set = set(visited)
        for p in ctx.ports:
            if ctx.neighbor_id(p) not in visited_set:
                self.child_ports.setdefault(key, []).append(p)
                ctx.send(p, (TOKEN, key[0], key[1], visited))
                return
        parent = self.parent_port.get(key)
        if parent is not None:
            ctx.send(parent, (TOKEN, key[0], key[1], visited))
            return
        # parent is None: we are the origin and the DFS is complete.
        self.on_token_complete(ctx, key, visited)

    def on_token_complete(
        self, ctx: NodeContext, key: RankKey, visited: Tuple[int, ...]
    ) -> None:
        """Hook: our own token finished its traversal (it visited every
        ID in ``visited`` and backtracked home).  The base algorithm
        needs no follow-up; applications (leader election, spanning
        tree) override this to start their announcement phase."""


class DfsWakeUp(WakeUpAlgorithm):
    """Theorem 3: O(n log n) time and messages w.h.p., async KT1 LOCAL."""

    name = "dfs-rank"
    synchrony = BOTH  # designed for async; runs under lock-step too
    requires_kt1 = True
    uses_advice = False
    congest_safe = False
    phases = DfsWakeUpNode.phases

    def __init__(self, rank_exponent: int = 4):
        self._rank_exponent = rank_exponent

    def make_node(self, vertex, setup) -> NodeAlgorithm:
        return DfsWakeUpNode(rank_exponent=self._rank_exponent)
