"""Corollary 1 — the [FIP06] BFS-tree advising scheme, sharpened.

The oracle roots a BFS tree at the minimum-ID node and tells every node
which of its ports are tree edges.  An awake node simply sends a wake
message over every tree port, once; since the tree has n - 1 edges and
each edge carries at most two messages, the message complexity is O(n),
and because the tree is a *BFS* tree the wake wave reaches everyone in
O(D) time from any awake set.

The encoding realizes the Appendix-B refinement of the paper: each node
gets whichever of the following is shorter —

* an explicit **port list** (tree-degree many port numbers, each
  ceil(log2(deg + 1)) bits), or
* a **bitmap** over its deg ports (1 bit per port),

prefixed by a one-bit selector.  The bitmap caps the maximum advice at
deg(v) + O(1) <= n + O(1) bits, and the port list keeps the *total*
advice at O(n log n) bits (each tree edge is named twice, at log-n cost
each), hence the average is O(log n) — exactly Corollary 1's bounds.

Model: asynchronous KT0 CONGEST (messages are constant-size tags).
"""

from __future__ import annotations

from typing import Any, List

from repro.advice.bits import BitReader, BitWriter, Bits
from repro.advice.oracle import AdviceMap
from repro.core.base import BOTH, WakeUpAlgorithm
from repro.core.tree_util import OracleTree
from repro.models.knowledge import NetworkSetup
from repro.sim.node import NodeAlgorithm, NodeContext

WAKE = "twake"

_PORT_LIST = 0
_BITMAP = 1


def encode_tree_ports(tree_ports: List[int], degree: int) -> Bits:
    """Encode a set of tree ports at a degree-``degree`` node, choosing
    the cheaper of the port-list and bitmap representations."""
    width = max(1, degree.bit_length())
    listing = BitWriter()
    listing.write_bit(_PORT_LIST)
    listing.write_uint_list([p - 1 for p in tree_ports], width)
    bitmap = BitWriter()
    bitmap.write_bit(_BITMAP)
    port_set = set(tree_ports)
    for p in range(1, degree + 1):
        bitmap.write_bit(1 if p in port_set else 0)
    chosen = listing if len(listing) <= len(bitmap) else bitmap
    return chosen.getvalue()


def decode_tree_ports(advice: Bits, degree: int) -> List[int]:
    """Inverse of :func:`encode_tree_ports`."""
    reader = BitReader(advice)
    kind = reader.read_bit()
    if kind == _PORT_LIST:
        width = max(1, degree.bit_length())
        return [p + 1 for p in reader.read_uint_list(width)]
    return [
        p for p in range(1, degree + 1) if reader.read_bit() == 1
    ]


class _TreeFloodNode(NodeAlgorithm):
    """Send a wake tag over every advised tree port upon waking."""

    def on_wake(self, ctx: NodeContext) -> None:
        for port in decode_tree_ports(ctx.advice, ctx.degree):
            ctx.send(port, (WAKE,))

    def on_message(self, ctx: NodeContext, port: int, payload: Any) -> None:
        # The wake itself already triggered our tree broadcast.
        pass


class Fip06TreeAdvice(WakeUpAlgorithm):
    """Corollary 1: O(D) time, O(n) messages, max advice O(n), average
    advice O(log n); async KT0 CONGEST."""

    name = "fip06-tree-advice"
    synchrony = BOTH
    requires_kt1 = False
    uses_advice = True
    congest_safe = True

    def compute_advice(self, setup: NetworkSetup) -> AdviceMap:
        tree = OracleTree(setup)
        return AdviceMap(
            {
                v: encode_tree_ports(
                    tree.tree_ports(v), setup.ports.degree(v)
                )
                for v in setup.graph.vertices()
            }
        )

    def make_node(self, vertex, setup) -> NodeAlgorithm:
        return _TreeFloodNode()
