"""Wake-up algorithm interface.

A :class:`WakeUpAlgorithm` declares its model requirements (synchrony,
knowledge, bandwidth, advice) and knows how to (a) run its oracle, if it
is an advising scheme, and (b) instantiate per-node protocol logic.  The
runner (:mod:`repro.sim.runner`) validates the declared requirements
against the :class:`~repro.models.knowledge.NetworkSetup` before
executing, so an algorithm can never silently run in a model it was not
designed for.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

from repro.advice.oracle import AdviceMap
from repro.errors import SimulationError
from repro.models.knowledge import Knowledge, NetworkSetup
from repro.sim.node import NodeAlgorithm, NodeContext

Vertex = Hashable

SYNC = "sync"
ASYNC = "async"
BOTH = "both"


class AlgorithmBase:
    """Phase-declaration mix-in shared by algorithms and node logic.

    The telemetry layer (:mod:`repro.obs`) attributes wall-time and
    message counts to *named phases*.  An algorithm opts in by listing
    the phases it intends to report in :attr:`phases` (documentation
    and used by benches to assert a profile is complete) and wrapping
    the corresponding code in ``with self.phase(ctx, "name"):`` blocks
    inside node callbacks.  Both are optional: undeclared phases still
    record, and the helper is a zero-overhead no-op when the engine has
    no recorder attached (the span still feeds
    :meth:`repro.sim.metrics.Metrics.phase_profile`).
    """

    #: Phase names this algorithm reports via :meth:`phase`; empty for
    #: uninstrumented algorithms.
    phases: Tuple[str, ...] = ()

    @staticmethod
    def phase(ctx: NodeContext, name: str):
        """Context manager attributing the enclosed work to ``name``.

        Thin sugar over :meth:`repro.sim.node.NodeContext.phase`, so
        algorithm code reads ``with self.phase(ctx, "advice-decode"):``.
        """
        return ctx.phase(name)


class WakeUpAlgorithm(AlgorithmBase):
    """Base class for complete wake-up algorithms / advising schemes.

    Class attributes (override in subclasses):

    ``name``
        Human-readable identifier (used by the registry and benches).
    ``synchrony``
        "sync", "async", or "both" — which engines may run it.
    ``requires_kt1``
        True if the algorithm needs the KT1 assumption.
    ``uses_advice``
        True if :meth:`compute_advice` must be called before running.
    ``congest_safe``
        True if every message fits in O(log n) bits, i.e. the algorithm
        is a CONGEST algorithm.
    ``phases``
        (From :class:`AlgorithmBase`.)  Profiling phases the node logic
        reports via ``ctx.phase(...)``; empty if uninstrumented.
    """

    name: str = "abstract"
    synchrony: str = BOTH
    requires_kt1: bool = False
    uses_advice: bool = False
    congest_safe: bool = False

    # ------------------------------------------------------------------
    def compute_advice(self, setup: NetworkSetup) -> Optional[AdviceMap]:
        """Run the oracle; returns None for advice-free algorithms.

        The oracle sees the full setup (graph, IDs, ports) but — per
        Sec 1.1 — *not* the wake schedule, which is not part of the
        setup object by construction.
        """
        return None

    def make_node(self, vertex: Vertex, setup: NetworkSetup) -> NodeAlgorithm:
        """Instantiate this node's protocol logic."""
        raise NotImplementedError

    def bulk_kernel(self, setup: NetworkSetup):
        """Frontier kernel for the bulk engine, or None (the default).

        Frontier-expressible algorithms override this to return a fresh
        :class:`~repro.sim.bulk.BulkKernel` capturing the same
        parameters :meth:`make_node` would bake into node instances.
        Returning None means "no bulk support": the runner transparently
        falls back to the per-message sync engine, so overriding is
        purely an optimization, never a requirement.
        """
        return None

    # ------------------------------------------------------------------
    def validate_setup(self, setup: NetworkSetup, engine: str) -> None:
        """Raise :class:`SimulationError` if the setup/engine combination
        contradicts the algorithm's declared requirements."""
        if self.requires_kt1 and setup.knowledge is not Knowledge.KT1:
            raise SimulationError(
                f"{self.name} requires the KT1 assumption"
            )
        if self.synchrony != BOTH and engine != self.synchrony:
            raise SimulationError(
                f"{self.name} is a {self.synchrony} algorithm; cannot run "
                f"on the {engine} engine"
            )
        if setup.bandwidth.is_congest and not self.congest_safe:
            raise SimulationError(
                f"{self.name} is not declared CONGEST-safe; run it under "
                "the LOCAL bandwidth model"
            )

    def build_nodes(self, setup: NetworkSetup) -> Dict[Vertex, NodeAlgorithm]:
        return {
            v: self.make_node(v, setup) for v in setup.graph.vertices()
        }
