"""Theorem 4 — FastWakeUp: synchronous KT1 LOCAL wake-up in 10·rho_awk
rounds with O(n^{3/2} sqrt(log n)) messages (Sec 3.2).

Program of an *active* node (exactly 10 local rounds):

1. **Sampling** (local round 0): become a *root* with probability
   sqrt(log n / n).
2. **BFS tree construction** (9 rounds): each root builds a depth-3 BFS
   tree with the message-efficient technique of [DPRS24] — level-1
   nodes report their neighbor-ID lists up to the root, which computes
   the BFS edge sets S2 and S3 centrally and pushes them back down, so
   construction messages travel only over tree edges:

   =====  ======================================================
   round  action (relative to the root's wake round, 1-based)
   =====  ======================================================
   1      root sends ``bfs1``
   2      neighbors join level 1; reply ``nbrs1`` (their ID lists)
   3      root computes S2; sends per-child lists ``s2``
   4      level-1 nodes send ``bfs2`` over S2 edges
   5      level-2 nodes join; reply ``nbrs2`` to their parent
   6      parents forward ``nbrs2up`` to the root
   7      root computes S3; sends ``s3`` down
   8      level-1 nodes forward ``s3down``
   9      level-2 nodes send ``bfs3`` over S3 edges
   10     level-3 nodes join (construction complete)
   =====  ======================================================

3. **Broadcast** (local round 9): a node still active (never
   deactivated) broadcasts ``activate!`` and then stops.

Status rules (Sec 3.2):

* adversary-woken nodes become **active**;
* a sleeping node receiving ``activate!`` or joining a tree as a
  *level-3* node becomes active (the wave continues);
* a node joining as a *level-1 or level-2* node becomes **deactivated**
  in the round the tree's third level completes — in particular an
  active node so captured never executes its broadcast (the
  message-saving mechanism of Lemma 13);
* roots deactivate when their construction finishes.

Deactivated nodes still perform tree-construction forwarding duties
(required for other roots' in-progress constructions) but never
broadcast or sample.  KT1 and LOCAL are both essential: neighbor-ID
lists are exchanged wholesale.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.base import SYNC, WakeUpAlgorithm
from repro.sim.node import NodeAlgorithm, NodeContext

BFS1 = "bfs1"
NBRS1 = "nbrs1"
S2 = "s2"
BFS2 = "bfs2"
NBRS2 = "nbrs2"
NBRS2UP = "nbrs2up"
S3 = "s3"
S3DOWN = "s3down"
BFS3 = "bfs3"
ACTIVATE = "activate!"

# Rounds from a node's join until the tree's level 3 completes
# (completion is root-round 10; level-1 joins at root-round 2, level-2
# at root-round 5, the root itself starts at root-round 1).
_L1_COMPLETION_DELTA = 8
_L2_COMPLETION_DELTA = 5
_ROOT_COMPLETION_DELTA = 9


class _RootState:
    """Root-side bookkeeping for one BFS-tree construction."""

    __slots__ = (
        "level1",
        "nbr_lists",
        "expect_nbrs1",
        "level2_assignment",
        "expect_nbrs2up",
        "nbrs2_collected",
    )

    def __init__(self, expect_nbrs1: int):
        self.level1: List[int] = []
        self.nbr_lists: Dict[int, Tuple[int, ...]] = {}
        self.expect_nbrs1 = expect_nbrs1
        self.level2_assignment: Dict[int, int] = {}  # level2 id -> parent id
        self.expect_nbrs2up = 0
        self.nbrs2_collected: Dict[int, Tuple] = {}


class _Level1State:
    __slots__ = ("parent_port", "children", "expect_nbrs2", "collected")

    def __init__(self, parent_port: int):
        self.parent_port = parent_port
        self.children: List[int] = []
        self.expect_nbrs2 = 0
        self.collected: List[Tuple[int, Tuple[int, ...]]] = []


class _Level2State:
    __slots__ = ("parent_port",)

    def __init__(self, parent_port: int):
        self.parent_port = parent_port


class FastWakeUpNode(NodeAlgorithm):
    """Per-node state machine of FastWakeUp."""

    def __init__(self, sample_override: Optional[float] = None):
        self.active = False
        self.deactivated = False
        #: Local round at which this node deactivated (None if never);
        #: recorded so the Lemma 9/11 tests can audit the discipline.
        self.deactivated_at_local: Optional[int] = None
        self.broadcast_done = False
        self.is_root = False
        self.sampled = False
        self._deactivate_deadlines: List[int] = []
        self._root_state: Optional[_RootState] = None
        self._l1: Dict[int, _Level1State] = {}  # root id -> state
        self._l2: Dict[int, _Level2State] = {}
        self._sample_override = sample_override
        # True only between a message-caused on_wake and the on_message
        # for that same waking message: identifies "was asleep when this
        # message arrived", which gates the asleep->active transitions.
        self._woke_by_message_pending = False

    # ------------------------------------------------------------------
    # Status transitions
    # ------------------------------------------------------------------
    def on_wake(self, ctx: NodeContext) -> None:
        if ctx.wake_cause == "adversary":
            self.active = True
        else:
            self._woke_by_message_pending = True

    def _activate(self) -> None:
        if not self.deactivated:
            self.active = True

    def _schedule_deactivation(self, ctx: NodeContext, delta: int) -> None:
        self._deactivate_deadlines.append(ctx.local_round + delta)

    def wants_round(self) -> bool:
        # Rounds are needed to run the sampling/broadcast program (which
        # ends with self-deactivation in the 11th round, Sec 3.2) and to
        # fire pending deactivation deadlines.
        if self.deactivated:
            return False
        return self.active or bool(self._deactivate_deadlines)

    # ------------------------------------------------------------------
    # The 10-round program
    # ------------------------------------------------------------------
    def on_round(self, ctx: NodeContext) -> None:
        # Deactivation deadlines fire before any broadcast decision
        # (Lemma 13 relies on capture pre-empting the broadcast).
        if self._deactivate_deadlines and (
            min(self._deactivate_deadlines) <= ctx.local_round
        ):
            self.deactivated = True
            self.deactivated_at_local = ctx.local_round
            self._deactivate_deadlines = []
            return
        if not self.active or self.deactivated:
            return
        if ctx.local_round == 0:
            self._sampling_step(ctx)
        elif ctx.local_round == 9 and not self.broadcast_done:
            # Broadcast step: still active after 9 full rounds.
            ctx.broadcast((ACTIVATE,))
            self.broadcast_done = True
        elif ctx.local_round >= 10:
            # The 10-round program is over: the node deactivates itself
            # ("deactivates itself in round 11", Sec 3.2), which also
            # prevents later trees from re-arming it past Lemma 11's
            # r + 10 deadline.
            self.deactivated = True
            self.deactivated_at_local = ctx.local_round
            self._deactivate_deadlines = []

    def _sampling_step(self, ctx: NodeContext) -> None:
        if self.sampled:
            return
        self.sampled = True
        if self._sample_override is not None:
            p = self._sample_override
        else:
            n_hat = 1 << ctx.log2_n_bound
            p = math.sqrt(math.log(n_hat) / n_hat)
        if ctx.rng.random() < min(1.0, p):
            self.is_root = True
            self._root_state = _RootState(expect_nbrs1=ctx.degree)
            self._schedule_deactivation(ctx, _ROOT_COMPLETION_DELTA)
            for port in ctx.ports:
                ctx.send(port, (BFS1, ctx.node_id))
            if ctx.degree == 0:
                self.deactivated = True
                self.deactivated_at_local = ctx.local_round

    # ------------------------------------------------------------------
    # Tree-construction message handling
    # ------------------------------------------------------------------
    def on_message(self, ctx: NodeContext, port: int, payload: Any) -> None:
        was_asleep = self._woke_by_message_pending
        self._woke_by_message_pending = False
        tag = payload[0]
        if tag == ACTIVATE:
            if was_asleep:
                # Only nodes that were asleep become active; an awake
                # servant stays in its current status (Sec 3.2).
                self._maybe_activate_from_sleep(ctx)
            return
        if tag == BFS1:
            self._join_level1(ctx, port, payload[1])
        elif tag == NBRS1:
            self._root_collect_nbrs1(ctx, payload)
        elif tag == S2:
            self._level1_receive_s2(ctx, payload)
        elif tag == BFS2:
            self._join_level2(ctx, port, payload[1])
        elif tag == NBRS2:
            self._level1_collect_nbrs2(ctx, payload)
        elif tag == NBRS2UP:
            self._root_collect_nbrs2up(ctx, payload)
        elif tag == S3:
            self._level1_forward_s3(ctx, payload)
        elif tag == S3DOWN:
            self._level2_send_bfs3(ctx, payload)
        elif tag == BFS3:
            self._join_level3(ctx, was_asleep)

    # -- helpers -----------------------------------------------------------
    def _maybe_activate_from_sleep(self, ctx: NodeContext) -> None:
        """A sleeping node that received activate!/bfs3 becomes active.

        ``wake_cause == "message"`` plus "this is the first message we
        ever processed" identifies the was-asleep case; we approximate
        "was asleep when this message arrived" by "not yet active and
        not yet deactivated", matching the paper's status table.
        """
        if not self.deactivated and not self.active:
            self.active = True

    def _join_level1(self, ctx: NodeContext, port: int, root_id: int) -> None:
        if root_id in self._l1:
            return
        self._l1[root_id] = _Level1State(parent_port=port)
        # Status: joining as level 1 => deactivate at completion.
        if not self.deactivated:
            self._schedule_deactivation(ctx, _L1_COMPLETION_DELTA)
        ctx.send(port, (NBRS1, root_id, ctx.node_id, tuple(ctx.neighbor_ids())))

    def _root_collect_nbrs1(self, ctx: NodeContext, payload) -> None:
        if self._root_state is None:
            return
        _, root_id, sender_id, nbr_ids = payload
        if root_id != ctx.node_id:
            return
        st = self._root_state
        st.level1.append(sender_id)
        st.nbr_lists[sender_id] = nbr_ids
        if len(st.level1) < st.expect_nbrs1:
            return
        # All level-1 reports in: compute S2 (level-2 assignment).
        level1_set = set(st.level1)
        assigned: Dict[int, int] = {}
        for v_id in sorted(st.level1):
            for w_id in st.nbr_lists[v_id]:
                if w_id == ctx.node_id or w_id in level1_set:
                    continue
                if w_id not in assigned:
                    assigned[w_id] = v_id
        st.level2_assignment = assigned
        children_of: Dict[int, List[int]] = {}
        for w_id, v_id in assigned.items():
            children_of.setdefault(v_id, []).append(w_id)
        st.expect_nbrs2up = len(children_of)
        for v_id in st.level1:
            kids = tuple(sorted(children_of.get(v_id, ())))
            if kids:
                # Childless level-1 nodes have no further construction
                # duty; skipping the empty list saves Theta(degree)
                # messages per root on dense graphs.
                ctx.send(ctx.port_of(v_id), (S2, root_id, kids))

    def _level1_receive_s2(self, ctx: NodeContext, payload) -> None:
        _, root_id, kids = payload
        st = self._l1.get(root_id)
        if st is None:
            return
        st.children = list(kids)
        st.expect_nbrs2 = len(kids)
        for w_id in kids:
            ctx.send(ctx.port_of(w_id), (BFS2, root_id, ctx.node_id))

    def _join_level2(self, ctx: NodeContext, port: int, root_id: int) -> None:
        if root_id in self._l2:
            return
        self._l2[root_id] = _Level2State(parent_port=port)
        if not self.deactivated:
            self._schedule_deactivation(ctx, _L2_COMPLETION_DELTA)
        ctx.send(port, (NBRS2, root_id, ctx.node_id, tuple(ctx.neighbor_ids())))

    def _level1_collect_nbrs2(self, ctx: NodeContext, payload) -> None:
        _, root_id, w_id, nbrs = payload
        st = self._l1.get(root_id)
        if st is None:
            return
        st.collected.append((w_id, nbrs))
        if len(st.collected) >= st.expect_nbrs2 and st.expect_nbrs2 > 0:
            ctx.send(
                st.parent_port,
                (NBRS2UP, root_id, ctx.node_id, tuple(st.collected)),
            )

    def _root_collect_nbrs2up(self, ctx: NodeContext, payload) -> None:
        if self._root_state is None:
            return
        _, root_id, v_id, pairs = payload
        if root_id != ctx.node_id:
            return
        st = self._root_state
        st.nbrs2_collected[v_id] = pairs
        if len(st.nbrs2_collected) < st.expect_nbrs2up:
            return
        # Compute S3: assign each level-3 node one level-2 parent.
        known = set(st.level1) | set(st.level2_assignment) | {ctx.node_id}
        assigned3: Dict[int, int] = {}
        for v_id2 in sorted(st.nbrs2_collected):
            for w_id, nbrs in st.nbrs2_collected[v_id2]:
                for x_id in nbrs:
                    if x_id in known or x_id in assigned3:
                        continue
                    assigned3[x_id] = w_id
        kids3_of_w: Dict[int, List[int]] = {}
        for x_id, w_id in assigned3.items():
            kids3_of_w.setdefault(w_id, []).append(x_id)
        # Push S3 down via the level-1 parents.
        for v_id2, pairs2 in st.nbrs2_collected.items():
            entries = tuple(
                (w_id, tuple(sorted(kids3_of_w.get(w_id, ()))))
                for w_id, _nbrs in pairs2
                if kids3_of_w.get(w_id)
            )
            if entries:
                ctx.send(ctx.port_of(v_id2), (S3, root_id, entries))

    def _level1_forward_s3(self, ctx: NodeContext, payload) -> None:
        _, root_id, entries = payload
        if root_id not in self._l1:
            return
        for w_id, kids in entries:
            ctx.send(ctx.port_of(w_id), (S3DOWN, root_id, kids))

    def _level2_send_bfs3(self, ctx: NodeContext, payload) -> None:
        _, root_id, kids = payload
        if root_id not in self._l2:
            return
        for x_id in kids:
            ctx.send(ctx.port_of(x_id), (BFS3, root_id))

    def _join_level3(self, ctx: NodeContext, was_asleep: bool) -> None:
        # A sleeping node joining as level 3 becomes active.
        if was_asleep:
            self._maybe_activate_from_sleep(ctx)


class FastWakeUp(WakeUpAlgorithm):
    """Theorem 4: 10 * rho_awk rounds, O(n^{3/2} sqrt(log n)) messages."""

    name = "fast-wakeup"
    synchrony = SYNC
    requires_kt1 = True
    uses_advice = False
    congest_safe = False

    def __init__(self, sample_override: Optional[float] = None):
        """``sample_override`` pins the root-sampling probability (used
        by tests to force deterministic scenarios)."""
        self._sample_override = sample_override

    def make_node(self, vertex, setup) -> NodeAlgorithm:
        return FastWakeUpNode(sample_override=self._sample_override)
