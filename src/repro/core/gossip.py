"""Gossip protocols — the Sec-1.3 related-work boundary, executable.

The paper explains why gossip does not straightforwardly solve wake-up:
classic rumor spreading [KSSV00, CHKM12, Hae15] relies on *both* push
(informed nodes send) and pull (uninformed nodes ask), but a sleeping
node cannot pull.  Push-only gossip does solve broadcast on regular
expanders [SS11], yet footnote 3 gives the counterexample: a complete
graph with one pendant vertex has constant vertex expansion, but the
pendant is reached only when its unique clique neighbor happens to push
to it — an Omega(n) expected wait.

This module implements both protocols so the boundary can be measured:

* :class:`PushGossipWakeUp` — a legitimate (if slow) wake-up algorithm:
  every awake node pushes a wake rumor to one uniformly random neighbor
  per round, for a bounded number of rounds.
* :class:`PushPullBroadcast` — the classic rumor-spreading protocol for
  the *broadcast* problem under the all-awake assumption: informed
  nodes push, uninformed nodes pull.  It is not a wake-up algorithm
  (pulling requires being awake); it exists to demonstrate the contrast
  the paper draws.

Both are synchronous KT1 protocols (the random-neighbor choice only
needs ports, but we keep the related-work setting).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional

from repro.core.base import SYNC, WakeUpAlgorithm
from repro.sim.node import NodeAlgorithm, NodeContext

RUMOR = "rumor"
PULL = "pull"

Vertex = Hashable


class _PushNode(NodeAlgorithm):
    def __init__(self, active_rounds: int):
        self._active_rounds = active_rounds
        self._done = False

    def wants_round(self) -> bool:
        return not self._done

    def on_round(self, ctx: NodeContext) -> None:
        if ctx.local_round >= self._active_rounds:
            self._done = True
            return
        if ctx.degree:
            port = ctx.rng.randrange(1, ctx.degree + 1)
            ctx.send(port, (RUMOR,))


class PushGossipWakeUp(WakeUpAlgorithm):
    """Push-only gossip as a wake-up algorithm.

    Every awake node pushes to one random neighbor per round for
    ``active_rounds`` rounds.  On well-connected regular graphs this
    wakes everyone in O(log n) rounds [SS11]; on the footnote-3
    lollipop it needs Theta(n) rounds for the pendant, which the bench
    measures.  With the default generous budget the algorithm is
    correct w.h.p. on the workloads we run it on; the runner reports
    failures (Monte Carlo, unlike the paper's Las Vegas algorithms).
    """

    name = "push-gossip"
    synchrony = SYNC
    requires_kt1 = True
    uses_advice = False
    congest_safe = True

    def __init__(self, active_rounds: int = 0):
        """``active_rounds = 0`` derives a budget of 8 * n_hat rounds
        from the known log-n bound at node construction time."""
        self._active_rounds = active_rounds

    def make_node(self, vertex, setup) -> NodeAlgorithm:
        budget = self._active_rounds
        if budget <= 0:
            budget = 8 * (1 << setup.log2_n_bound)
        return _PushNode(budget)

    def bulk_kernel(self, setup):
        from repro.sim.bulk import PushGossipBulkKernel

        budget = self._active_rounds
        if budget <= 0:
            budget = 8 * (1 << setup.log2_n_bound)
        return PushGossipBulkKernel((RUMOR,), budget)


class _PushPullNode(NodeAlgorithm):
    def __init__(
        self,
        source_id: int,
        active_rounds: int,
        informed_at: Dict[Vertex, int],
        vertex: Vertex,
    ):
        self._source_id = source_id
        self._active_rounds = active_rounds
        self._informed_at = informed_at
        self._vertex = vertex
        self.informed = False
        self._done = False

    # -- helpers -----------------------------------------------------------
    def _mark_informed(self, ctx: NodeContext) -> None:
        if not self.informed:
            self.informed = True
            self._informed_at[self._vertex] = ctx.local_round

    def wants_round(self) -> bool:
        return not self._done

    def on_wake(self, ctx: NodeContext) -> None:
        if ctx.node_id == self._source_id:
            self._mark_informed(ctx)

    def on_round(self, ctx: NodeContext) -> None:
        if ctx.local_round >= self._active_rounds:
            self._done = True
            return
        if ctx.degree == 0:
            return
        port = ctx.rng.randrange(1, ctx.degree + 1)
        if self.informed:
            ctx.send(port, (RUMOR,))  # push
        else:
            ctx.send(port, (PULL,))  # pull request

    def on_message(self, ctx: NodeContext, port: int, payload: Any) -> None:
        tag = payload[0]
        if tag == RUMOR:
            self._mark_informed(ctx)
        elif tag == PULL and self.informed:
            ctx.send(port, (RUMOR,))


class PushPullBroadcast(WakeUpAlgorithm):
    """Classic push-pull rumor spreading (broadcast, all nodes awake).

    Run it with ``WakeSchedule.all_at_once(all_vertices)``; the node
    whose ID is ``source_id`` starts informed.  After the run,
    :attr:`informed_at` maps each vertex to the (local) round it
    learned the rumor, and :meth:`all_informed` tells whether broadcast
    completed within the round budget.

    Not a wake-up algorithm: a sleeping node cannot send pull requests,
    which is precisely the paper's Sec-1.3 point.
    """

    name = "push-pull-broadcast"
    synchrony = SYNC
    requires_kt1 = True
    uses_advice = False
    congest_safe = True

    def __init__(self, source_id: int, active_rounds: int = 0):
        self.source_id = source_id
        self._active_rounds = active_rounds
        self.informed_at: Dict[Vertex, int] = {}
        self._n: Optional[int] = None

    def make_node(self, vertex, setup) -> NodeAlgorithm:
        self._n = setup.n
        budget = self._active_rounds
        if budget <= 0:
            budget = 16 * setup.log2_n_bound
        return _PushPullNode(
            self.source_id, budget, self.informed_at, vertex
        )

    def all_informed(self) -> bool:
        return self._n is not None and len(self.informed_at) == self._n

    def completion_round(self) -> Optional[int]:
        """Round by which the last node was informed, or None if
        broadcast did not complete."""
        if not self.all_informed():
            return None
        return max(self.informed_at.values())
