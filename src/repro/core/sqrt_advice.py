"""Theorem 5(A) — the sqrt-threshold advising scheme (Sec 4.1).

Same BFS-tree backbone as Corollary 1, but the advice length is capped
at O(sqrt(n) log n) per node by a degree threshold:

* a **low-degree tree node** (tree degree <= sqrt(n)) receives the
  explicit list of its tree ports — at most sqrt(n) port numbers of
  O(log n) bits each;
* a **high-degree tree node** (tree degree > sqrt(n)) receives a single
  bit and, upon waking, simply broadcasts over *all* its ports.

Because the tree has n - 1 edges there are at most 2(n-1)/sqrt(n) =
O(sqrt(n)) high-degree tree nodes, so their broadcasts cost at most
O(sqrt(n)) * n = O(n^{3/2}) messages; low-degree nodes contribute O(n).
Time remains O(D) (the wake wave still dominates every BFS-tree path —
broadcasts only add extra edges).  Average advice stays O(log n) as the
total port-list length is still O(n log n) bits.

Model: asynchronous KT0 CONGEST.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional

from repro.advice.bits import BitReader, BitWriter, Bits
from repro.advice.oracle import AdviceMap
from repro.core.base import BOTH, WakeUpAlgorithm
from repro.core.tree_util import OracleTree
from repro.models.knowledge import NetworkSetup
from repro.sim.node import NodeAlgorithm, NodeContext

WAKE = "swake"

_LOW = 0
_HIGH = 1


def encode_low(tree_ports: List[int], degree: int) -> Bits:
    w = BitWriter()
    w.write_bit(_LOW)
    width = max(1, degree.bit_length())
    w.write_uint_list([p - 1 for p in tree_ports], width)
    return w.getvalue()


def encode_high() -> Bits:
    return BitWriter().write_bit(_HIGH).getvalue()


def decode(advice: Bits, degree: int) -> Optional[List[int]]:
    """Returns the tree-port list for low-degree nodes, or None for
    high-degree nodes (meaning: broadcast everywhere)."""
    reader = BitReader(advice)
    if reader.read_bit() == _HIGH:
        return None
    width = max(1, degree.bit_length())
    return [p + 1 for p in reader.read_uint_list(width)]


class _SqrtAdviceNode(NodeAlgorithm):
    def on_wake(self, ctx: NodeContext) -> None:
        ports = decode(ctx.advice, ctx.degree)
        if ports is None:
            ctx.broadcast((WAKE,))
        else:
            for port in ports:
                ctx.send(port, (WAKE,))

    def on_message(self, ctx: NodeContext, port: int, payload: Any) -> None:
        pass


class SqrtThresholdAdvice(WakeUpAlgorithm):
    """Theorem 5(A): O(D) time, O(n^{3/2}) messages, max advice
    O(sqrt(n) log n), average O(log n); async KT0 CONGEST."""

    name = "sqrt-threshold-advice"
    synchrony = BOTH
    requires_kt1 = False
    uses_advice = True
    congest_safe = True

    def __init__(self, threshold: Optional[int] = None):
        """``threshold`` overrides the sqrt(n) degree cutoff (tests)."""
        self._threshold = threshold

    def compute_advice(self, setup: NetworkSetup) -> AdviceMap:
        tree = OracleTree(setup)
        thresh = self._threshold
        if thresh is None:
            thresh = max(1, int(math.isqrt(setup.n)))
        advice = {}
        for v in setup.graph.vertices():
            if tree.tree_degree(v) <= thresh:
                advice[v] = encode_low(
                    tree.tree_ports(v), setup.ports.degree(v)
                )
            else:
                advice[v] = encode_high()
        return AdviceMap(advice)

    def make_node(self, vertex, setup) -> NodeAlgorithm:
        return _SqrtAdviceNode()
