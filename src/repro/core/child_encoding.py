"""Theorem 5(B) — the child-encoding scheme (CEN, Sec 4.2).

Problem with the BFS-tree schemes: a node with many tree children must
somehow learn the ports to *all* of them, and listing them costs up to
O(n log n) bits of advice.  The child-encoding scheme distributes that
list among the children themselves:

The oracle arranges each node v's children c_1, ..., c_t (ordered by
v's port numbers) into an implicit binary heap over siblings — the
"next siblings" of c_i are c_{2i} and c_{2i+1}.  Advice of node w is
the tuple

    (p_w, fc_w, next_w)

where ``p_w`` is w's port to its parent, ``fc_w`` w's port to its
*first* child c_1, and ``next_w`` the pair of ports *at w's parent*
leading to w's two next siblings (Sec 4.2.1).  Everything is O(log n)
bits.

Wake-up protocol:

* a node that starts (adversary wake, or an ``up`` from a child) sends
  ``up`` to its parent and ``probe`` to its first child;
* a node receiving ``probe`` (necessarily from its parent) replies with
  its ``next_w`` pair and recursively starts discovering its own
  children (no ``up`` needed: the parent is evidently awake);
* a parent receiving a ``next`` reply probes the two revealed ports.

Each tree edge carries at most one ``up``, one ``probe``, and one
``next`` — O(n) messages total.  Discovering t children takes
2 * ceil(log2(t+1)) alternations, so a depth-D BFS tree is fully awake
within O(D log n) time.  All messages carry at most two port numbers:
CONGEST-safe.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.advice.bits import BitReader, BitWriter, Bits
from repro.advice.oracle import AdviceMap
from repro.core.base import BOTH, WakeUpAlgorithm
from repro.core.tree_util import OracleTree
from repro.models.knowledge import NetworkSetup
from repro.sim.node import NodeAlgorithm, NodeContext

UP = "cen-up"
PROBE = "cen-probe"
NEXT = "cen-next"


def _write_opt_port(w: BitWriter, port: Optional[int]) -> None:
    if port is None:
        w.write_bit(0)
    else:
        w.write_bit(1)
        w.write_gamma(port)


def _read_opt_port(r: BitReader) -> Optional[int]:
    if r.read_bit() == 0:
        return None
    return r.read_gamma()


def encode_cen(
    parent_port: Optional[int],
    first_child_port: Optional[int],
    next_pair: Tuple[Optional[int], Optional[int]],
) -> Bits:
    """Encode a (p_w, fc_w, next_w) advice tuple; O(log n) bits."""
    w = BitWriter()
    _write_opt_port(w, parent_port)
    _write_opt_port(w, first_child_port)
    _write_opt_port(w, next_pair[0])
    _write_opt_port(w, next_pair[1])
    return w.getvalue()


def decode_cen(bits: Bits):
    r = BitReader(bits)
    return (
        _read_opt_port(r),
        _read_opt_port(r),
        (_read_opt_port(r), _read_opt_port(r)),
    )


def cen_advice_for_tree(tree: OracleTree, setup: NetworkSetup) -> AdviceMap:
    """The CEN oracle: sibling binary-heap structure over a BFS tree."""
    parent_port: dict = {}
    first_child: dict = {}
    next_pair: dict = {}
    for v in setup.graph.vertices():
        parent_port[v] = tree.parent_port(v)
        kids = tree.children[v]
        first_child[v] = (
            setup.ports.port(v, kids[0]) if kids else None
        )
        # Heap-position the siblings: child i (1-based) points at
        # children 2i and 2i+1 via ports *at v*.
        for i, c in enumerate(kids, start=1):
            nxt1 = (
                setup.ports.port(v, kids[2 * i - 1])
                if 2 * i <= len(kids)
                else None
            )
            nxt2 = (
                setup.ports.port(v, kids[2 * i])
                if 2 * i + 1 <= len(kids)
                else None
            )
            next_pair[c] = (nxt1, nxt2)
    advice = {}
    for v in setup.graph.vertices():
        advice[v] = encode_cen(
            parent_port[v],
            first_child[v],
            next_pair.get(v, (None, None)),
        )
    return AdviceMap(advice)


class _CenNode(NodeAlgorithm):
    def __init__(self) -> None:
        self._started = False
        self._parent_port: Optional[int] = None
        self._fc_port: Optional[int] = None
        self._next: Tuple[Optional[int], Optional[int]] = (None, None)
        self._decoded = False

    def _decode(self, ctx: NodeContext) -> None:
        if not self._decoded:
            self._parent_port, self._fc_port, self._next = decode_cen(
                ctx.advice
            )
            self._decoded = True

    def _start(self, ctx: NodeContext, notify_parent: bool) -> None:
        if self._started:
            return
        self._started = True
        self._decode(ctx)
        if notify_parent and self._parent_port is not None:
            ctx.send(self._parent_port, (UP,))
        if self._fc_port is not None:
            ctx.send(self._fc_port, (PROBE,))

    def on_wake(self, ctx: NodeContext) -> None:
        if ctx.wake_cause == "adversary":
            self._start(ctx, notify_parent=True)

    def on_message(self, ctx: NodeContext, port: int, payload: Any) -> None:
        tag = payload[0]
        if tag == UP:
            # A child woke us (or reached us already awake): ensure our
            # own discovery + upward propagation are running.
            self._start(ctx, notify_parent=True)
        elif tag == PROBE:
            self._decode(ctx)
            n1, n2 = self._next
            ctx.send(port, (NEXT, n1 or 0, n2 or 0))
            # Parent is awake; only the downward discovery is needed.
            self._start(ctx, notify_parent=False)
        elif tag == NEXT:
            _, n1, n2 = payload
            if n1:
                ctx.send(n1, (PROBE,))
            if n2:
                ctx.send(n2, (PROBE,))


class ChildEncodingAdvice(WakeUpAlgorithm):
    """Theorem 5(B): O(D log n) time, O(n) messages, max advice
    O(log n) bits; async KT0 CONGEST."""

    name = "child-encoding"
    synchrony = BOTH
    requires_kt1 = False
    uses_advice = True
    congest_safe = True

    def compute_advice(self, setup: NetworkSetup) -> AdviceMap:
        return cen_advice_for_tree(OracleTree(setup), setup)

    def make_node(self, vertex, setup) -> NodeAlgorithm:
        return _CenNode()
