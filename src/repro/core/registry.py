"""Algorithm registry: name -> factory, for benches and the CLI-style
examples.

The registry maps every Table-1 row to its implementation so sweep code
can iterate "all algorithms applicable to model X" without hard-coding
imports everywhere.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.base import WakeUpAlgorithm
from repro.core.child_encoding import ChildEncodingAdvice
from repro.core.dfs_wakeup import DfsWakeUp
from repro.core.fast_wakeup import FastWakeUp
from repro.core.fip06 import Fip06TreeAdvice
from repro.core.flooding import EchoFlooding, Flooding
from repro.core.gossip import PushGossipWakeUp
from repro.core.prefix_advice import PrefixAdvice
from repro.core.spanner_advice import (
    LogSpannerAdvice,
    SpannerAdvice,
    TreeSpannerAdvice,
)
from repro.core.sqrt_advice import SqrtThresholdAdvice
from repro.core.star_broadcast import StarBroadcast

Factory = Callable[[], WakeUpAlgorithm]

_REGISTRY: Dict[str, Factory] = {
    "flooding": Flooding,
    "echo-flooding": EchoFlooding,
    "dfs-rank": DfsWakeUp,
    "fast-wakeup": FastWakeUp,
    "fip06-tree-advice": Fip06TreeAdvice,
    "sqrt-threshold-advice": SqrtThresholdAdvice,
    "child-encoding": ChildEncodingAdvice,
    "spanner-advice": SpannerAdvice,
    "log-spanner-advice": LogSpannerAdvice,
    "tree-spanner-advice": TreeSpannerAdvice,
    "prefix-advice": lambda: PrefixAdvice(beta=0),
    "star-broadcast": StarBroadcast,
    "push-gossip": PushGossipWakeUp,
    "greedy-spanner-advice": lambda: SpannerAdvice(k=3, method="greedy"),
}

# Table-1 row -> registry name, for cross-referencing in EXPERIMENTS.md.
TABLE1_ROWS: Dict[str, str] = {
    "theorem3": "dfs-rank",
    "theorem4": "fast-wakeup",
    "corollary1": "fip06-tree-advice",
    "theorem5a": "sqrt-threshold-advice",
    "theorem5b": "child-encoding",
    "theorem6": "spanner-advice",
    "corollary2": "log-spanner-advice",
    "baseline": "flooding",
}


def get_algorithm(name: str) -> WakeUpAlgorithm:
    """Instantiate a registered algorithm by name."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def get_factory(name: str) -> Factory:
    """The registered factory itself (for parameterized instantiation,
    e.g. the parallel executor's ``algo_params`` cell field)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def algorithm_names() -> List[str]:
    return sorted(_REGISTRY)


def register(name: str, factory: Factory) -> None:
    """Register an external algorithm (used by extension experiments)."""
    _REGISTRY[name] = factory
