"""Graph spanners.

Theorem 6 of the paper encodes "the edges of a suitable graph spanner"
as advice: a subgraph H of G such that dist_H(u, v) <= t * dist_G(u, v)
for all u, v (a *t-spanner*).  Flooding over a (2k-1)-spanner with
O(k * n^(1+1/k)) edges wakes every node within a (2k-1) * rho_awk hop
radius, which yields the paper's time/message trade-off.

We implement:

* :func:`baswana_sen_spanner` — the classic randomized clustering
  algorithm of Baswana & Sen producing a (2k-1)-spanner with
  O(k * n^(1+1/k)) edges in expectation;
* :func:`bfs_tree_spanner` — the degenerate "spanning tree" spanner used
  by the BFS-advice schemes;
* :func:`verify_spanner` — exact stretch verification (all-pairs BFS),
  used by tests and the Theorem-6 bench.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import GraphError
from repro.graphs.graph import Graph, Vertex
from repro.graphs.traversal import bfs_distances, bfs_tree, connected_components

RandomLike = random.Random


def bfs_tree_spanner(graph: Graph, root: Optional[Vertex] = None) -> Graph:
    """Spanning forest of BFS trees (one per component).

    For a connected graph this is a D-additive-ish spanner with at most
    2D multiplicative stretch and exactly n - 1 edges.
    """
    spanner = Graph(graph.vertices())
    for comp in connected_components(graph):
        r = root if (root is not None and root in comp) else comp[0]
        parent, _ = bfs_tree(graph, r)
        for v, p in parent.items():
            if p is not None:
                spanner.add_edge_safe(v, p)
    return spanner


def baswana_sen_spanner(
    graph: Graph, k: int, seed: random.Random | int | None = None
) -> Graph:
    """Randomized (2k-1)-spanner of Baswana & Sen (2007).

    Phase 1 runs k - 1 rounds of cluster sampling (each cluster center
    survives with probability n^(-1/k)); unsampled vertices either join
    the nearest sampled neighboring cluster (adding one edge) or add one
    edge to *every* neighboring cluster.  Phase 2 joins each vertex to
    every cluster remaining in its neighborhood.

    Expected size O(k * n^(1+1/k)); stretch exactly 2k - 1.
    """
    if k < 1:
        raise GraphError("spanner parameter k must be >= 1")
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    n = graph.num_vertices
    if n == 0:
        return Graph()
    if k == 1:
        return graph.copy()

    sample_p = n ** (-1.0 / k)
    spanner = Graph(graph.vertices())

    # cluster[v] = center of v's current cluster (or None if discarded).
    cluster: Dict[Vertex, Optional[Vertex]] = {v: v for v in graph.vertices()}
    # Edges still under consideration, as adjacency sets.
    alive: Dict[Vertex, Set[Vertex]] = {
        v: set(graph.neighbors(v)) for v in graph.vertices()
    }

    def discard_edge(u: Vertex, v: Vertex) -> None:
        alive[u].discard(v)
        alive[v].discard(u)

    for _ in range(k - 1):
        # --- sample cluster centers for the next level -----------------
        centers = {c for c in set(cluster.values()) if c is not None}
        sampled = {c for c in centers if rng.random() < sample_p}
        new_cluster: Dict[Vertex, Optional[Vertex]] = {}
        for v in graph.vertices():
            c = cluster[v]
            if c is not None and c in sampled:
                new_cluster[v] = c

        # --- handle vertices not adjacent to any sampled cluster -------
        for v in graph.vertices():
            if v in new_cluster:
                continue
            if cluster[v] is None:
                new_cluster[v] = None
                continue
            # Group v's alive neighbors by their (old) cluster.
            by_cluster: Dict[Vertex, List[Vertex]] = {}
            for u in list(alive[v]):
                cu = cluster.get(u)
                if cu is not None:
                    by_cluster.setdefault(cu, []).append(u)
            sampled_adjacent = [c for c in by_cluster if c in sampled]
            if sampled_adjacent:
                # Join one sampled neighboring cluster via one edge...
                c = min(sampled_adjacent, key=_stable_key)
                u = min(by_cluster[c], key=_stable_key)
                spanner.add_edge_safe(v, u)
                new_cluster[v] = c
                # ...and drop edges into clusters "closer or equal":
                # standard BS drops edges to clusters with smaller weight;
                # in the unweighted case drop edges into every
                # non-sampled neighboring cluster after adding one edge
                # into each (see else-branch behaviour below).
                for c2, nbrs in by_cluster.items():
                    if c2 == c:
                        for u2 in nbrs:
                            discard_edge(v, u2)
            else:
                # No sampled neighboring cluster: add one edge per
                # neighboring cluster, then retire v from clustering.
                for c2, nbrs in by_cluster.items():
                    u = min(nbrs, key=_stable_key)
                    spanner.add_edge_safe(v, u)
                    for u2 in nbrs:
                        discard_edge(v, u2)
                new_cluster[v] = None
        cluster = new_cluster

        # --- remove intra-cluster alive edges ---------------------------
        for v in graph.vertices():
            cv = cluster[v]
            if cv is None:
                continue
            for u in list(alive[v]):
                if cluster.get(u) == cv:
                    discard_edge(v, u)

    # Phase 2: vertex--cluster joining.
    for v in graph.vertices():
        by_cluster: Dict[Vertex, List[Vertex]] = {}
        for u in alive[v]:
            cu = cluster.get(u)
            if cu is not None:
                by_cluster.setdefault(cu, []).append(u)
        for c, nbrs in by_cluster.items():
            u = min(nbrs, key=_stable_key)
            spanner.add_edge_safe(v, u)
            for u2 in nbrs:
                alive[u2].discard(v)
        alive[v] = set()

    return spanner


def _stable_key(v: Vertex) -> Tuple[str, str]:
    """Deterministic tiebreak key for arbitrary hashable vertices."""
    return (type(v).__name__, repr(v))


def greedy_spanner(graph: Graph, k: int) -> Graph:
    """Deterministic greedy (2k-1)-spanner (Althöfer et al. 1993).

    Process edges in a canonical order; keep edge (u, v) iff the
    spanner built so far has dist(u, v) > 2k - 1.  The result has girth
    > 2k, hence at most n^{1+1/k} + n edges, and stretch exactly 2k - 1
    — with no randomness, matching the determinism of the paper's
    Theorem-6 advising scheme.

    Cost is O(m * (n + m)) from the per-edge BFS; fine at bench scale.
    """
    if k < 1:
        raise GraphError("spanner parameter k must be >= 1")
    spanner = Graph(graph.vertices())
    limit = 2 * k - 1
    for u, v in sorted(graph.edges(), key=lambda e: (_stable_key(e[0]), _stable_key(e[1]))):
        if _bounded_distance_exceeds(spanner, u, v, limit):
            spanner.add_edge(u, v)
    return spanner


def _bounded_distance_exceeds(
    graph: Graph, source: Vertex, target: Vertex, limit: int
) -> bool:
    """True iff dist_graph(source, target) > limit (depth-capped BFS)."""
    if source == target:
        return False
    from collections import deque

    dist = {source: 0}
    queue = deque([source])
    while queue:
        x = queue.popleft()
        d = dist[x]
        if d >= limit:
            continue
        for y in graph.neighbors(x):
            if y == target:
                return False
            if y not in dist:
                dist[y] = d + 1
                queue.append(y)
    return True


def verify_spanner(graph: Graph, spanner: Graph, stretch: float) -> bool:
    """Exact check that ``spanner`` is a subgraph t-spanner of ``graph``.

    It suffices to check stretch on the *edges* of G: if every edge
    (u, v) of G satisfies dist_H(u, v) <= t, then every path (and hence
    every distance) is stretched by at most t.
    """
    for u, v in spanner.edges():
        if not graph.has_edge(u, v):
            return False
    # Group edge checks by source to reuse BFS runs.
    for u in graph.vertices():
        nbrs = graph.neighbors(u)
        if not nbrs:
            continue
        dist = bfs_distances(spanner, u)
        for v in nbrs:
            if dist.get(v, float("inf")) > stretch:
                return False
    return True


def spanner_max_degree(spanner: Graph) -> int:
    return spanner.max_degree()
