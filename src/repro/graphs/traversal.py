"""Graph traversal and distance algorithms.

These routines back both the centralized oracles (which are allowed to see
the whole graph, per the advising-scheme model of Sec 1.1) and the test
suite.  They include the paper's *awake distance* (Eq. 1 in Sec 1.2):

    rho_awk(G, A0) = max_u dist_G(A0, u)

which equals the time complexity of plain flooding and lower-bounds the
time complexity of any wake-up algorithm.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.errors import GraphError
from repro.graphs.graph import Graph, Vertex

INF = float("inf")


def bfs_distances(graph: Graph, source: Vertex) -> Dict[Vertex, int]:
    """Hop distances from ``source`` to every reachable vertex."""
    if not graph.has_vertex(source):
        raise GraphError(f"source {source!r} not in graph")
    dist: Dict[Vertex, int] = {source: 0}
    queue: deque = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in graph.neighbors(u):
            if v not in dist:
                dist[v] = du + 1
                queue.append(v)
    return dist


def multi_source_bfs(
    graph: Graph, sources: Iterable[Vertex]
) -> Dict[Vertex, int]:
    """Hop distance from the *set* ``sources`` to every reachable vertex.

    This is the quantity dist_G(A0, u) used in the awake-distance
    definition (Eq. 1).
    """
    dist: Dict[Vertex, int] = {}
    queue: deque = deque()
    for s in sources:
        if not graph.has_vertex(s):
            raise GraphError(f"source {s!r} not in graph")
        if s not in dist:
            dist[s] = 0
            queue.append(s)
    if not dist:
        raise GraphError("multi_source_bfs requires at least one source")
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in graph.neighbors(u):
            if v not in dist:
                dist[v] = du + 1
                queue.append(v)
    return dist


def awake_distance(graph: Graph, awake: Iterable[Vertex]) -> int:
    """The paper's awake distance rho_awk(G, A0) (Sec 1.2, Eq. 1).

    Raises :class:`GraphError` if some vertex is unreachable from the
    awake set (the wake-up problem is then unsolvable).
    """
    dist = multi_source_bfs(graph, awake)
    if len(dist) != graph.num_vertices:
        unreachable = set(graph.vertices()) - set(dist)
        raise GraphError(
            f"{len(unreachable)} vertices unreachable from awake set"
        )
    return max(dist.values(), default=0)


def bfs_tree(
    graph: Graph, root: Vertex
) -> Tuple[Dict[Vertex, Optional[Vertex]], Dict[Vertex, int]]:
    """BFS tree from ``root``.

    Returns ``(parent, depth)`` where ``parent[root] is None``.  Children
    are explored in adjacency (insertion) order so the tree is
    deterministic for a deterministically built graph.
    """
    if not graph.has_vertex(root):
        raise GraphError(f"root {root!r} not in graph")
    parent: Dict[Vertex, Optional[Vertex]] = {root: None}
    depth: Dict[Vertex, int] = {root: 0}
    queue: deque = deque([root])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v not in parent:
                parent[v] = u
                depth[v] = depth[u] + 1
                queue.append(v)
    return parent, depth


def bfs_children(
    parent: Dict[Vertex, Optional[Vertex]]
) -> Dict[Vertex, List[Vertex]]:
    """Invert a parent map into a children map (roots included with
    possibly empty child lists)."""
    children: Dict[Vertex, List[Vertex]] = {v: [] for v in parent}
    for v, p in parent.items():
        if p is not None:
            children[p].append(v)
    return children


def dfs_preorder(graph: Graph, root: Vertex) -> List[Vertex]:
    """Iterative DFS preorder from ``root`` (neighbors in adjacency order)."""
    if not graph.has_vertex(root):
        raise GraphError(f"root {root!r} not in graph")
    order: List[Vertex] = []
    seen = {root}
    stack: List[Vertex] = [root]
    while stack:
        u = stack.pop()
        order.append(u)
        # reversed() keeps the first-inserted neighbor on top of the stack
        for v in reversed(graph.neighbors(u)):
            if v not in seen:
                seen.add(v)
                stack.append(v)
    return order


def connected_components(graph: Graph) -> List[List[Vertex]]:
    """Connected components, each listed in BFS discovery order."""
    seen: set = set()
    components: List[List[Vertex]] = []
    for start in graph.vertices():
        if start in seen:
            continue
        comp: List[Vertex] = []
        queue: deque = deque([start])
        seen.add(start)
        while queue:
            u = queue.popleft()
            comp.append(u)
            for v in graph.neighbors(u):
                if v not in seen:
                    seen.add(v)
                    queue.append(v)
        components.append(comp)
    return components


def is_connected(graph: Graph) -> bool:
    """True iff the graph has at most one connected component."""
    if graph.num_vertices == 0:
        return True
    first = next(iter(graph.vertices()))
    return len(bfs_distances(graph, first)) == graph.num_vertices


def eccentricity(graph: Graph, v: Vertex) -> int:
    """Largest hop distance from ``v``; raises if the graph is disconnected
    as seen from ``v``."""
    dist = bfs_distances(graph, v)
    if len(dist) != graph.num_vertices:
        raise GraphError("eccentricity undefined on disconnected graph")
    return max(dist.values(), default=0)


def diameter(graph: Graph) -> int:
    """Exact diameter via all-sources BFS (O(n·m); fine at bench scale)."""
    if graph.num_vertices == 0:
        return 0
    best = 0
    for v in graph.vertices():
        best = max(best, eccentricity(graph, v))
    return best


def girth(graph: Graph) -> float:
    """Length of the shortest cycle, or ``inf`` for a forest.

    Uses the standard BFS-per-vertex technique: when BFS from root r
    discovers an edge between two already-visited vertices u, v, there is
    a cycle through r of length at most depth(u) + depth(v) + 1.  Running
    this from every root yields the exact girth.
    """
    best = INF
    for root in graph.vertices():
        depth: Dict[Vertex, int] = {root: 0}
        parent: Dict[Vertex, Optional[Vertex]] = {root: None}
        queue: deque = deque([root])
        while queue:
            u = queue.popleft()
            if 2 * depth[u] >= best - 1:
                # No shorter cycle can be found deeper in this BFS.
                break
            for v in graph.neighbors(u):
                if v not in depth:
                    depth[v] = depth[u] + 1
                    parent[v] = u
                    queue.append(v)
                elif parent[u] != v:
                    # Non-tree edge: cycle through root of bounded length.
                    best = min(best, depth[u] + depth[v] + 1)
    return best


def shortest_path(
    graph: Graph, source: Vertex, target: Vertex
) -> Optional[List[Vertex]]:
    """A shortest source→target path as a vertex list, or None if
    unreachable."""
    if not graph.has_vertex(target):
        raise GraphError(f"target {target!r} not in graph")
    parent, _ = bfs_tree(graph, source)
    if target not in parent:
        return None
    path: List[Vertex] = [target]
    while parent[path[-1]] is not None:
        path.append(parent[path[-1]])  # type: ignore[arg-type]
    path.reverse()
    return path


def is_bipartite(graph: Graph) -> bool:
    """True iff the graph admits a proper 2-coloring."""
    color: Dict[Vertex, int] = {}
    for start in graph.vertices():
        if start in color:
            continue
        color[start] = 0
        queue: deque = deque([start])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if v not in color:
                    color[v] = 1 - color[u]
                    queue.append(v)
                elif color[v] == color[u]:
                    return False
    return True


def is_tree(graph: Graph) -> bool:
    """True iff the graph is connected and has exactly n-1 edges."""
    n = graph.num_vertices
    if n == 0:
        return True
    return graph.num_edges == n - 1 and is_connected(graph)
