"""Core undirected-graph data structure.

The simulator and all wake-up algorithms operate on instances of
:class:`Graph`: a simple (no self-loops, no multi-edges) undirected graph
with hashable vertex labels.  The implementation favours predictable
iteration order — vertices and neighbors are reported in insertion order —
because deterministic executions are a hard requirement for reproducible
experiments (see DESIGN.md §6).

The class is intentionally small; graph *algorithms* (BFS, diameter,
girth, ...) live in :mod:`repro.graphs.traversal` and graph *generators*
in :mod:`repro.graphs.generators`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Tuple

from repro.errors import GraphError

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]


class Graph:
    """A simple undirected graph with insertion-ordered adjacency.

    Vertices may be any hashable values.  Edges are unordered pairs of
    distinct vertices.  Parallel edges and self-loops are rejected.

    >>> g = Graph.from_edges([(1, 2), (2, 3)])
    >>> sorted(g.neighbors(2))
    [1, 3]
    >>> g.num_edges
    2
    """

    __slots__ = ("_adj",)

    def __init__(self, vertices: Iterable[Vertex] = ()) -> None:
        self._adj: Dict[Vertex, Dict[Vertex, None]] = {}
        for v in vertices:
            self.add_vertex(v)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, edges: Iterable[Edge], vertices: Iterable[Vertex] = ()
    ) -> "Graph":
        """Build a graph from an edge list (plus optional isolated vertices)."""
        g = cls(vertices)
        for u, v in edges:
            g.add_edge(u, v)
        return g

    def add_vertex(self, v: Vertex) -> None:
        """Add vertex ``v``; a no-op if it is already present."""
        if v not in self._adj:
            self._adj[v] = {}

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the undirected edge ``{u, v}``, creating endpoints as needed.

        Raises :class:`GraphError` on self-loops or duplicate edges.
        """
        if u == v:
            raise GraphError(f"self-loop on vertex {u!r} is not allowed")
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._adj[u]:
            raise GraphError(f"edge ({u!r}, {v!r}) already present")
        self._adj[u][v] = None
        self._adj[v][u] = None

    def add_edge_safe(self, u: Vertex, v: Vertex) -> bool:
        """Like :meth:`add_edge` but returns ``False`` instead of raising on
        a duplicate edge.  Self-loops still raise."""
        if u == v:
            raise GraphError(f"self-loop on vertex {u!r} is not allowed")
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._adj[u]:
            return False
        self._adj[u][v] = None
        self._adj[v][u] = None
        return True

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``{u, v}``; raises if it does not exist."""
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) not present")
        del self._adj[u][v]
        del self._adj[v][u]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def vertices(self) -> Iterator[Vertex]:
        """Iterate vertices in insertion order."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate each edge exactly once, as ``(u, v)`` with ``u`` inserted
        before ``v`` when orderable by insertion position."""
        seen: set = set()
        for u in self._adj:
            for v in self._adj[u]:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    def has_vertex(self, v: Vertex) -> bool:
        return v in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return u in self._adj and v in self._adj[u]

    def neighbors(self, v: Vertex) -> List[Vertex]:
        """Neighbors of ``v`` in insertion order (a fresh list)."""
        try:
            return list(self._adj[v])
        except KeyError:
            raise GraphError(f"vertex {v!r} not in graph") from None

    def degree(self, v: Vertex) -> int:
        try:
            return len(self._adj[v])
        except KeyError:
            raise GraphError(f"vertex {v!r} not in graph") from None

    def max_degree(self) -> int:
        """Maximum degree; 0 for the empty graph."""
        return max((len(n) for n in self._adj.values()), default=0)

    def min_degree(self) -> int:
        """Minimum degree; 0 for the empty graph."""
        return min((len(n) for n in self._adj.values()), default=0)

    def average_degree(self) -> float:
        """Average degree (2m/n); 0.0 for the empty graph."""
        if not self._adj:
            return 0.0
        return 2.0 * self.num_edges / self.num_vertices

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        g = Graph()
        g._adj = {v: dict(nbrs) for v, nbrs in self._adj.items()}
        return g

    def subgraph(self, keep: Iterable[Vertex]) -> "Graph":
        """Induced subgraph on ``keep`` (vertices not present are ignored)."""
        keep_set = {v for v in keep if v in self._adj}
        g = Graph(keep_set)
        for u in keep_set:
            for v in self._adj[u]:
                if v in keep_set and not g.has_edge(u, v):
                    g.add_edge(u, v)
        return g

    def relabeled(self, mapping: Dict[Vertex, Vertex]) -> "Graph":
        """Return a copy with vertices renamed through ``mapping``.

        Every vertex must appear in ``mapping`` and the mapping must be
        injective, otherwise :class:`GraphError` is raised.
        """
        targets = list(mapping.values())
        if len(set(targets)) != len(targets):
            raise GraphError("relabeling map is not injective")
        g = Graph()
        for v in self._adj:
            if v not in mapping:
                raise GraphError(f"vertex {v!r} missing from relabeling map")
            g.add_vertex(mapping[v])
        for u, v in self.edges():
            g.add_edge(mapping[u], mapping[v])
        return g

    # ------------------------------------------------------------------
    # Dunder glue
    # ------------------------------------------------------------------
    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adj)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if set(self._adj) != set(other._adj):
            return False
        return all(
            set(self._adj[v]) == set(other._adj[v]) for v in self._adj
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Graph(n={self.num_vertices}, m={self.num_edges})"
        )
