"""Compiled-topology artifacts: build each workload once, run it everywhere.

PR-3 made the engine inner loop fast enough that *cell setup* became a
dominant sweep cost: every trial of every cell rebuilt the workload
graph, re-derived port assignments, and re-ran the ``awake_distance``
BFS — even though all trials at a given (workload, n) share the
identical topology, and the paper's lower-bound families (GF(p^m)
arithmetic, the D(k, q) high-girth builder, graph spanners) are by far
the most expensive structures we build.

This module is the "compile once, execute many" separation:

* :class:`CompiledTopology` — a flat, validated artifact: CSR-style
  adjacency preserving the builder's exact insertion order (so
  everything seeded downstream — IDs, port shuffles, BFS orders — is
  bit-identical to a fresh build), the awake set, the cached
  ``rho_awk``, and optional *extras* (precomputed spanner edge lists
  for the advice algorithms);
* an **in-process LRU** keyed by :func:`topology_key` — a stable
  blake2b digest of ``(workload kind, params, n, graphs-salt)``, where
  the salt is the graphs-subsystem code digest from
  :mod:`repro.versioning` — so repeated trials at the same n in one
  process reuse one build, and only *graphs-layer* code edits orphan
  stored artifacts;
* :class:`TopologyStore` — the on-disk artifact store next to the cell
  cache: worker processes deserialize a compiled topology instead of
  rebuilding, with write-to-temp + atomic rename and an advisory file
  lock so concurrent workers build each topology exactly once and
  never observe a partially written artifact.

Cache effectiveness is observable: every fetch records one of
``build`` / ``hit_mem`` / ``hit_disk`` into a stats dict, which the
parallel executor aggregates into ``topology.*`` recorder counters and
a ``topology_stats`` telemetry event (rendered by
``repro report --telemetry``).

The cache is a pure speedup, never a semantics change: sweep rows must
stay bit-identical to the rebuild path (enforced by the conformance
tests in ``tests/test_parallel_executor.py``).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import threading
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.graphs.graph import Graph, Vertex
from repro.graphs.traversal import awake_distance
from repro.obs.metrics import get_registry as _get_registry

#: On-disk artifact layout version; bump when the pickle body changes.
STORE_VERSION = 1

#: Default artifact location — a sibling of the cell cache
#: (``results/.cache``), so the two runtime caches live next to each
#: other and are purged independently (see EXPERIMENTS.md).
DEFAULT_TOPOLOGY_DIR = Path("results") / ".topologies"

#: How many compiled topologies the in-process LRU retains.  Topologies
#: are O(n + m) ints plus the materialized graph, so a few dozen is
#: cheap; sweeps touch sizes mostly in order, so even small values hit.
MEMORY_CACHE_SIZE = 32

_STAT_KEYS = ("build", "hit_mem", "hit_disk")


def _default_salt() -> str:
    # The graphs-subsystem code salt (repro.versioning): compiled
    # topologies depend only on workload-builder and compile-layer
    # code, so engine or algorithm edits leave every artifact live.
    # Imported lazily to keep this module import-light.
    from repro.versioning import subsystem_salt

    return subsystem_salt("graphs")


def topology_key(
    workload: Dict[str, Any], n: int, salt: Optional[str] = None
) -> str:
    """Content hash identifying one compiled topology.

    Keyed by the full workload spec (kind + params), the size, and the
    code-version salt, canonically serialized — any differing input
    yields a different key, and a salt bump orphans every old artifact.
    """
    blob = json.dumps(
        {
            "salt": salt if salt is not None else _default_salt(),
            "workload": dict(workload),
            "n": n,
        },
        sort_keys=True,
        separators=(",", ":"),
        default=repr,
    )
    return hashlib.blake2b(blob.encode("utf-8"), digest_size=20).hexdigest()


# ----------------------------------------------------------------------
# The artifact
# ----------------------------------------------------------------------
class CompiledTopology:
    """One workload's topology, compiled to flat arrays.

    ``verts`` lists vertex labels in the builder's insertion order and
    ``indptr``/``indices`` are the CSR adjacency over vertex *indices*,
    with each row in the builder's neighbor insertion order.  Because
    both orders are preserved exactly, a :class:`Graph` materialized
    from the artifact consumes seeded randomness (ID assignment, port
    shuffles) identically to a freshly built one — the property the
    bit-identical-rows contract rests on.

    ``extras`` holds optional precomputed structures that depend only
    on the topology (currently spanner edge lists, as index pairs,
    keyed by a canonical tag); they persist with the artifact so e.g. a
    greedy spanner is built once per topology rather than once per
    trial of every advice cell.
    """

    __slots__ = (
        "key",
        "n",
        "verts",
        "indptr",
        "indices",
        "awake",
        "rho_awk",
        "extras",
        "_graph",
        "_runtime",
        "_store",
    )

    def __init__(
        self,
        key: str,
        verts: List[Vertex],
        indptr: List[int],
        indices: List[int],
        awake: Tuple[int, ...],
        rho_awk: float,
        extras: Optional[Dict[str, Any]] = None,
    ):
        self.key = key
        self.n = len(verts)
        self.verts = verts
        self.indptr = indptr
        self.indices = indices
        self.awake = tuple(awake)
        self.rho_awk = float(rho_awk)
        self.extras: Dict[str, Any] = extras if extras is not None else {}
        self._graph: Optional[Graph] = None
        # Materialized (non-persistable) views derived from extras,
        # e.g. spanner Graph objects; never serialized.
        self._runtime: Dict[str, Any] = {}
        # The store that owns the on-disk artifact (if any); lets
        # lazily computed extras be persisted back.
        self._store: Optional["TopologyStore"] = None

    # -- construction ----------------------------------------------------
    @classmethod
    def compile(
        cls, graph: Graph, awake, key: str = ""
    ) -> "CompiledTopology":
        """Compile a built workload into an artifact.

        Computes and caches ``rho_awk`` (one multi-source BFS — the
        traversal legacy cells repeated per trial), raising the same
        :class:`~repro.errors.GraphError` a fresh build would if some
        vertex is unreachable from the awake set.
        """
        awake = list(awake)
        rho = float(awake_distance(graph, awake))
        verts = list(graph.vertices())
        index = {v: i for i, v in enumerate(verts)}
        indptr = [0]
        indices: List[int] = []
        for v in verts:
            for u in graph.neighbors(v):
                indices.append(index[u])
            indptr.append(len(indices))
        topo = cls(
            key=key,
            verts=verts,
            indptr=indptr,
            indices=indices,
            awake=tuple(index[v] for v in awake),
            rho_awk=rho,
        )
        # Reuse the freshly built graph rather than re-materializing.
        topo._graph = graph
        return topo

    # -- views -----------------------------------------------------------
    def graph(self) -> Graph:
        """The materialized :class:`Graph` (built once, then shared).

        Construction writes the adjacency dicts directly — the artifact
        was validated when compiled (and is digest-checked on load), so
        the per-edge checks of :meth:`Graph.add_edge` are skipped.
        """
        if self._graph is None:
            verts = self.verts
            indptr, indices = self.indptr, self.indices
            adj = {
                v: {
                    verts[j]: None
                    for j in indices[indptr[i] : indptr[i + 1]]
                }
                for i, v in enumerate(verts)
            }
            g = Graph.__new__(Graph)
            g._adj = adj
            self._graph = g
        return self._graph

    def awake_vertices(self) -> List[Vertex]:
        """The awake-set labels, in workload order."""
        return [self.verts[i] for i in self.awake]

    def num_edges(self) -> int:
        return len(self.indices) // 2

    def random_ports(self, rng) -> "Any":
        """Uniformly random port assignment, bit-compatible with
        ``PortAssignment.random(self.graph(), rng)`` but skipping the
        per-vertex permutation and symmetry validation (the artifact is
        already validated) and prebuilding the engines' send tables.

        Consumes ``rng`` in exactly the same sequence as the legacy
        constructor — ``random.shuffle`` depends only on list length —
        so seeded runs stay bit-identical.
        """
        from repro.models.ports import PortAssignment

        graph = self.graph()
        verts = self.verts
        indptr, indices = self.indptr, self.indices
        order: Dict[Vertex, List[Vertex]] = {}
        for i, v in enumerate(verts):
            nbrs = [verts[j] for j in indices[indptr[i] : indptr[i + 1]]]
            rng.shuffle(nbrs)
            order[v] = nbrs
        return PortAssignment.prevalidated(graph, order)

    # -- serialization ---------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "verts": self.verts,
            "indptr": self.indptr,
            "indices": self.indices,
            "awake": self.awake,
            "rho_awk": self.rho_awk,
            "extras": self.extras,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "CompiledTopology":
        return cls(
            key=payload["key"],
            verts=payload["verts"],
            indptr=payload["indptr"],
            indices=payload["indices"],
            awake=tuple(payload["awake"]),
            rho_awk=payload["rho_awk"],
            extras=dict(payload.get("extras", {})),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledTopology(n={self.n}, m={self.num_edges()}, "
            f"key={self.key[:12]}...)"
        )


def build_topology(
    workload: Dict[str, Any], n: int, key: str = ""
) -> CompiledTopology:
    """Resolve a workload spec and compile its topology at size n."""
    # Imported lazily: sweeps -> parallel -> this module at import time.
    from repro.experiments.sweeps import build_workload

    graph, awake = build_workload(dict(workload))(n)
    return CompiledTopology.compile(graph, awake, key=key)


# ----------------------------------------------------------------------
# In-process LRU
# ----------------------------------------------------------------------
_MEM_LOCK = threading.Lock()
_MEM_CACHE: "OrderedDict[str, CompiledTopology]" = OrderedDict()
# id(materialized graph) -> its topology, for graph-keyed lookups
# (cached_spanner).  Entries exist exactly while the topology is in the
# LRU; the LRU's strong reference keeps the graph alive, so ids cannot
# be recycled while mapped.
_TOPO_BY_GRAPH: Dict[int, CompiledTopology] = {}


def _mem_get(key: str) -> Optional[CompiledTopology]:
    with _MEM_LOCK:
        topo = _MEM_CACHE.get(key)
        if topo is not None:
            _MEM_CACHE.move_to_end(key)
        return topo


def _mem_put(topo: CompiledTopology) -> None:
    with _MEM_LOCK:
        _MEM_CACHE[topo.key] = topo
        _MEM_CACHE.move_to_end(topo.key)
        _TOPO_BY_GRAPH[id(topo.graph())] = topo
        while len(_MEM_CACHE) > MEMORY_CACHE_SIZE:
            _, evicted = _MEM_CACHE.popitem(last=False)
            _TOPO_BY_GRAPH.pop(id(evicted._graph), None)


def clear_memory_cache() -> None:
    """Drop every in-process compiled topology (tests / benchmarks)."""
    with _MEM_LOCK:
        _MEM_CACHE.clear()
        _TOPO_BY_GRAPH.clear()


def compiled_for_graph(graph: Graph) -> Optional[CompiledTopology]:
    """The LRU-managed topology whose materialized graph is ``graph``.

    Returns None for any graph that is not (or is no longer) the
    materialized view of a cached artifact — callers then fall back to
    reading the graph directly.  This is the graph-keyed lookup both
    :func:`cached_spanner` and the bulk engine's CSR reuse rest on.
    """
    with _MEM_LOCK:
        topo = _TOPO_BY_GRAPH.get(id(graph))
    if topo is None or topo._graph is not graph:
        return None
    return topo


def compiled_topology(
    workload: Dict[str, Any],
    n: int,
    store: Optional["TopologyStore"] = None,
    stats: Optional[Dict[str, int]] = None,
) -> CompiledTopology:
    """Fetch-or-build through every cache layer.

    Order: in-process LRU, then the on-disk ``store`` (when given),
    then a fresh build (written back to the store under its file
    lock).  ``stats`` (when given) receives ``build`` / ``hit_mem`` /
    ``hit_disk`` increments for telemetry.
    """
    if store is not None:
        return store.fetch_or_build(workload, n, stats=stats)
    key = topology_key(workload, n)
    topo = _mem_get(key)
    if topo is not None:
        _bump(stats, "hit_mem")
        return topo
    topo = build_topology(workload, n, key=key)
    _bump(stats, "build")
    _mem_put(topo)
    return topo


def _bump(stats: Optional[Dict[str, int]], what: str) -> None:
    """Single choke point for topology-fetch accounting: every build /
    hit_mem / hit_disk resolution passes through here, so the per-dict
    telemetry stats and the metrics counter agree exactly by
    construction (no registry cost when metrics are disabled — the
    null registry's counter() is a no-op)."""
    _get_registry().counter("repro_topology_fetch_total", tier=what).inc()
    if stats is not None:
        stats[what] = stats.get(what, 0) + 1


# ----------------------------------------------------------------------
# Topology-derived spanner memo
# ----------------------------------------------------------------------
def cached_spanner(
    graph: Graph,
    kind: str,
    params: Dict[str, Any],
    builder: Callable[[Graph], Graph],
) -> Graph:
    """Per-topology spanner memo for the advice oracles.

    When ``graph`` is the materialized graph of an LRU-managed compiled
    topology, the spanner is built at most once per topology: first
    from the persisted edge list in the artifact's extras (written back
    to the store when first computed), else by calling ``builder`` —
    and the materialized result is reused across trials in-process.
    For any other graph this is exactly ``builder(graph)``; the memo
    never changes what a spanner *is*, only how often it is built
    (spanner consumers are order-insensitive — they query
    ``has_edge`` — so a spanner rebuilt from its edge list is
    equivalent).
    """
    topo = compiled_for_graph(graph)
    if topo is None:
        return builder(graph)
    tag = "spanner:" + json.dumps(
        {"kind": kind, **params}, sort_keys=True, separators=(",", ":"),
        default=repr,
    )
    spanner = topo._runtime.get(tag)
    if spanner is not None:
        return spanner
    edge_idx = topo.extras.get(tag)
    if edge_idx is not None:
        verts = topo.verts
        spanner = Graph(verts)
        for i, j in edge_idx:
            spanner.add_edge_safe(verts[i], verts[j])
    else:
        spanner = builder(graph)
        index = {v: i for i, v in enumerate(topo.verts)}
        topo.extras[tag] = [
            (index[u], index[v]) for u, v in spanner.edges()
        ]
        if topo._store is not None:
            topo._store.persist_extras(topo)
    topo._runtime[tag] = spanner
    return spanner


# ----------------------------------------------------------------------
# The on-disk store
# ----------------------------------------------------------------------
class TopologyStore:
    """Content-addressed on-disk store of compiled topologies.

    Artifacts are pickled with a digest over the body, written to a
    temp file and atomically renamed, so a concurrent reader sees
    either nothing or a complete artifact — never a torn write.  Builds
    take an advisory ``flock`` on a per-key lock file and re-check the
    store after acquiring it, so N workers racing on one topology
    perform exactly one build (the rest load the winner's artifact).

    A mismatched ``salt`` (the graphs-subsystem code salt), a
    mismatched key, or any unpickling/digest failure is treated as a
    miss: the topology is rebuilt and the artifact rewritten.
    """

    def __init__(
        self,
        root: Union[str, Path] = DEFAULT_TOPOLOGY_DIR,
        salt: Optional[str] = None,
    ):
        self.root = Path(root)
        self.salt = salt if salt is not None else _default_salt()
        self.stats: Dict[str, int] = {k: 0 for k in _STAT_KEYS}

    # -- layout ----------------------------------------------------------
    def path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.topo"

    def _lock_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.lock"

    @contextmanager
    def _locked(self, key: str):
        lock_path = self._lock_path(key)
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-POSIX fallback
            yield
            return
        with open(lock_path, "w") as fh:
            fcntl.flock(fh, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh, fcntl.LOCK_UN)

    # -- fetch / build ---------------------------------------------------
    def fetch_or_build(
        self,
        workload: Dict[str, Any],
        n: int,
        stats: Optional[Dict[str, int]] = None,
    ) -> CompiledTopology:
        key = topology_key(workload, n, self.salt)
        topo = _mem_get(key)
        if topo is not None:
            self._count("hit_mem", stats)
            return topo
        topo = self._load(key)
        if topo is None:
            with self._locked(key):
                # A racing worker may have built while we waited.
                topo = self._load(key)
                if topo is None:
                    topo = build_topology(workload, n, key=key)
                    self._write(topo)
                    self._count("build", stats)
                else:
                    self._count("hit_disk", stats)
        else:
            self._count("hit_disk", stats)
        topo._store = self
        _mem_put(topo)
        return topo

    def _count(self, what: str, stats: Optional[Dict[str, int]]) -> None:
        self.stats[what] = self.stats.get(what, 0) + 1
        _bump(stats, what)

    # -- disk I/O --------------------------------------------------------
    def _load(self, key: str) -> Optional[CompiledTopology]:
        try:
            raw = self.path(key).read_bytes()
        except OSError:
            return None
        try:
            envelope = pickle.loads(raw)
            if not isinstance(envelope, dict):
                return None
            if (
                envelope.get("magic") != "repro-topology"
                or envelope.get("version") != STORE_VERSION
                or envelope.get("salt") != self.salt
                or envelope.get("key") != key
            ):
                return None
            body = envelope["body"]
            if hashlib.blake2b(body).hexdigest() != envelope.get("digest"):
                return None
            return CompiledTopology.from_payload(pickle.loads(body))
        except Exception:
            # Torn, truncated, or corrupted artifact: a miss, not an
            # error — the caller rebuilds and rewrites.
            return None

    def _write(self, topo: CompiledTopology) -> None:
        body = pickle.dumps(topo.to_payload(), protocol=4)
        envelope = pickle.dumps(
            {
                "magic": "repro-topology",
                "version": STORE_VERSION,
                "salt": self.salt,
                "key": topo.key,
                "digest": hashlib.blake2b(body).hexdigest(),
                "body": body,
            },
            protocol=4,
        )
        path = self.path(topo.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_bytes(envelope)
        tmp.replace(path)

    def persist_extras(self, topo: CompiledTopology) -> None:
        """Rewrite an artifact after lazily computing extras (e.g. a
        spanner), under the key's file lock; best-effort (an unwritable
        store never fails the run — the extra is simply recomputed
        next time)."""
        try:
            with self._locked(topo.key):
                self._write(topo)
        except OSError:  # pragma: no cover - store on read-only media
            pass

    # -- maintenance -----------------------------------------------------
    def iter_entries(self):
        """Yield ``(path, envelope-or-None)`` for every stored
        artifact; ``None`` marks an unreadable/torn file.  The envelope
        is the outer dict only (salt, key, digest) — bodies are not
        unpickled, so walking a large store is cheap."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.rglob("*.topo")):
            try:
                envelope = pickle.loads(path.read_bytes())
                if (
                    not isinstance(envelope, dict)
                    or envelope.get("magic") != "repro-topology"
                ):
                    envelope = None
            except Exception:
                envelope = None
            yield path, envelope

    def report(self) -> Dict[str, int]:
        """Live/stale artifact counts against the current graphs salt
        (the ``repro cache info`` salt report)."""
        live = stale = 0
        for _path, envelope in self.iter_entries():
            if (
                envelope is not None
                and envelope.get("version") == STORE_VERSION
                and envelope.get("salt") == self.salt
            ):
                live += 1
            else:
                stale += 1
        return {"live": live, "stale": stale}

    def purge(self, stale_only: bool = False) -> int:
        """Delete stored artifacts; returns the number removed.

        ``stale_only`` keeps artifacts whose salt matches the current
        graphs-subsystem salt and removes the rest (superseded salts,
        old layout versions, torn files)."""
        removed = 0
        if self.root.is_dir():
            for path, envelope in self.iter_entries():
                if stale_only and (
                    envelope is not None
                    and envelope.get("version") == STORE_VERSION
                    and envelope.get("salt") == self.salt
                ):
                    continue
                path.unlink()
                removed += 1
            if not stale_only:
                for entry in self.root.rglob("*.lock"):
                    entry.unlink()
        return removed

    def artifact_count(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.rglob("*.topo"))

    def size_bytes(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(p.stat().st_size for p in self.root.rglob("*.topo"))
