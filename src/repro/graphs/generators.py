"""Deterministic and randomized graph generators.

All randomized generators take an explicit :class:`random.Random` (or an
integer seed) so experiments are reproducible.  Vertices are labeled
``0..n-1`` unless documented otherwise; the simulator assigns node *IDs*
separately (see :mod:`repro.models.knowledge`), so vertex labels are pure
topology handles.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.traversal import is_connected

RandomLike = Union[random.Random, int, None]


def _rng(seed: RandomLike) -> random.Random:
    """Normalize a seed-or-Random argument into a Random instance."""
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


# ----------------------------------------------------------------------
# Deterministic families
# ----------------------------------------------------------------------
def path_graph(n: int) -> Graph:
    """Path 0-1-...-(n-1); the extreme-diameter workload."""
    if n < 0:
        raise GraphError("n must be nonnegative")
    g = Graph(range(n))
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


def cycle_graph(n: int) -> Graph:
    """Cycle on n >= 3 vertices."""
    if n < 3:
        raise GraphError("cycle requires n >= 3")
    g = path_graph(n)
    g.add_edge(n - 1, 0)
    return g


def star_graph(n: int) -> Graph:
    """Star with center 0 and leaves 1..n-1 (n total vertices)."""
    if n < 1:
        raise GraphError("star requires n >= 1")
    g = Graph(range(n))
    for i in range(1, n):
        g.add_edge(0, i)
    return g


def complete_graph(n: int) -> Graph:
    """K_n."""
    if n < 0:
        raise GraphError("n must be nonnegative")
    g = Graph(range(n))
    for i in range(n):
        for j in range(i + 1, n):
            g.add_edge(i, j)
    return g


def complete_bipartite(a: int, b: int) -> Graph:
    """K_{a,b}: left side 0..a-1, right side a..a+b-1.

    This is the U-V core of the KT0 lower-bound class 𝒢 (Sec 2).
    """
    if a < 0 or b < 0:
        raise GraphError("sides must be nonnegative")
    g = Graph(range(a + b))
    for i in range(a):
        for j in range(a, a + b):
            g.add_edge(i, j)
    return g


def grid_graph(rows: int, cols: int) -> Graph:
    """rows x cols grid; vertex (r, c) is labeled r * cols + c."""
    if rows < 1 or cols < 1:
        raise GraphError("grid requires positive dimensions")
    g = Graph(range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                g.add_edge(v, v + 1)
            if r + 1 < rows:
                g.add_edge(v, v + cols)
    return g


def binary_tree(depth: int) -> Graph:
    """Complete binary tree of the given depth (root 0, 2^(d+1)-1 nodes)."""
    if depth < 0:
        raise GraphError("depth must be nonnegative")
    n = 2 ** (depth + 1) - 1
    g = Graph(range(n))
    for v in range(1, n):
        g.add_edge(v, (v - 1) // 2)
    return g


def hypercube_graph(dim: int) -> Graph:
    """The dim-dimensional hypercube: 2^dim vertices, vertex i adjacent
    to i ^ (1 << b) for each bit b.  A log-diameter regular expander —
    the friendly regime for push gossip and FastWakeUp."""
    if dim < 0:
        raise GraphError("dimension must be nonnegative")
    n = 1 << dim
    g = Graph(range(n))
    for v in range(n):
        for b in range(dim):
            u = v ^ (1 << b)
            if u > v:
                g.add_edge(v, u)
    return g


def torus_graph(rows: int, cols: int) -> Graph:
    """rows x cols torus (grid with wraparound): 4-regular, diameter
    (rows + cols) / 2 — a constant-degree workload with tunable
    awake distance."""
    if rows < 3 or cols < 3:
        raise GraphError("torus requires both dimensions >= 3")
    g = Graph(range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            g.add_edge_safe(v, r * cols + (c + 1) % cols)
            g.add_edge_safe(v, ((r + 1) % rows) * cols + c)
    return g


def barbell_graph(clique: int, bridge: int) -> Graph:
    """Two K_clique cliques joined by a path of ``bridge`` extra vertices.

    A classic high-awake-distance workload: waking one clique leaves the
    other rho_awk = bridge + 1 hops away.
    """
    if clique < 1:
        raise GraphError("clique size must be >= 1")
    if bridge < 0:
        raise GraphError("bridge length must be >= 0")
    g = Graph()
    left = list(range(clique))
    right = list(range(clique + bridge, 2 * clique + bridge))
    mid = list(range(clique, clique + bridge))
    for block in (left, right):
        for i, u in enumerate(block):
            g.add_vertex(u)
            for v in block[i + 1:]:
                g.add_edge_safe(u, v)
    chain = [left[-1]] + mid + [right[0]]
    for u, v in zip(chain, chain[1:]):
        g.add_edge_safe(u, v)
    return g


def lollipop_graph(clique: int, tail: int) -> Graph:
    """K_clique with a path of ``tail`` vertices hanging off vertex 0.

    Footnote 3 of the paper uses exactly this shape (complete graph plus
    one pendant vertex) to show that push-only gossip takes Omega(n) time.
    """
    if clique < 1:
        raise GraphError("clique size must be >= 1")
    if tail < 0:
        raise GraphError("tail length must be >= 0")
    g = complete_graph(clique)
    prev = 0
    for i in range(tail):
        v = clique + i
        g.add_vertex(v)
        g.add_edge(prev, v)
        prev = v
    return g


def caterpillar_graph(spine: int, legs_per_vertex: int) -> Graph:
    """A path of ``spine`` vertices, each with ``legs_per_vertex`` pendant
    leaves; stresses schemes whose advice scales with tree degree."""
    if spine < 1:
        raise GraphError("spine must be >= 1")
    if legs_per_vertex < 0:
        raise GraphError("legs must be >= 0")
    g = path_graph(spine)
    nxt = spine
    for s in range(spine):
        for _ in range(legs_per_vertex):
            g.add_vertex(nxt)
            g.add_edge(s, nxt)
            nxt += 1
    return g


# ----------------------------------------------------------------------
# Randomized families
# ----------------------------------------------------------------------
def random_tree(n: int, seed: RandomLike = None) -> Graph:
    """Uniformly random labeled tree via a random Prüfer sequence."""
    if n < 1:
        raise GraphError("tree requires n >= 1")
    if n == 1:
        return Graph([0])
    if n == 2:
        return Graph.from_edges([(0, 1)])
    rng = _rng(seed)
    prufer = [rng.randrange(n) for _ in range(n - 2)]
    return tree_from_prufer(prufer)


def tree_from_prufer(prufer: Sequence[int]) -> Graph:
    """Decode a Prüfer sequence into the unique labeled tree on
    len(prufer) + 2 vertices."""
    n = len(prufer) + 2
    degree = [1] * n
    for x in prufer:
        if not 0 <= x < n:
            raise GraphError("Prüfer entry out of range")
        degree[x] += 1
    g = Graph(range(n))
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    for x in prufer:
        leaf = heapq.heappop(leaves)
        g.add_edge(leaf, x)
        degree[x] -= 1
        if degree[x] == 1:
            heapq.heappush(leaves, x)
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    g.add_edge(u, v)
    return g


def erdos_renyi(
    n: int,
    p: float,
    seed: RandomLike = None,
    require_connected: bool = False,
    max_attempts: int = 100,
) -> Graph:
    """G(n, p) random graph.

    With ``require_connected=True`` the generator resamples until the
    graph is connected (raising :class:`GraphError` after
    ``max_attempts`` failures), which is how benches obtain connected
    sparse workloads.
    """
    if not 0.0 <= p <= 1.0:
        raise GraphError("p must be in [0, 1]")
    if n < 0:
        raise GraphError("n must be nonnegative")
    rng = _rng(seed)
    for _ in range(max_attempts):
        g = Graph(range(n))
        for i in range(n):
            for j in range(i + 1, n):
                if rng.random() < p:
                    g.add_edge(i, j)
        if not require_connected or is_connected(g):
            return g
    raise GraphError(
        f"could not sample a connected G({n},{p}) in {max_attempts} tries"
    )


def connected_erdos_renyi(n: int, p: float, seed: RandomLike = None) -> Graph:
    """G(n, p) conditioned on connectivity by overlaying a random tree.

    Unlike rejection sampling this always succeeds, at the cost of a
    slight bias toward tree edges; ideal for benches that just need
    "connected sparse graph of ~pn²/2 edges".
    """
    rng = _rng(seed)
    g = random_tree(n, rng) if n >= 1 else Graph()
    for i in range(n):
        for j in range(i + 1, n):
            if not g.has_edge(i, j) and rng.random() < p:
                g.add_edge(i, j)
    return g


def random_regular(
    n: int, d: int, seed: RandomLike = None, max_attempts: int = 200
) -> Graph:
    """Random d-regular graph via the pairing/configuration model with
    rejection of loops and multi-edges.

    Requires n*d even and d < n.
    """
    if d < 0 or n < 0:
        raise GraphError("n and d must be nonnegative")
    if d >= n and not (n == 0 and d == 0):
        raise GraphError("d must be < n")
    if (n * d) % 2 != 0:
        raise GraphError("n * d must be even")
    rng = _rng(seed)
    if d == 0:
        return Graph(range(n))
    if d == n - 1:
        return complete_graph(n)
    if d > (n - 1) / 2:
        # Dense regimes: sample the sparse complement instead (the
        # pairing model's rejection rate explodes as d approaches n).
        comp = random_regular(n, n - 1 - d, seed=rng, max_attempts=max_attempts)
        g = Graph(range(n))
        for i in range(n):
            for j in range(i + 1, n):
                if not comp.has_edge(i, j):
                    g.add_edge(i, j)
        return g
    # Steger–Wormald-style incremental pairing: draw random stub pairs,
    # keep only legal ones (no loop, no duplicate edge); when random
    # draws stall, scan for any remaining legal pair; restart if the
    # partial pairing is truly stuck.  Far more reliable than plain
    # rejection of whole pairings.
    for _ in range(max_attempts):
        g = Graph(range(n))
        stubs = [v for v in range(n) for _ in range(d)]
        stuck = False
        while stubs and not stuck:
            paired = False
            for _try in range(10 * len(stubs)):
                i, j = rng.randrange(len(stubs)), rng.randrange(len(stubs))
                if i == j:
                    continue
                u, v = stubs[i], stubs[j]
                if u == v or g.has_edge(u, v):
                    continue
                for idx in sorted((i, j), reverse=True):
                    stubs[idx] = stubs[-1]
                    stubs.pop()
                g.add_edge(u, v)
                paired = True
                break
            if not paired:
                # Exhaustive legality scan before declaring this attempt
                # dead.
                found = None
                for a in range(len(stubs)):
                    for b in range(a + 1, len(stubs)):
                        u, v = stubs[a], stubs[b]
                        if u != v and not g.has_edge(u, v):
                            found = (a, b)
                            break
                    if found:
                        break
                if found is None:
                    stuck = True
                else:
                    a, b = found
                    u, v = stubs[a], stubs[b]
                    for idx in sorted((a, b), reverse=True):
                        stubs[idx] = stubs[-1]
                        stubs.pop()
                    g.add_edge(u, v)
        if not stubs:
            return g
    raise GraphError(
        f"could not sample a simple {d}-regular graph on {n} vertices"
    )


def random_bipartite_regular(
    n_side: int, d: int, seed: RandomLike = None, max_attempts: int = 200
) -> Graph:
    """Random d-regular bipartite graph on sides {0..n-1} and {n..2n-1}.

    Sampled as the union of d random perfect matchings, rejecting
    collisions.  Used as a fallback core for 𝒢ₖ when no suitable D(k, q)
    instance exists at the requested size (the fallback has no girth
    guarantee, which callers must account for).
    """
    if d > n_side:
        raise GraphError("degree cannot exceed side size")
    rng = _rng(seed)
    for _ in range(max_attempts):
        g = Graph(range(2 * n_side))
        ok = True
        for _ in range(d):
            perm = list(range(n_side))
            rng.shuffle(perm)
            for left, right in enumerate(perm):
                if g.has_edge(left, n_side + right):
                    ok = False
                    break
                g.add_edge(left, n_side + right)
            if not ok:
                break
        if ok:
            return g
    raise GraphError("could not sample a simple regular bipartite graph")


def random_geometric(
    n: int,
    radius: float,
    seed: RandomLike = None,
    require_connected: bool = True,
    max_attempts: int = 50,
) -> Graph:
    """Random geometric graph: n points uniform in the unit square,
    edges between pairs at Euclidean distance <= radius.

    The canonical model of the Wake-on-Wireless-LAN setting the paper's
    introduction cites: radios hear only nearby radios.  With
    ``require_connected`` (default) the point set is resampled until
    the graph is connected; radius ~ sqrt(2 ln n / n) is the
    connectivity threshold.
    """
    if n < 1:
        raise GraphError("geometric graph requires n >= 1")
    if radius <= 0:
        raise GraphError("radius must be positive")
    rng = _rng(seed)
    for _ in range(max_attempts):
        points = [(rng.random(), rng.random()) for _ in range(n)]
        g = Graph(range(n))
        r2 = radius * radius
        for i in range(n):
            xi, yi = points[i]
            for j in range(i + 1, n):
                xj, yj = points[j]
                if (xi - xj) ** 2 + (yi - yj) ** 2 <= r2:
                    g.add_edge(i, j)
        if not require_connected or is_connected(g):
            return g
    raise GraphError(
        f"could not sample a connected geometric graph "
        f"(n={n}, radius={radius}) in {max_attempts} tries"
    )


def attach_pendants(
    graph: Graph, hosts: Sequence, start_label: Optional[int] = None
) -> Tuple[Graph, List[Tuple]]:
    """Attach one new degree-1 pendant vertex to each host vertex.

    Returns ``(new_graph, matching)`` where matching lists the
    ``(host, pendant)`` pairs.  This is the V–W perfect-matching step of
    both lower-bound classes 𝒢 and 𝒢ₖ (Sec 2).
    """
    g = graph.copy()
    if start_label is None:
        numeric = [v for v in graph.vertices() if isinstance(v, int)]
        start_label = (max(numeric) + 1) if numeric else 0
    matching: List[Tuple] = []
    nxt = start_label
    for h in hosts:
        if not g.has_vertex(h):
            raise GraphError(f"host {h!r} not in graph")
        while g.has_vertex(nxt):
            nxt += 1
        g.add_vertex(nxt)
        g.add_edge(h, nxt)
        matching.append((h, nxt))
        nxt += 1
    return g, matching
