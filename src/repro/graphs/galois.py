"""Finite-field arithmetic GF(p^m), built from scratch.

The Lazebnik–Ustimenko high-girth graphs D(k, q) (used by the paper's
KT1 lower-bound class 𝒢ₖ, Sec 2.2) are defined over an arbitrary
finite field GF(q) with q a prime power.  This module provides exactly
that substrate:

* ``GF(p)`` — prime fields via modular arithmetic;
* ``GF(p^m)`` — extension fields as polynomials over GF(p) modulo a
  monic irreducible polynomial found by exhaustive search (fields here
  are tiny: q is the graph degree, so q <= a few dozen).

Elements are represented canonically as integers in ``range(q)``: the
integer ``a_0 + a_1*p + ... + a_{m-1}*p^{m-1}`` encodes the polynomial
``a_0 + a_1 x + ... + a_{m-1} x^{m-1}``.  This makes elements directly
usable as dict keys and graph-vertex coordinate entries.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Sequence, Tuple

from repro.errors import FieldError


@lru_cache(maxsize=None)
def is_prime(n: int) -> bool:
    """Deterministic primality check by trial division (fields are tiny)."""
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


@lru_cache(maxsize=None)
def factor_prime_power(q: int) -> Tuple[int, int]:
    """Write q = p^m for prime p, or raise :class:`FieldError`.

    The factorization is memoized; note ``lru_cache`` does not cache
    raised exceptions, so callers probing *non*-prime-powers repeatedly
    should go through :func:`repro.graphs.highgirth.is_prime_power`
    (which memoizes the boolean answer itself)."""
    if q < 2:
        raise FieldError(f"{q} is not a prime power")
    for p in range(2, q + 1):
        if not is_prime(p):
            continue
        if q % p != 0:
            continue
        m = 0
        rest = q
        while rest % p == 0:
            rest //= p
            m += 1
        if rest == 1:
            return p, m
        raise FieldError(f"{q} is not a prime power")
    raise FieldError(f"{q} is not a prime power")


def _poly_trim(poly: List[int]) -> List[int]:
    """Drop trailing zero coefficients."""
    while poly and poly[-1] == 0:
        poly.pop()
    return poly


def _poly_mod(num: List[int], den: Sequence[int], p: int) -> List[int]:
    """Remainder of polynomial division over GF(p); ``den`` must be monic."""
    num = list(num)
    dden = len(den) - 1
    while len(num) - 1 >= dden and num:
        shift = len(num) - 1 - dden
        coef = num[-1]
        for i, d in enumerate(den):
            num[shift + i] = (num[shift + i] - coef * d) % p
        _poly_trim(num)
    return num


def _poly_mul(a: Sequence[int], b: Sequence[int], p: int) -> List[int]:
    """Product of polynomials over GF(p)."""
    if not a or not b:
        return []
    out = [0] * (len(a) + len(b) - 1)
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            out[i + j] = (out[i + j] + ai * bj) % p
    return _poly_trim(out)


def find_irreducible(p: int, m: int) -> List[int]:
    """Find a monic irreducible polynomial of degree m over GF(p).

    Irreducibility is checked by verifying the polynomial has no root
    and no monic factor of degree 2..m//2 (exhaustive; fine for the tiny
    fields used here).  Returned as a coefficient list (low degree
    first) of length m+1 with leading coefficient 1.  The search is
    memoized per (p, m); the returned list is a fresh copy, so callers
    may mutate it freely.
    """
    return list(_find_irreducible(p, m))


@lru_cache(maxsize=None)
def _find_irreducible(p: int, m: int) -> Tuple[int, ...]:
    if m == 1:
        return (0, 1)  # x itself (any monic degree-1 poly is irreducible)

    def candidates():
        # Iterate monic degree-m polynomials by the integer encoding of
        # their lower coefficients.
        for code in range(p**m):
            coeffs = []
            c = code
            for _ in range(m):
                coeffs.append(c % p)
                c //= p
            yield coeffs + [1]

    def divides(d: Sequence[int], f: Sequence[int]) -> bool:
        return not _poly_mod(list(f), d, p)

    def monic_polys(deg: int):
        for code in range(p**deg):
            coeffs = []
            c = code
            for _ in range(deg):
                coeffs.append(c % p)
                c //= p
            yield coeffs + [1]

    for f in candidates():
        if f[0] == 0:
            continue  # divisible by x
        # Root check (degree-1 factor check).
        if any(_poly_eval(f, a, p) == 0 for a in range(p)):
            continue
        reducible = False
        for deg in range(2, m // 2 + 1):
            for d in monic_polys(deg):
                if divides(d, f):
                    reducible = True
                    break
            if reducible:
                break
        if not reducible:
            return tuple(f)
    raise FieldError(f"no irreducible polynomial found for GF({p}^{m})")


def _poly_eval(poly: Sequence[int], x: int, p: int) -> int:
    acc = 0
    for c in reversed(poly):
        acc = (acc * x + c) % p
    return acc


class GF:
    """The finite field GF(q) for a prime power q.

    Elements are integers in ``range(q)`` under the canonical polynomial
    encoding described in the module docstring.  For prime q the
    encoding coincides with ordinary integers mod q.

    >>> f = GF(4)
    >>> f.mul(2, 2) in range(4)
    True
    >>> all(f.mul(a, f.inv(a)) == f.one for a in range(1, 4))
    True
    """

    def __init__(self, q: int):
        self.q = q
        self.p, self.m = factor_prime_power(q)
        self.zero = 0
        self.one = 1
        if self.m > 1:
            self._modulus = find_irreducible(self.p, self.m)
            self._mul_table = self._build_mul_table()
        else:
            self._modulus = None
            self._mul_table = None
        self._inv_table = self._build_inv_table()

    # -- encoding helpers ------------------------------------------------
    def _decode(self, a: int) -> List[int]:
        coeffs = []
        for _ in range(self.m):
            coeffs.append(a % self.p)
            a //= self.p
        return _poly_trim(coeffs)

    def _encode(self, poly: Sequence[int]) -> int:
        acc = 0
        for c in reversed(poly):
            acc = acc * self.p + c
        return acc

    def _check(self, a: int) -> None:
        if not 0 <= a < self.q:
            raise FieldError(f"{a} is not an element of GF({self.q})")

    # -- table construction ----------------------------------------------
    def _build_mul_table(self) -> List[List[int]]:
        table = [[0] * self.q for _ in range(self.q)]
        for a in range(self.q):
            pa = self._decode(a)
            for b in range(a, self.q):
                pb = self._decode(b)
                prod = _poly_mod(_poly_mul(pa, pb, self.p), self._modulus, self.p)
                val = self._encode(prod)
                table[a][b] = val
                table[b][a] = val
        return table

    def _build_inv_table(self) -> List[int]:
        inv = [0] * self.q
        for a in range(1, self.q):
            for b in range(1, self.q):
                if self.mul(a, b) == 1:
                    inv[a] = b
                    break
            else:
                raise FieldError(
                    f"element {a} has no inverse: GF({self.q}) table broken"
                )
        return inv

    # -- arithmetic --------------------------------------------------------
    def add(self, a: int, b: int) -> int:
        """Field addition."""
        self._check(a)
        self._check(b)
        if self.m == 1:
            return (a + b) % self.p
        # Coefficient-wise addition mod p.
        out = 0
        mult = 1
        for _ in range(self.m):
            out += ((a % self.p + b % self.p) % self.p) * mult
            a //= self.p
            b //= self.p
            mult *= self.p
        return out

    def neg(self, a: int) -> int:
        """Additive inverse."""
        self._check(a)
        if self.m == 1:
            return (-a) % self.p
        out = 0
        mult = 1
        for _ in range(self.m):
            out += ((-(a % self.p)) % self.p) * mult
            a //= self.p
            mult *= self.p
        return out

    def sub(self, a: int, b: int) -> int:
        """Field subtraction."""
        return self.add(a, self.neg(b))

    def mul(self, a: int, b: int) -> int:
        """Field multiplication."""
        self._check(a)
        self._check(b)
        if self.m == 1:
            return (a * b) % self.p
        return self._mul_table[a][b]

    def inv(self, a: int) -> int:
        """Multiplicative inverse of a nonzero element."""
        self._check(a)
        if a == 0:
            raise FieldError("zero has no multiplicative inverse")
        if self.m == 1:
            return pow(a, self.p - 2, self.p)
        return self._inv_table[a]

    def div(self, a: int, b: int) -> int:
        """Field division by a nonzero element."""
        return self.mul(a, self.inv(b))

    def pow(self, a: int, e: int) -> int:
        """Exponentiation by squaring (negative e uses the inverse)."""
        self._check(a)
        if e < 0:
            a = self.inv(a)
            e = -e
        out = self.one
        base = a
        while e:
            if e & 1:
                out = self.mul(out, base)
            base = self.mul(base, base)
            e >>= 1
        return out

    def elements(self) -> range:
        """All field elements, 0..q-1."""
        return range(self.q)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GF({self.q})"


@lru_cache(maxsize=None)
def get_field(q: int) -> GF:
    """The memoized GF(q) instance.

    Building GF(p^m) runs the irreducible-polynomial search plus O(q^2)
    table construction; fields are immutable after ``__init__``, so
    every D(k, q) build (and anything else needing GF(q)) can share one
    instance.  Raises :class:`FieldError` for non-prime-powers exactly
    like ``GF(q)`` (failures are not cached)."""
    return GF(q)
