"""Lazebnik–Ustimenko high-girth bipartite graphs D(k, q).

The paper's KT1 lower-bound class 𝒢ₖ (Sec 2.2) needs an
``n^(1/k)``-regular bipartite graph on n + n vertices with girth at
least ``k + 5`` and Ω(n^(1+1/k)) edges, citing Lazebnik and Ustimenko
[LUW95].  This module implements that construction from scratch.

Construction
------------
Fix a prime power q and k >= 2.  Points P and lines L are both copies
of GF(q)^k.  Writing point coordinates in the canonical order

    (p_1, p_11, p_12, p_21, p_22, p'_22, p_23, p_32, p_33, p'_33, ...)

(and lines likewise), point ``p`` and line ``l`` are adjacent iff the
first k - 1 of the following relations hold (relations addressing
coordinates beyond index k are dropped):

    l_11  - p_11  = l_1 * p_1
    l_12  - p_12  = l_11 * p_1
    l_21  - p_21  = l_1 * p_11
    l_ii  - p_ii  = l_1 * p_{i-1,i}          (i >= 2)
    l'_ii - p'_ii = l_{i,i-1} * p_1          (i >= 2)
    l_{i,i+1} - p_{i,i+1} = l_ii * p_1       (i >= 2)
    l_{i+1,i} - p_{i+1,i} = l_1 * p'_ii      (i >= 2)

Every relation expresses coordinate j of one side in terms of
coordinate j of the other side plus a product of strictly earlier
coordinates, so fixing a point and the free line coordinate ``l_1``
determines the unique incident line with that first coordinate (and
symmetrically).  Hence D(k, q) is q-regular bipartite with q^k vertices
per side.  [LUW95] prove girth(D(k, q)) >= k + 5 for odd k >= 3; we
re-verify this by exhaustive BFS for every small instance in the tests.

Vertices are labeled ``("P", coords)`` and ``("L", coords)`` with
``coords`` a tuple of field elements (integers in range(q)).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import GraphError
from repro.graphs.galois import GF, factor_prime_power, get_field, is_prime
from repro.graphs.graph import Graph

PointLabel = Tuple[str, Tuple[int, ...]]


def _equation_table(k: int) -> List[Tuple[int, int]]:
    """Product terms of the incidence equations for coordinates 2..k.

    Returns a list where entry ``j - 2`` (for coordinate position j,
    1-indexed) is ``(l_pos, p_pos)``: the equation at position j reads

        l[j] = p[j] + l[l_pos] * p[p_pos]

    with all positions 1-indexed and strictly less than j.
    """
    if k < 2:
        raise GraphError("D(k, q) requires k >= 2")
    # Position helpers (1-indexed), derived from the canonical coordinate
    # order: block i >= 2 occupies positions 4i-3 .. 4i as
    # (p_ii, p'_ii, p_{i,i+1}, p_{i+1,i}).
    def pos_prev_super(i: int) -> int:  # position of p_{i-1, i}
        return 3 if i == 2 else 4 * i - 5

    def pos_prev_sub(i: int) -> int:  # position of l_{i, i-1}
        return 4 if i == 2 else 4 * i - 4

    table: List[Tuple[int, int]] = []
    for j in range(2, k + 1):
        if j == 2:
            table.append((1, 1))  # l_11 = p_11 + l_1 p_1
        elif j == 3:
            table.append((2, 1))  # l_12 = p_12 + l_11 p_1
        elif j == 4:
            table.append((1, 2))  # l_21 = p_21 + l_1 p_11
        else:
            i, r = divmod(j + 3, 4)  # j = 4i-3+offset, offset = r mapping
            # j = 4i-3 -> (j+3) = 4i, r == 0 -> p_ii equation
            # j = 4i-2 -> r == 1 -> p'_ii ; j = 4i-1 -> r == 2 ; j = 4i -> r == 3
            if r == 0:
                table.append((1, pos_prev_super(i)))  # l_ii
            elif r == 1:
                table.append((pos_prev_sub(i), 1))  # l'_ii
            elif r == 2:
                table.append((4 * i - 3, 1))  # l_{i,i+1}
            else:
                table.append((1, 4 * i - 2))  # l_{i+1,i}
    return table


class DkqGraph:
    """The bipartite Lazebnik–Ustimenko graph D(k, q) plus field context.

    Attributes
    ----------
    graph:
        The :class:`~repro.graphs.graph.Graph` instance.
    field:
        The :class:`~repro.graphs.galois.GF` arithmetic used.
    k, q:
        Construction parameters.
    points, lines:
        Vertex label lists for the two sides.
    """

    def __init__(self, k: int, q: int):
        if k < 2:
            raise GraphError("D(k, q) requires k >= 2")
        self.k = k
        self.q = q
        self.field = get_field(q)
        self._eqs = _equation_table(k)
        self.graph = self._build()
        self.points: List[PointLabel] = [
            v for v in self.graph.vertices() if v[0] == "P"
        ]
        self.lines: List[PointLabel] = [
            v for v in self.graph.vertices() if v[0] == "L"
        ]

    # ------------------------------------------------------------------
    def line_through(self, point: Sequence[int], l1: int) -> Tuple[int, ...]:
        """The unique line incident to ``point`` with first coordinate l1."""
        f = self.field
        line = [l1] + [0] * (self.k - 1)
        for j in range(2, self.k + 1):
            l_pos, p_pos = self._eqs[j - 2]
            prod = f.mul(line[l_pos - 1], point[p_pos - 1])
            line[j - 1] = f.add(point[j - 1], prod)
        return tuple(line)

    def point_on(self, line: Sequence[int], p1: int) -> Tuple[int, ...]:
        """The unique point incident to ``line`` with first coordinate p1."""
        f = self.field
        point = [p1] + [0] * (self.k - 1)
        for j in range(2, self.k + 1):
            l_pos, p_pos = self._eqs[j - 2]
            prod = f.mul(line[l_pos - 1], point[p_pos - 1])
            point[j - 1] = f.sub(line[j - 1], prod)
        return tuple(point)

    def incident(self, point: Sequence[int], line: Sequence[int]) -> bool:
        """Check the incidence relations directly (used for verification)."""
        f = self.field
        for j in range(2, self.k + 1):
            l_pos, p_pos = self._eqs[j - 2]
            lhs = f.sub(line[j - 1], point[j - 1])
            rhs = f.mul(line[l_pos - 1], point[p_pos - 1])
            if lhs != rhs:
                return False
        return True

    # ------------------------------------------------------------------
    def _all_tuples(self) -> Iterable[Tuple[int, ...]]:
        """Enumerate GF(q)^k in lexicographic order."""
        q, k = self.q, self.k
        coords = [0] * k
        while True:
            yield tuple(coords)
            i = k - 1
            while i >= 0 and coords[i] == q - 1:
                coords[i] = 0
                i -= 1
            if i < 0:
                return
            coords[i] += 1

    def _build(self) -> Graph:
        g = Graph()
        for pt in self._all_tuples():
            g.add_vertex(("P", pt))
        for ln in self._all_tuples():
            g.add_vertex(("L", ln))
        for pt in self._all_tuples():
            for l1 in range(self.q):
                ln = self.line_through(pt, l1)
                g.add_edge(("P", pt), ("L", ln))
        return g

    @property
    def vertices_per_side(self) -> int:
        return self.q**self.k

    @property
    def guaranteed_girth(self) -> int:
        """The [LUW95] girth guarantee: k + 5 for odd k, k + 4 for even."""
        return self.k + 5 if self.k % 2 == 1 else self.k + 4

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"D(k={self.k}, q={self.q})"


def dkq_graph(k: int, q: int) -> DkqGraph:
    """Construct D(k, q), validating that q is a prime power."""
    factor_prime_power(q)  # raises FieldError if not a prime power
    return DkqGraph(k, q)


def usable_prime_powers(limit: int) -> List[int]:
    """Prime powers q <= limit, ascending (sizes usable for benches)."""
    return [q for q in range(2, limit + 1) if is_prime_power(q)]


@lru_cache(maxsize=None)
def smallest_prime_power_at_least(q_min: int) -> int:
    """Smallest prime power >= q_min (prime powers are dense enough that
    this terminates quickly for all practical inputs).  Memoized —
    every D(k, q) sizing query at a given n repeats this scan."""
    q = max(2, q_min)
    while not is_prime_power(q):
        q += 1
    return q


@lru_cache(maxsize=None)
def is_prime_power(q: int) -> bool:
    """Memoized prime-power test.  Cached here (rather than relying on
    :func:`factor_prime_power`'s cache) because ``lru_cache`` never
    caches raised exceptions — the *negative* answers are the ones that
    would otherwise re-run trial division every call."""
    try:
        factor_prime_power(q)
        return True
    except Exception:
        return False
