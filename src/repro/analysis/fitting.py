"""Scaling-law fitting for the Table-1 shape checks.

The reproduction's success criterion is not absolute numbers but
*shape*: messages ~ n^{3/2} sqrt(log n) for Theorem 4, ~ n^{1+1/k} for
Theorem 2, and so on.  This module fits power laws (optionally with
polylog corrections) to measured (n, y) series by least squares in
log-log space, and compares candidate models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np


@dataclass
class PowerLawFit:
    """y ~ C * n^exponent, fit in log-log space.

    ``r_squared`` is the coefficient of determination of the log-log
    regression; close to 1 means a clean power law.
    """

    exponent: float
    constant: float
    r_squared: float

    def predict(self, n: float) -> float:
        """Model value C * n^exponent at size n."""
        return self.constant * n**self.exponent


def fit_power_law(ns: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Least-squares fit of log y = a log n + b."""
    if len(ns) != len(ys):
        raise ValueError("ns and ys must have equal length")
    if len(ns) < 2:
        raise ValueError("need at least two points to fit")
    if any(x <= 0 for x in ns) or any(y <= 0 for y in ys):
        raise ValueError("power-law fit requires positive data")
    lx = np.log(np.asarray(ns, dtype=float))
    ly = np.log(np.asarray(ys, dtype=float))
    a, b = np.polyfit(lx, ly, 1)
    pred = a * lx + b
    ss_res = float(np.sum((ly - pred) ** 2))
    ss_tot = float(np.sum((ly - np.mean(ly)) ** 2))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(exponent=float(a), constant=float(math.exp(b)), r_squared=r2)


def fit_power_law_deloged(
    ns: Sequence[float],
    ys: Sequence[float],
    log_power: float,
) -> PowerLawFit:
    """Fit y / log(n)^log_power ~ C * n^a — i.e. strip a known polylog
    factor before fitting the polynomial exponent.

    Example: Theorem 3 predicts messages ~ n log n; fitting with
    log_power=1 should return exponent ~ 1.
    """
    adjusted = [
        y / (math.log(n) ** log_power) for n, y in zip(ns, ys)
    ]
    return fit_power_law(ns, adjusted)


def relative_residuals(
    ns: Sequence[float],
    ys: Sequence[float],
    model: Callable[[float], float],
) -> List[float]:
    """(measured - model) / model per point; the bench tables print
    these so a reader can see how tight each bound is."""
    return [
        (y - model(n)) / model(n) for n, y in zip(ns, ys)
    ]


def best_exponent_model(
    ns: Sequence[float],
    ys: Sequence[float],
    candidates: Sequence[float],
    log_power: float = 0.0,
) -> Tuple[float, Dict[float, float]]:
    """Pick the candidate exponent that minimizes log-space RMSE after
    optimally scaling the constant.

    Used for "who wins" checks: e.g. is Theorem-2 message data closer
    to n^{4/3} (the k=3 lower bound) than to n or n^2?
    """
    lx = np.asarray(
        [math.log(n) for n in ns], dtype=float
    )
    ly = np.asarray(
        [
            math.log(y / (math.log(n) ** log_power if log_power else 1.0))
            for n, y in zip(ns, ys)
        ],
        dtype=float,
    )
    errors: Dict[float, float] = {}
    for a in candidates:
        resid = ly - a * lx
        b = float(np.mean(resid))  # optimal constant in log space
        errors[a] = float(np.sqrt(np.mean((resid - b) ** 2)))
    best = min(errors, key=errors.get)
    return best, errors


def doubling_ratio(ns: Sequence[float], ys: Sequence[float]) -> List[float]:
    """Empirical growth exponents between consecutive points:
    log(y2/y1) / log(n2/n1).  A quick sanity view of local slope."""
    out = []
    for (n1, y1), (n2, y2) in zip(zip(ns, ys), list(zip(ns, ys))[1:]):
        out.append(math.log(y2 / y1) / math.log(n2 / n1))
    return out
