"""Small statistics helpers for repeated-trial measurements."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass
class Summary:
    """Mean, standard deviation, and extremes of a sample."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int


def summarize(values: Sequence[float]) -> Summary:
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("cannot summarize an empty sample")
    n = len(vals)
    mean = sum(vals) / n
    var = sum((v - mean) ** 2 for v in vals) / n
    return Summary(
        mean=mean,
        std=math.sqrt(var),
        minimum=min(vals),
        maximum=max(vals),
        count=n,
    )


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile bootstrap confidence interval for the mean."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = random.Random(seed)
    n = len(vals)
    means: List[float] = []
    for _ in range(resamples):
        s = sum(vals[rng.randrange(n)] for _ in range(n))
        means.append(s / n)
    means.sort()
    alpha = (1.0 - confidence) / 2.0
    lo = means[int(alpha * resamples)]
    hi = means[min(resamples - 1, int((1.0 - alpha) * resamples))]
    return lo, hi


def geometric_mean(values: Sequence[float]) -> float:
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("cannot average an empty sample")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def median(values: Sequence[float]) -> float:
    vals = sorted(float(v) for v in values)
    if not vals:
        raise ValueError("cannot take median of an empty sample")
    n = len(vals)
    mid = n // 2
    if n % 2 == 1:
        return vals[mid]
    return (vals[mid - 1] + vals[mid]) / 2.0
