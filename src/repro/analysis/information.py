"""Information-theoretic estimators (Appendix A of the paper, made
empirical).

Theorem 1's proof is an entropy-counting argument: the advice 𝐘 must
carry Omega(beta) bits of information about each hidden pendant port
X_i.  These estimators let the Theorem-1 bench *measure* that
information on sampled executions: plug-in (maximum-likelihood)
estimates of entropy, conditional entropy, and mutual information over
discrete samples.

Plug-in estimates are biased for small samples; the benches use sample
sizes well above the support sizes involved, and the tests check the
estimators against closed forms on synthetic distributions.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Hashable, Iterable, List, Sequence, Tuple


def entropy(samples: Sequence[Hashable], base: float = 2.0) -> float:
    """Plug-in entropy H[X] from samples, in bits by default."""
    if not samples:
        raise ValueError("entropy of an empty sample is undefined")
    counts = Counter(samples)
    n = len(samples)
    h = 0.0
    for c in counts.values():
        p = c / n
        h -= p * math.log(p, base)
    return h


def joint_entropy(
    pairs: Sequence[Tuple[Hashable, Hashable]], base: float = 2.0
) -> float:
    """H[X, Y] from paired samples."""
    return entropy([tuple(p) for p in pairs], base=base)


def conditional_entropy(
    pairs: Sequence[Tuple[Hashable, Hashable]], base: float = 2.0
) -> float:
    """H[X | Y] = H[X, Y] - H[Y] from (x, y) samples."""
    ys = [y for _x, y in pairs]
    return joint_entropy(pairs, base=base) - entropy(ys, base=base)


def mutual_information(
    pairs: Sequence[Tuple[Hashable, Hashable]], base: float = 2.0
) -> float:
    """I[X : Y] = H[X] - H[X | Y] from (x, y) samples.

    Clamped at 0 (plug-in estimates can dip negative by rounding)."""
    xs = [x for x, _y in pairs]
    mi = entropy(xs, base=base) - conditional_entropy(pairs, base=base)
    return max(0.0, mi)


def support_size(samples: Sequence[Hashable]) -> int:
    """|supp(X)| observed in the sample (the 𝗌𝗎𝗉𝗉 of Lemma 3)."""
    return len(set(samples))


def uniform_entropy(support: int, base: float = 2.0) -> float:
    """H of the uniform distribution on ``support`` outcomes — the
    maximum possible (Lemma 16(f) in the paper's appendix)."""
    if support < 1:
        raise ValueError("support must be positive")
    return math.log(support, base)
