"""Post-hoc execution validation.

``validate_result`` re-checks a finished :class:`WakeUpResult` against
the model's physical invariants — the same checks the test suite runs,
packaged as a public API so downstream users can assert their own
algorithms behave:

* **causality** — no node woke before its hop distance from the
  adversary-woken set allows (delays are at most τ = 1 per hop);
* **conservation** — every sent message was received;
* **coverage** — the awake set is exactly the union of components
  touched by the wake schedule (or everything, if ``expect_all``);
* **bandwidth** — no recorded message exceeded the setup's cap.

Returns a list of human-readable violation strings (empty = clean).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.graphs.traversal import connected_components, multi_source_bfs
from repro.models.knowledge import NetworkSetup
from repro.sim.runner import WakeUpResult


def validate_result(
    result: WakeUpResult,
    setup: NetworkSetup,
    schedule_times: Dict,
    expect_all: bool = True,
    min_delay: float = 0.0,
) -> List[str]:
    """Check a finished run against the model invariants.

    ``schedule_times`` is the adversary's wake schedule
    (``adversary.schedule.times()``).  ``min_delay`` is the smallest
    per-hop delay the adversary could have chosen: 0.0 (the default)
    only asserts that no node woke before the earliest schedule time it
    can be blamed on; 1.0 (unit delays) tightens the bound to
    schedule time + hop distance.
    """
    violations: List[str] = []
    graph = setup.graph

    # -- causality ---------------------------------------------------------
    # Earliest legal wake of v: min over scheduled sources s of
    # (t0_s + min_delay * dist(s, v)) — every hop costs at least
    # min_delay time units.
    reach: Dict = {}
    for source, t0 in schedule_times.items():
        if not graph.has_vertex(source):
            violations.append(f"schedule wakes unknown vertex {source!r}")
            continue
        dist = multi_source_bfs(graph, [source])
        for v, d in dist.items():
            candidate = t0 + min_delay * d
            best = reach.get(v)
            if best is None or candidate < best:
                reach[v] = candidate
    for v, t in result.wake_time.items():
        lower = reach.get(v)
        if lower is not None and t < lower - 1e-9:
            violations.append(
                f"{v!r} woke at {t}, before the causal bound {lower}"
            )

    # -- conservation --------------------------------------------------------
    sent = sum(result.metrics.sent_by.values())
    received = sum(result.metrics.received_by.values())
    if sent != result.messages:
        violations.append(
            f"messages field {result.messages} != per-node sends {sent}"
        )
    if received > sent:
        violations.append(
            f"received {received} exceeds sent {sent}"
        )

    # -- coverage ------------------------------------------------------------
    scheduled = set(schedule_times)
    reachable = set()
    for comp in connected_components(graph):
        if any(v in scheduled for v in comp):
            reachable.update(comp)
    awake = set(result.wake_time)
    ghost = awake - reachable
    if ghost:
        violations.append(
            f"{len(ghost)} nodes woke despite being unreachable from the "
            "wake schedule"
        )
    if expect_all and awake != reachable:
        missing = reachable - awake
        violations.append(
            f"{len(missing)} reachable nodes never woke"
        )

    # -- bandwidth -------------------------------------------------------------
    cap = setup.bandwidth.cap_bits
    if cap is not None and result.max_message_bits > cap:
        violations.append(
            f"recorded message of {result.max_message_bits} bits exceeds "
            f"the {cap}-bit cap"
        )

    return violations
