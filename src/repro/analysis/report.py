"""Plain-text table rendering for bench output.

Every bench prints a paper-style table (one row per configuration) so
``pytest benchmarks/ --benchmark-only`` output doubles as the
EXPERIMENTS.md raw data.  No external dependencies; monospace-aligned.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence


def format_value(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 10_000 or abs(v) < 0.01:
            return f"{v:.3g}"
        return f"{v:.2f}"
    return str(v)


def render_table(
    rows: Sequence[Dict[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict-rows as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no data)"
    if columns is None:
        columns = list(rows[0].keys())
    table: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        table.append([format_value(row.get(c, "")) for c in columns])
    widths = [
        max(len(r[i]) for r in table) for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(
        cell.ljust(w) for cell, w in zip(table[0], widths)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for r in table[1:]:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


def print_table(
    rows: Sequence[Dict[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> None:
    print()
    print(render_table(rows, columns=columns, title=title))
