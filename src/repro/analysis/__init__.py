"""Analysis toolkit: scaling fits, statistics, information estimators,
and bench-table rendering."""

from repro.analysis.fitting import (
    PowerLawFit,
    best_exponent_model,
    doubling_ratio,
    fit_power_law,
    fit_power_law_deloged,
    relative_residuals,
)
from repro.analysis.information import (
    conditional_entropy,
    entropy,
    joint_entropy,
    mutual_information,
    support_size,
    uniform_entropy,
)
from repro.analysis.report import format_value, print_table, render_table
from repro.analysis.telemetry import (
    cell_summary_table,
    event_census,
    load_events,
    phase_profile_table,
    render_telemetry_report,
    runtime_outliers,
)
from repro.analysis.validate import validate_result
from repro.analysis.stats import (
    Summary,
    bootstrap_ci,
    geometric_mean,
    median,
    summarize,
)

__all__ = [
    "PowerLawFit",
    "best_exponent_model",
    "doubling_ratio",
    "fit_power_law",
    "fit_power_law_deloged",
    "relative_residuals",
    "conditional_entropy",
    "entropy",
    "joint_entropy",
    "mutual_information",
    "support_size",
    "uniform_entropy",
    "format_value",
    "cell_summary_table",
    "event_census",
    "load_events",
    "phase_profile_table",
    "render_telemetry_report",
    "runtime_outliers",
    "validate_result",
    "print_table",
    "render_table",
    "Summary",
    "bootstrap_ci",
    "geometric_mean",
    "median",
    "summarize",
]
