"""Offline aggregation of telemetry JSONL files.

A sweep run with ``--telemetry PATH`` leaves behind a stream of
schema-versioned events (:mod:`repro.obs.events`).  This module turns
such a file into the profile tables behind ``repro report --telemetry``:

* an event census (how many of each kind, schema versions seen);
* a per-phase/per-n profile — where wall-time and messages went,
  aggregated from ``phase_end`` events;
* a per-n cell summary (executed/cached/failed counts, duration
  quantiles) from terminal cell events;
* a runtime outlier list — executed cells whose duration exceeds
  ``outlier_factor`` x the median for their size;
* an instrument summary from the last ``metrics_snapshot`` event, for
  streams recorded with ``--metrics`` (counters/gauges/histograms from
  :mod:`repro.obs.metrics`).
"""

from __future__ import annotations

import statistics
from pathlib import Path
from typing import Dict, List, Optional, Sequence, TextIO, Tuple, Union

from repro.analysis.report import render_table
from repro.obs.events import (
    TERMINAL_CELL_KINDS,
    parse_line,
    validate_event,
)

# A cell must be this many times slower than its size-class median to be
# flagged as an outlier.
DEFAULT_OUTLIER_FACTOR = 4.0


def read_events(
    source: Union[str, Path, TextIO],
    strict: bool = False,
) -> Tuple[List[Dict[str, object]], int]:
    """Parse a telemetry JSONL file into ``(events, skipped)``.

    ``skipped`` counts malformed or schema-invalid lines.  A producer
    killed mid-write (the daemon makes this routine — SIGKILLed jobs,
    full disks, client disconnects) leaves a torn final line, so the
    default mode skips and *counts* bad lines instead of failing; the
    file is opened with ``errors="replace"`` so even a line torn inside
    a multi-byte sequence cannot raise ``UnicodeDecodeError``.  With
    ``strict`` the first bad line raises :class:`ValueError`.
    """
    if isinstance(source, (str, Path)):
        with open(
            source, "r", encoding="utf-8", errors="replace"
        ) as fh:
            return read_events(fh, strict=strict)
    events: List[Dict[str, object]] = []
    skipped = 0
    for lineno, line in enumerate(source, 1):
        if not line.strip():
            continue
        try:
            event = parse_line(line)
        except ValueError as exc:
            if strict:
                raise ValueError(f"line {lineno}: {exc}") from exc
            skipped += 1
            continue
        errors = validate_event(event)
        if errors:
            if strict:
                raise ValueError(f"line {lineno}: {'; '.join(errors)}")
            skipped += 1
            continue
        events.append(event)
    return events, skipped


def load_events(
    source: Union[str, Path, TextIO],
    strict: bool = False,
) -> List[Dict[str, object]]:
    """:func:`read_events` without the skip count (the historical
    API; callers that need to surface torn tails use read_events)."""
    return read_events(source, strict=strict)[0]


def event_census(events: Sequence[Dict[str, object]]) -> Dict[str, int]:
    """Count of events per kind, sorted by kind name."""
    census: Dict[str, int] = {}
    for e in events:
        kind = str(e.get("kind"))
        census[kind] = census.get(kind, 0) + 1
    return dict(sorted(census.items()))


def phase_profile_table(
    events: Sequence[Dict[str, object]],
) -> List[Dict[str, object]]:
    """Aggregate ``phase_end`` events into per-(n, phase) rows.

    Worker-side profiles are replayed by the executor as aggregate
    ``phase_end`` events, so a sweep telemetry file aggregates here
    exactly like an in-process run's live stream.  Rows are sorted by n
    then descending time; ``share`` is the phase's fraction of its
    size-class total.
    """
    by_n: Dict[int, Dict[str, Dict[str, float]]] = {}
    for e in events:
        if e.get("kind") != "phase_end":
            continue
        n = int(e.get("n", 0) or 0)
        phases = by_n.setdefault(n, {})
        agg = phases.setdefault(
            str(e["phase"]), {"time_s": 0.0, "messages": 0, "entries": 0}
        )
        agg["time_s"] += float(e.get("elapsed", 0.0))
        agg["messages"] += int(e.get("messages", 0))
        agg["entries"] += int(e.get("entries", 0))
    rows: List[Dict[str, object]] = []
    for n in sorted(by_n):
        total = sum(p["time_s"] for p in by_n[n].values()) or 1.0
        for name, agg in sorted(
            by_n[n].items(), key=lambda kv: -kv[1]["time_s"]
        ):
            rows.append(
                {
                    "n": n,
                    "phase": name,
                    "time_s": round(agg["time_s"], 6),
                    "share": round(agg["time_s"] / total, 3),
                    "messages": int(agg["messages"]),
                    "entries": int(agg["entries"]),
                }
            )
    return rows


def topology_cache_table(
    events: Sequence[Dict[str, object]],
) -> List[Dict[str, object]]:
    """Compiled-topology cache effectiveness, from ``topology_stats``.

    One row summing every sweep's counters: graph builds vs in-process
    and on-disk reuses, plus the hit rate.  Empty when the stream
    predates the topology layer (older telemetry files stay readable).
    """
    build = hit_mem = hit_disk = 0
    seen = False
    for e in events:
        if e.get("kind") != "topology_stats":
            continue
        seen = True
        build += int(e.get("build", 0))
        hit_mem += int(e.get("hit_mem", 0))
        hit_disk += int(e.get("hit_disk", 0))
    if not seen:
        return []
    total = build + hit_mem + hit_disk
    return [
        {
            "builds": build,
            "hits_mem": hit_mem,
            "hits_disk": hit_disk,
            "fetches": total,
            "hit_rate": round((hit_mem + hit_disk) / total, 3)
            if total
            else 0.0,
        }
    ]


def schedule_check_table(
    events: Sequence[Dict[str, object]],
) -> List[Dict[str, object]]:
    """Schedule-exploration activity, from the ``repro.check`` kinds.

    One row per ``check_stats`` / ``worstcase_stats`` / ``shrink_stats``
    event, in stream order — each is one explorer, worst-case search,
    or shrink invocation.  Empty for streams that predate the model
    checker.
    """
    rows: List[Dict[str, object]] = []
    for e in events:
        kind = e.get("kind")
        if kind == "check_stats":
            rows.append(
                {
                    "op": "explore",
                    "target": e.get("algorithm", "?"),
                    "work": f"{e.get('schedules', 0)} schedules",
                    "states": e.get("states", 0),
                    "pruned": int(e.get("pruned_sleep", 0))
                    + int(e.get("pruned_state", 0)),
                    "violations": e.get("violations", 0),
                    "note": "complete"
                    if e.get("completed")
                    else "budget hit",
                }
            )
        elif kind == "worstcase_stats":
            rows.append(
                {
                    "op": "worstcase",
                    "target": e.get("algorithm", "?"),
                    "work": f"{e.get('evaluations', 0)} evals",
                    "states": "",
                    "pruned": "",
                    "violations": "",
                    "note": f"{e.get('objective')}="
                    f"{e.get('best_score')} via {e.get('policy')}",
                }
            )
        elif kind == "shrink_stats":
            rows.append(
                {
                    "op": "shrink",
                    "target": e.get("invariant", "?"),
                    "work": f"{e.get('tests', 0)} tests",
                    "states": "",
                    "pruned": "",
                    "violations": "",
                    "note": f"{e.get('from_len')} -> {e.get('to_len')} "
                    f"choices",
                }
            )
    return rows


def metrics_snapshot_table(
    events: Sequence[Dict[str, object]],
) -> List[Dict[str, object]]:
    """Instrument summary from the *last* ``metrics_snapshot`` event.

    The executor emits one cumulative snapshot per sweep, so the last
    one in the stream covers everything before it.  One row per
    instrument family: counters sum their labeled series, gauges keep
    the max, histograms report sample counts plus p50/p99 estimated
    from their buckets.  Empty for streams recorded without
    ``--metrics`` (or predating the metrics layer).
    """
    from repro.obs.metrics import histogram_quantile, parse_series_key

    snap = None
    for e in events:
        if e.get("kind") == "metrics_snapshot":
            snap = e
    if snap is None:
        return []
    families: Dict[str, Dict[str, object]] = {}

    def _fam(key: str, kind: str) -> Dict[str, object]:
        name, _ = parse_series_key(key)
        return families.setdefault(
            name,
            {"instrument": name, "type": kind, "series": 0,
             "value": 0.0, "p50": "", "p99": ""},
        )

    for key, value in dict(snap.get("counters") or {}).items():
        row = _fam(key, "counter")
        row["series"] = int(row["series"]) + 1
        row["value"] = float(row["value"]) + float(value)
    for key, value in dict(snap.get("gauges") or {}).items():
        row = _fam(key, "gauge")
        row["series"] = int(row["series"]) + 1
        row["value"] = max(float(row["value"]), float(value))
    for key, h in dict(snap.get("histograms") or {}).items():
        row = _fam(key, "histogram")
        row["series"] = int(row["series"]) + 1
        row["value"] = float(row["value"]) + float(h.get("count", 0))
        if int(row["series"]) > 1:
            # Quantiles of distinct label sets don't combine; the
            # per-series view lives in `repro top`.
            row["p50"] = row["p99"] = ""
            continue
        try:
            row["p50"] = round(histogram_quantile(h, 0.50), 6)
            row["p99"] = round(histogram_quantile(h, 0.99), 6)
        except (KeyError, TypeError, ValueError):
            pass
    rows = [dict(families[name]) for name in sorted(families)]
    for row in rows:
        row["value"] = round(float(row["value"]), 6)
    return rows


def _executed_cells(
    events: Sequence[Dict[str, object]],
) -> List[Dict[str, object]]:
    """Terminal cell events for cells that actually ran (not cache hits)."""
    cells = []
    for e in events:
        if e.get("kind") not in TERMINAL_CELL_KINDS:
            continue
        if e.get("cached"):
            continue
        cells.append(e)
    return cells


def cell_summary_table(
    events: Sequence[Dict[str, object]],
) -> List[Dict[str, object]]:
    """Per-n cell counts and duration statistics from terminal events."""
    by_n: Dict[int, Dict[str, object]] = {}
    for e in events:
        if e.get("kind") not in TERMINAL_CELL_KINDS:
            continue
        n = int(e.get("n", 0) or 0)
        row = by_n.setdefault(
            n,
            {"n": n, "cells": 0, "ok": 0, "failed": 0, "cached": 0,
             "durations": []},
        )
        row["cells"] += 1
        if e.get("cached"):
            row["cached"] += 1
        elif e.get("kind") == "cell_end" and e.get("status") == "ok":
            row["ok"] += 1
        else:
            row["failed"] += 1
        if not e.get("cached"):
            row["durations"].append(float(e.get("duration", 0.0)))
    rows: List[Dict[str, object]] = []
    for n in sorted(by_n):
        row = by_n[n]
        durations = row.pop("durations")
        row["median_s"] = (
            round(statistics.median(durations), 6) if durations else 0.0
        )
        row["max_s"] = round(max(durations), 6) if durations else 0.0
        rows.append(row)
    return rows


def runtime_outliers(
    events: Sequence[Dict[str, object]],
    factor: float = DEFAULT_OUTLIER_FACTOR,
) -> List[Dict[str, object]]:
    """Executed cells slower than ``factor`` x their size-class median.

    A cell only counts as an outlier against at least two executed
    cells of the same n — a singleton is its own median.
    """
    by_n: Dict[int, List[Dict[str, object]]] = {}
    for e in _executed_cells(events):
        by_n.setdefault(int(e.get("n", 0) or 0), []).append(e)
    outliers: List[Dict[str, object]] = []
    for n in sorted(by_n):
        cells = by_n[n]
        if len(cells) < 2:
            continue
        median = statistics.median(float(c.get("duration", 0.0)) for c in cells)
        if median <= 0.0:
            continue
        for c in cells:
            duration = float(c.get("duration", 0.0))
            if duration > factor * median:
                outliers.append(
                    {
                        "n": n,
                        "key": str(c.get("key", ""))[:12],
                        "kind": c.get("kind"),
                        "duration_s": round(duration, 6),
                        "median_s": round(median, 6),
                        "x_median": round(duration / median, 1),
                    }
                )
    outliers.sort(key=lambda o: -float(o["x_median"]))
    return outliers


def render_telemetry_report(
    source: Union[str, Path, TextIO],
    outlier_factor: float = DEFAULT_OUTLIER_FACTOR,
) -> str:
    """Full text report for ``repro report --telemetry PATH``."""
    events, skipped = read_events(source)
    parts: List[str] = []
    census = event_census(events)
    parts.append(
        render_table(
            [{"kind": k, "count": v} for k, v in census.items()]
            or [{"kind": "(none)", "count": 0}],
            title=f"Telemetry events ({len(events)} total)",
        )
    )
    if skipped:
        parts.append(
            f"skipped {skipped} malformed line(s) — a torn tail from a "
            "writer killed mid-record is normal; more than one line "
            "suggests stream corruption"
        )
    phase_rows = phase_profile_table(events)
    if phase_rows:
        parts.append("")
        parts.append(render_table(phase_rows, title="Phase profile"))
    cell_rows = cell_summary_table(events)
    if cell_rows:
        parts.append("")
        parts.append(render_table(cell_rows, title="Cells by size"))
    topo_rows = topology_cache_table(events)
    if topo_rows:
        parts.append("")
        parts.append(
            render_table(topo_rows, title="Topology cache")
        )
    check_rows = schedule_check_table(events)
    if check_rows:
        parts.append("")
        parts.append(
            render_table(check_rows, title="Schedule exploration")
        )
    metrics_rows = metrics_snapshot_table(events)
    if metrics_rows:
        parts.append("")
        parts.append(
            render_table(
                metrics_rows, title="Metrics (last snapshot)"
            )
        )
    outliers = runtime_outliers(events, factor=outlier_factor)
    parts.append("")
    if outliers:
        parts.append(
            render_table(
                outliers,
                title=f"Runtime outliers (> {outlier_factor:g}x median)",
            )
        )
    else:
        parts.append(
            f"runtime outliers: none (> {outlier_factor:g}x size-class median)"
        )
    return "\n".join(parts)
