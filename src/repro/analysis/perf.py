"""Perf ledger: one append-only trajectory for every bench profile.

The four committed ``BENCH_*.json`` files are point-in-time baselines
with four disjoint schemas, historically checked by four separate
``check_bench_baseline.py`` invocations.  This module unifies them:

* :data:`PROFILES` — the single source of truth for each bench
  profile's baseline file, case key, guarded metric, and required
  fields (``scripts/check_bench_baseline.py`` imports it from here);
* ``PERF_LEDGER.jsonl`` — an append-only history: each
  :func:`record` call folds one bench payload into one ledger line
  (profile, source metadata, per-case metric values), so the
  repository carries the whole perf trajectory, not just the latest
  point;
* :func:`check` — the unified regression gate: each candidate bench
  run is compared against the **latest ledger entry of its profile**
  with the same tolerance semantics as the per-file baseline checker
  (shared cases only; a case below ``1 - max_regression`` of its
  ledger value fails; faster never fails).

Bench envelopes: schema 1 (legacy, no ``profile`` field) and schema 2
(``schema``/``created``/``python``/``profile``/``cases``) are both
accepted; profile inference for schema-1 files falls back to field
matching and is ambiguous between ``engine`` and ``bulk`` (identical
case fields), so callers pass the profile explicitly where it matters.
"""

from __future__ import annotations

import json
import math
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

LEDGER_SCHEMA = 1

DEFAULT_LEDGER = Path("PERF_LEDGER.jsonl")

#: Bench profiles.  Field lists must match the benches' CASE_FIELDS;
#: ``baseline`` names the committed point-in-time file each bench
#: still writes.
PROFILES: Dict[str, Dict[str, Any]] = {
    "engine": {
        "baseline": "BENCH_engine.json",
        "bench": "benchmarks/bench_engine_hotpath.py",
        "key_fields": ("algorithm", "engine", "n"),
        "metric": "events_per_sec",
        "unit": "events/s",
        "required_fields": (
            "algorithm",
            "engine",
            "n",
            "events",
            "messages",
            "wall_s",
            "events_per_sec",
        ),
    },
    "bulk": {
        "baseline": "BENCH_bulk.json",
        "bench": "benchmarks/bench_bulk_engine.py",
        "key_fields": ("algorithm", "engine", "n"),
        "metric": "events_per_sec",
        "unit": "events/s",
        "required_fields": (
            "algorithm",
            "engine",
            "n",
            "events",
            "messages",
            "wall_s",
            "events_per_sec",
        ),
    },
    "check": {
        "baseline": "BENCH_check.json",
        "bench": "benchmarks/bench_schedule_search.py",
        "key_fields": ("mode", "algorithm", "n"),
        "metric": "schedules_per_sec",
        "unit": "schedules/s",
        "required_fields": (
            "mode",
            "algorithm",
            "n",
            "schedules",
            "wall_s",
            "schedules_per_sec",
        ),
    },
    "topology": {
        "baseline": "BENCH_topology.json",
        "bench": "benchmarks/bench_topology_compile.py",
        "key_fields": ("workload", "n"),
        "metric": "warm_speedup",
        "unit": "x warm speedup",
        "required_fields": (
            "workload",
            "n",
            "trials",
            "legacy_s",
            "cold_s",
            "warm_s",
            "warm_speedup",
        ),
    },
    "opt": {
        "baseline": "BENCH_opt.json",
        "bench": "benchmarks/bench_adversary_opt.py",
        "key_fields": ("optimizer", "algorithm", "n"),
        "metric": "evals_per_sec",
        "unit": "evals/s",
        "required_fields": (
            "optimizer",
            "algorithm",
            "n",
            "evaluations",
            "wall_s",
            "evals_per_sec",
        ),
    },
    "executor": {
        "baseline": "BENCH_executor.json",
        "bench": "benchmarks/bench_executor_scaling.py",
        "key_fields": ("mix", "workers"),
        "metric": "steal_speedup",
        "unit": "x fork wall / steal wall",
        "required_fields": (
            "mix",
            "workers",
            "cells",
            "fork_s",
            "steal_s",
            "steal_speedup",
        ),
    },
}

#: Bench envelope versions this module understands.  Schema 2 adds the
#: required top-level ``profile`` field.
BENCH_SCHEMAS = (1, 2)


class PerfError(Exception):
    """Raised for unreadable/invalid bench or ledger files."""


def case_key(case: Mapping[str, Any], profile: str) -> str:
    """The ledger's flat case identifier: key fields joined with '/'
    (e.g. ``flooding/async/512``)."""
    fields = PROFILES[profile]["key_fields"]
    return "/".join(str(case[f]) for f in fields)


def infer_profile(payload: Mapping[str, Any]) -> Optional[str]:
    """Best-effort profile for a bench payload.

    Schema-2 envelopes name their profile; schema-1 envelopes are
    matched by case fields.  Returns ``None`` when no profile matches
    unambiguously (notably: schema-1 ``engine`` vs ``bulk``, whose
    case fields are identical).
    """
    declared = payload.get("profile")
    if declared is not None:
        return declared if declared in PROFILES else None
    cases = payload.get("cases") or []
    if not cases:
        return None
    first = cases[0]
    matches = [
        name
        for name, prof in PROFILES.items()
        if all(f in first for f in prof["required_fields"])
    ]
    return matches[0] if len(matches) == 1 else None


def load_bench(
    path: Path, profile: Optional[str] = None
) -> Tuple[str, Dict[str, Any]]:
    """Read and validate one bench payload; returns
    ``(profile, payload)``.  Accepts schema 1 and 2 envelopes."""
    try:
        payload = json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise PerfError(f"{path}: missing") from None
    except json.JSONDecodeError as exc:
        raise PerfError(f"{path}: not valid JSON ({exc})") from None
    schema = payload.get("schema")
    if schema not in BENCH_SCHEMAS:
        raise PerfError(
            f"{path}: unsupported bench schema {schema!r} "
            f"(known: {BENCH_SCHEMAS})"
        )
    declared = payload.get("profile")
    if schema >= 2 and declared not in PROFILES:
        raise PerfError(
            f"{path}: schema 2 requires a known 'profile' field "
            f"(got {declared!r})"
        )
    if profile is None:
        profile = infer_profile(payload)
        if profile is None:
            raise PerfError(
                f"{path}: cannot infer profile; pass it explicitly"
            )
    elif declared is not None and declared != profile:
        raise PerfError(
            f"{path}: declares profile {declared!r}, caller said "
            f"{profile!r}"
        )
    prof = PROFILES[profile]
    cases = payload.get("cases")
    if not isinstance(cases, list) or not cases:
        raise PerfError(f"{path}: no 'cases' list")
    for i, case in enumerate(cases):
        missing = [f for f in prof["required_fields"] if f not in case]
        if missing:
            raise PerfError(
                f"{path}: case {i} missing fields {missing} "
                f"(profile {profile})"
            )
        if case[prof["metric"]] <= 0:
            raise PerfError(
                f"{path}: case {i} has non-positive {prof['metric']}"
            )
    return profile, payload


def bench_to_entry(
    profile: str, payload: Mapping[str, Any], source: str = ""
) -> Dict[str, Any]:
    """One ledger line (as a dict) for a validated bench payload."""
    prof = PROFILES[profile]
    metric = prof["metric"]
    cases = {
        case_key(c, profile): float(c[metric]) for c in payload["cases"]
    }
    return {
        "schema": LEDGER_SCHEMA,
        "profile": profile,
        "metric": metric,
        "unit": prof["unit"],
        "created": payload.get("created", ""),
        "python": payload.get("python", ""),
        "source": source,
        "recorded": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "cases": cases,
    }


# ----------------------------------------------------------------------
# Ledger I/O
# ----------------------------------------------------------------------
def read_ledger(path: Path) -> List[Dict[str, Any]]:
    """All ledger entries, in file (= chronological) order.  A missing
    file is an empty ledger; a malformed line is an error."""
    path = Path(path)
    if not path.exists():
        return []
    entries: List[Dict[str, Any]] = []
    for i, line in enumerate(path.read_text().splitlines()):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            raise PerfError(f"{path}:{i + 1}: bad ledger line ({exc})")
        if not isinstance(entry, dict) or "profile" not in entry:
            raise PerfError(f"{path}:{i + 1}: not a ledger entry")
        entries.append(entry)
    return entries


def append_entry(path: Path, entry: Mapping[str, Any]) -> None:
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")


def latest_per_profile(
    entries: List[Dict[str, Any]]
) -> Dict[str, Dict[str, Any]]:
    """The newest entry of each profile (append order wins)."""
    latest: Dict[str, Dict[str, Any]] = {}
    for entry in entries:
        latest[entry["profile"]] = entry
    return latest


# ----------------------------------------------------------------------
# Operations (shared by `repro perf` and scripts/perf_ledger.py)
# ----------------------------------------------------------------------
def record(
    bench_path: Path,
    ledger_path: Path = DEFAULT_LEDGER,
    profile: Optional[str] = None,
) -> Dict[str, Any]:
    """Ingest one bench file into the ledger; returns the new entry."""
    profile, payload = load_bench(bench_path, profile)
    entry = bench_to_entry(profile, payload, source=str(bench_path))
    append_entry(ledger_path, entry)
    return entry


def geomean(values) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def show(
    ledger_path: Path = DEFAULT_LEDGER, stream=None
) -> Dict[str, List[Dict[str, Any]]]:
    """Print the per-profile history (one line per entry, with the
    geometric-mean headline metric) and return it grouped."""
    out = stream if stream is not None else sys.stdout
    entries = read_ledger(ledger_path)
    grouped: Dict[str, List[Dict[str, Any]]] = {}
    for entry in entries:
        grouped.setdefault(entry["profile"], []).append(entry)
    if not entries:
        print(f"{ledger_path}: empty ledger", file=out)
        return grouped
    for profile in sorted(grouped):
        history = grouped[profile]
        unit = history[-1].get("unit", "")
        print(f"[{profile}] {len(history)} entr"
              f"{'y' if len(history) == 1 else 'ies'}", file=out)
        prev_gm = None
        for entry in history:
            gm = geomean(entry.get("cases", {}).values())
            delta = ""
            if prev_gm:
                delta = f"  ({gm / prev_gm - 1.0:+.1%})"
            prev_gm = gm
            print(
                f"  {entry.get('created', '?'):20s} "
                f"{len(entry.get('cases', {})):3d} cases  "
                f"geomean {gm:12.1f} {unit}{delta}",
                file=out,
            )
    return grouped


def check(
    candidates: Mapping[str, Path],
    ledger_path: Path = DEFAULT_LEDGER,
    max_regression: float = 0.30,
    stream=None,
) -> List[str]:
    """The unified regression gate.

    ``candidates`` maps profile name -> fresh bench output path.  Each
    candidate is validated and compared case-by-case against the
    latest ledger entry for its profile.  Returns the list of errors
    (empty = gate passes).  Candidate cases absent from the ledger (or
    vice versa) are reported but not fatal, matching the historical
    baseline-checker semantics.  A profile with *no* ledger history is
    **seeded** from the candidate and reported as "seeded, no
    baseline" — not failed: the first bench of a brand-new profile
    (e.g. a future ``serve`` profile) must be able to pass CI, and the
    appended entry becomes the baseline the next run gates against.
    """
    out = stream if stream is not None else sys.stdout
    errors: List[str] = []
    try:
        latest = latest_per_profile(read_ledger(ledger_path))
    except PerfError as exc:
        return [str(exc)]
    for profile in sorted(candidates):
        path = candidates[profile]
        if profile not in PROFILES:
            errors.append(f"unknown profile {profile!r}")
            continue
        try:
            _, payload = load_bench(path, profile)
        except PerfError as exc:
            errors.append(str(exc))
            continue
        entry = latest.get(profile)
        if entry is None:
            seeded = bench_to_entry(profile, payload, source=str(path))
            append_entry(Path(ledger_path), seeded)
            print(
                f"[{profile}] seeded, no baseline: recorded "
                f"{len(seeded.get('cases', {}))} case(s) into "
                f"{ledger_path}; the next check gates against them",
                file=out,
            )
            continue
        unit = PROFILES[profile]["unit"]
        base_cases: Dict[str, float] = entry.get("cases", {})
        cand_cases = {
            case_key(c, profile): float(c[PROFILES[profile]["metric"]])
            for c in payload["cases"]
        }
        shared = sorted(set(base_cases) & set(cand_cases))
        if base_cases and cand_cases and not shared:
            errors.append(f"{profile}: no cases in common with ledger")
        for key in sorted(set(base_cases) ^ set(cand_cases)):
            which = "ledger" if key in base_cases else "candidate"
            print(f"note: [{profile}] case {key} only in {which}",
                  file=out)
        for key in shared:
            base = base_cases[key]
            cand = cand_cases[key]
            ratio = cand / base
            status = "ok"
            if ratio < 1.0 - max_regression:
                status = "REGRESSION"
                errors.append(
                    f"[{profile}] case {key}: {cand:.0f} {unit} is "
                    f"{(1.0 - ratio) * 100:.0f}% below ledger "
                    f"{base:.0f}"
                )
            print(
                f"[{profile}] {key}: ledger {base:10.0f}  "
                f"candidate {cand:10.0f}  ({ratio:.2f}x)  {status}",
                file=out,
            )
    return errors
