"""Advice framework: exact bit-level encoding plus the oracle interface."""

from repro.advice.bits import BitReader, BitWriter, Bits, gamma_cost
from repro.advice.oracle import AdviceMap, Oracle, empty_advice

__all__ = [
    "BitReader",
    "BitWriter",
    "Bits",
    "gamma_cost",
    "AdviceMap",
    "Oracle",
    "empty_advice",
]
