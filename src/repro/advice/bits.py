"""Exact bit-string encoding for oracle advice.

Table 1 bounds advice in *bits per node*, so advice must be a genuine
bit string, not a Python object whose size is hand-waved.  This module
provides:

* :class:`Bits` — an immutable bit string with O(1) length queries;
* :class:`BitWriter` / :class:`BitReader` — streaming codecs with
  fixed-width integers, unary, Elias-gamma, and length-prefixed list
  encodings.

Elias gamma is the workhorse: it encodes a positive integer x in
2*floor(log2 x) + 1 bits, self-delimiting, which lets schemes pay
O(log n) bits per port number without knowing n exactly.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.errors import AdviceError


class Bits:
    """An immutable sequence of bits (stored as a tuple of 0/1 ints)."""

    __slots__ = ("_bits",)

    def __init__(self, bits: Iterable[int] = ()):
        b = tuple(int(x) for x in bits)
        if any(x not in (0, 1) for x in b):
            raise AdviceError("bits must be 0 or 1")
        self._bits = b

    def __len__(self) -> int:
        return len(self._bits)

    def __iter__(self):
        return iter(self._bits)

    def __getitem__(self, i):
        return self._bits[i]

    def __eq__(self, other) -> bool:
        if isinstance(other, Bits):
            return self._bits == other._bits
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._bits)

    def __add__(self, other: "Bits") -> "Bits":
        if not isinstance(other, Bits):
            raise AdviceError("can only concatenate Bits with Bits")
        new = Bits.__new__(Bits)
        new._bits = self._bits + other._bits
        return new

    def to01(self) -> str:
        """Render as a '0'/'1' string (debugging, golden tests)."""
        return "".join(str(b) for b in self._bits)

    @classmethod
    def from01(cls, s: str) -> "Bits":
        return cls(int(c) for c in s)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.to01()
        if len(s) > 40:
            s = s[:40] + "..."
        return f"Bits({len(self)}b:{s})"


class BitWriter:
    """Append-only bit stream builder."""

    def __init__(self) -> None:
        self._bits: List[int] = []

    # -- primitives --------------------------------------------------------
    def write_bit(self, b: int) -> "BitWriter":
        """Append a single bit (0 or 1)."""
        if b not in (0, 1):
            raise AdviceError(f"bit must be 0 or 1, got {b!r}")
        self._bits.append(b)
        return self

    def write_uint(self, value: int, width: int) -> "BitWriter":
        """Fixed-width big-endian unsigned integer."""
        if value < 0:
            raise AdviceError("write_uint requires a nonnegative value")
        if width < 0:
            raise AdviceError("width must be nonnegative")
        if value >= (1 << width):
            raise AdviceError(
                f"value {value} does not fit in {width} bits"
            )
        for i in reversed(range(width)):
            self._bits.append((value >> i) & 1)
        return self

    def write_unary(self, value: int) -> "BitWriter":
        """value zeros followed by a one (encodes value >= 0)."""
        if value < 0:
            raise AdviceError("unary encodes nonnegative values")
        self._bits.extend([0] * value)
        self._bits.append(1)
        return self

    def write_gamma(self, value: int) -> "BitWriter":
        """Elias gamma for value >= 1: unary length then binary remainder."""
        if value < 1:
            raise AdviceError("Elias gamma encodes values >= 1")
        width = value.bit_length() - 1
        self.write_unary(width)
        if width:
            self.write_uint(value - (1 << width), width)
        return self

    def write_gamma0(self, value: int) -> "BitWriter":
        """Gamma shifted to cover value >= 0."""
        return self.write_gamma(value + 1)

    # -- composites --------------------------------------------------------
    def write_uint_list(self, values: Sequence[int], width: int) -> "BitWriter":
        """Gamma-coded count followed by fixed-width entries."""
        self.write_gamma0(len(values))
        for v in values:
            self.write_uint(v, width)
        return self

    def write_gamma_list(self, values: Sequence[int]) -> "BitWriter":
        """Gamma-coded count followed by gamma0-coded entries."""
        self.write_gamma0(len(values))
        for v in values:
            self.write_gamma0(v)
        return self

    def write_bits(self, bits: Bits) -> "BitWriter":
        """Append an existing bit string verbatim."""
        self._bits.extend(bits)
        return self

    # -- finish --------------------------------------------------------------
    def getvalue(self) -> Bits:
        """Freeze the written stream into an immutable :class:`Bits`."""
        out = Bits.__new__(Bits)
        out._bits = tuple(self._bits)
        return out

    def __len__(self) -> int:
        return len(self._bits)


class BitReader:
    """Sequential decoder over a :class:`Bits` value."""

    def __init__(self, bits: Bits):
        self._bits = tuple(bits)
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._bits) - self._pos

    def _take(self, k: int) -> Tuple[int, ...]:
        if self._pos + k > len(self._bits):
            raise AdviceError(
                f"advice underflow: needed {k} bits, have {self.remaining}"
            )
        out = self._bits[self._pos: self._pos + k]
        self._pos += k
        return out

    # -- primitives --------------------------------------------------------
    def read_bit(self) -> int:
        """Consume and return the next bit."""
        return self._take(1)[0]

    def read_uint(self, width: int) -> int:
        """Consume a fixed-width big-endian unsigned integer."""
        value = 0
        for b in self._take(width):
            value = (value << 1) | b
        return value

    def read_unary(self) -> int:
        """Consume a unary value (count of zeros before the next one)."""
        count = 0
        while True:
            if self.read_bit() == 1:
                return count
            count += 1

    def read_gamma(self) -> int:
        """Consume an Elias-gamma value (>= 1)."""
        width = self.read_unary()
        if width == 0:
            return 1
        return (1 << width) + self.read_uint(width)

    def read_gamma0(self) -> int:
        """Consume a shifted gamma value (>= 0)."""
        return self.read_gamma() - 1

    # -- composites --------------------------------------------------------
    def read_uint_list(self, width: int) -> List[int]:
        """Inverse of :meth:`BitWriter.write_uint_list`."""
        count = self.read_gamma0()
        return [self.read_uint(width) for _ in range(count)]

    def read_gamma_list(self) -> List[int]:
        """Inverse of :meth:`BitWriter.write_gamma_list`."""
        count = self.read_gamma0()
        return [self.read_gamma0() for _ in range(count)]


def gamma_cost(value: int) -> int:
    """Bit cost of Elias gamma for value >= 1 (2*floor(log2 v) + 1)."""
    if value < 1:
        raise AdviceError("Elias gamma encodes values >= 1")
    return 2 * (value.bit_length() - 1) + 1
