"""The advising-scheme oracle framework (Sec 1.1, "computing with advice").

An advising scheme is a pair (oracle, algorithm): the oracle observes
the entire network — topology, IDs, port mappings — but *not* the set
of initially awake nodes, and equips each node with a bit string.  The
distributed algorithm may read its own advice only.

:class:`AdviceMap` wraps the oracle output and computes the advice-
length statistics Table 1 reports (maximum and average bits per node).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional

from repro.advice.bits import Bits
from repro.errors import AdviceError
from repro.models.knowledge import NetworkSetup

Vertex = Hashable


class AdviceMap:
    """Oracle output: one :class:`Bits` string per vertex."""

    def __init__(self, advice: Dict[Vertex, Bits]):
        for v, bits in advice.items():
            if not isinstance(bits, Bits):
                raise AdviceError(
                    f"advice for {v!r} must be Bits, got "
                    f"{type(bits).__name__}"
                )
        self._advice = dict(advice)

    def __getitem__(self, v: Vertex) -> Bits:
        return self._advice[v]

    def get(self, v: Vertex, default: Optional[Bits] = None):
        return self._advice.get(v, default)

    def __contains__(self, v: Vertex) -> bool:
        return v in self._advice

    def __len__(self) -> int:
        return len(self._advice)

    def items(self):
        return self._advice.items()

    # -- the Table 1 "Advice" column ---------------------------------------
    @property
    def max_bits(self) -> int:
        """Maximum advice length over all nodes (the paper's default
        meaning of the Advice column)."""
        return max((len(b) for b in self._advice.values()), default=0)

    @property
    def total_bits(self) -> int:
        return sum(len(b) for b in self._advice.values())

    @property
    def average_bits(self) -> float:
        if not self._advice:
            return 0.0
        return self.total_bits / len(self._advice)

    def stats(self) -> Dict[str, float]:
        return {
            "advice_max_bits": float(self.max_bits),
            "advice_avg_bits": float(self.average_bits),
            "advice_total_bits": float(self.total_bits),
        }


Oracle = Callable[[NetworkSetup], AdviceMap]


def empty_advice(setup: NetworkSetup) -> AdviceMap:
    """The trivial oracle: zero bits for every node."""
    return AdviceMap({v: Bits() for v in setup.graph.vertices()})
