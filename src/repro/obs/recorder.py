"""Telemetry sinks.

A :class:`Recorder` receives structured events (:mod:`repro.obs.events`)
and scalar instruments:

* ``counter(name, inc)`` — monotonically accumulating counts;
* ``gauge(name, value)`` — last-value-wins measurements;
* ``timer(name)`` — a context manager accumulating monotonic
  wall-time into the counter ``name``.

The contract hot paths rely on: check ``recorder.enabled`` before
building an event dict.  :class:`NullRecorder` reports ``enabled =
False`` and makes every method a no-op, so the default configuration
costs one attribute read per would-be event — engine conformance
(bit-identical sweep rows with a recorder attached or not) is enforced
by ``tests/test_telemetry.py``.
"""

from __future__ import annotations

import io
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO, Union

from repro.obs.events import make_event, serialize_event


class Recorder:
    """Base telemetry sink; subclasses override :meth:`write`."""

    #: Hot paths skip event construction when this is False.
    enabled: bool = True

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}

    # -- events ----------------------------------------------------------
    def emit(self, kind: str, **fields: Any) -> None:
        """Build, validate, and sink one event."""
        self.write(make_event(kind, **fields))

    def write(self, event: Dict[str, Any]) -> None:
        raise NotImplementedError

    # -- instruments -----------------------------------------------------
    def counter(self, name: str, inc: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + inc

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def timer(self, name: str) -> "_Timer":
        """``with rec.timer("oracle"): ...`` accumulates elapsed
        monotonic seconds into counter ``name``."""
        return _Timer(self, name)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Current instrument values (counters + gauges)."""
        return {"counters": dict(self.counters), "gauges": dict(self.gauges)}

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Flush and release the sink; no-op by default."""

    def __enter__(self) -> "Recorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _Timer:
    __slots__ = ("_recorder", "_name", "_start")

    def __init__(self, recorder: Recorder, name: str):
        self._recorder = recorder
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._recorder.counter(
            self._name, time.perf_counter() - self._start
        )


class NullRecorder(Recorder):
    """The zero-overhead default: every operation is a no-op."""

    enabled = False

    def __init__(self) -> None:  # skip instrument dict allocation
        self.counters = {}
        self.gauges = {}

    def emit(self, kind: str, **fields: Any) -> None:
        pass

    def write(self, event: Dict[str, Any]) -> None:
        pass

    def counter(self, name: str, inc: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass


#: Shared no-op sink; safe to reuse everywhere (it holds no state).
NULL_RECORDER = NullRecorder()


class MemoryRecorder(Recorder):
    """Collects events in a list — the test/bench sink."""

    def __init__(self) -> None:
        super().__init__()
        self.events: List[Dict[str, Any]] = []

    def write(self, event: Dict[str, Any]) -> None:
        self.events.append(event)

    def kinds(self) -> List[str]:
        return [e["kind"] for e in self.events]

    def of_kind(self, kind: str) -> List[Dict[str, Any]]:
        return [e for e in self.events if e["kind"] == kind]


class JsonlRecorder(Recorder):
    """Streams events to a JSONL file, one line per event.

    Lines are written under a lock (the executor's completion callbacks
    and a progress thread may interleave) and flushed per event so a
    crashed sweep leaves a readable prefix — the flight-recorder
    property the whole layer exists for.
    """

    def __init__(self, target: Union[str, Path, TextIO]):
        super().__init__()
        if isinstance(target, (str, Path)):
            path = Path(target)
            if path.parent != Path(""):
                path.parent.mkdir(parents=True, exist_ok=True)
            self._fh: TextIO = open(path, "w", encoding="utf-8")
            self._owns_fh = True
            self.path: Optional[Path] = path
        else:
            self._fh = target
            self._owns_fh = False
            self.path = None
        self._lock = threading.Lock()
        self._closed = False

    def write(self, event: Dict[str, Any]) -> None:
        line = serialize_event(event)
        with self._lock:
            if self._closed:
                return
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._fh.flush()
            except (OSError, ValueError, io.UnsupportedOperation):
                pass
            if self._owns_fh:
                self._fh.close()
