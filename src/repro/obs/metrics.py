"""Aggregated metrics: labeled counters, gauges, and histograms.

PR 2's :mod:`repro.obs` emits per-event JSONL but nothing accumulates —
cache hit-rates, queue depths, and event-rate *distributions* (the
quantities the full paper's regime analysis needs) had to be re-derived
from raw streams.  This module is the aggregation layer: a
process-wide :class:`MetricsRegistry` of named instrument families,
each fanning out into labeled series:

* :class:`Counter` — monotonically accumulating totals
  (``repro_engine_messages_total{engine="async"}``);
* :class:`Gauge` — last-value / peak measurements
  (``repro_executor_workers``);
* :class:`Histogram` — **fixed-bucket** distributions.  Bucket bounds
  are chosen once per family (from :data:`CATALOG` or the first
  ``buckets=`` argument) and never adapt to the data, so snapshots are
  deterministic and two registries merge bucket-by-bucket — the
  property the fork-based executor relies on to aggregate worker
  deltas exactly.

Determinism contract (same as PR 2's telemetry): metrics observe, they
never participate — no instrument value ever enters a result row.
Series whose family name ends in ``_seconds`` carry wall-clock
measurements and are therefore nondeterministic; *everything else*
(event counts, message totals, cache hits, frontier-size buckets) is
bit-identical across identical runs.  ``snapshot(deterministic_only=
True)`` drops the ``_seconds`` families, which is what the determinism
conformance tests compare.

Zero-overhead discipline: the module-global registry starts as
:data:`NULL_REGISTRY` (``enabled = False``; every instrument method is
a no-op).  Hot loops hoist one ``enabled`` check per run — exactly the
``NullRecorder`` pattern — so the engine bench gate sees no cost until
someone opts in via :func:`set_global_registry` (the CLI ``--metrics``
flag does this).

Export surfaces:

* :func:`MetricsRegistry.snapshot` — a plain, JSON-able dict (the
  ``metrics_snapshot`` telemetry event payload and the ``repro metrics
  dump`` file format);
* :func:`render_prometheus` — Prometheus text exposition format
  (cumulative ``_bucket`` series, ``_sum``/``_count``);
* :func:`histogram_quantile` — p50/p99 estimation from bucket counts
  (what ``repro top`` renders).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

SNAPSHOT_SCHEMA = 1

# ----------------------------------------------------------------------
# Bucket vocabularies (fixed => snapshots merge exactly)
# ----------------------------------------------------------------------
#: Powers of two for size-like quantities (messages, events, frontier
#: sizes, queue depths).  21 bounds: 1 .. 2^20, plus the implicit +Inf.
SIZE_BUCKETS: Tuple[float, ...] = tuple(float(1 << i) for i in range(21))

#: Powers of two for round/time-complexity quantities (model time, not
#: wall time): 1 .. 4096.
ROUND_BUCKETS: Tuple[float, ...] = tuple(float(1 << i) for i in range(13))

#: Wall-clock durations in seconds (1ms .. 60s); families using these
#: must end in ``_seconds`` so they are excluded from the determinism
#: contract.
SECONDS_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: The instrument catalog: every family this codebase emits, with its
#: type, help text, and (for histograms) bucket bounds.  This is the
#: single source the Prometheus exporter reads HELP/TYPE lines from and
#: the table ``docs/observability.md`` documents.  Families not listed
#: here may still be created ad hoc (type inferred from the accessor,
#: histograms get SIZE_BUCKETS).
CATALOG: Dict[str, Dict[str, Any]] = {
    # -- engines (labels: engine) --------------------------------------
    "repro_engine_runs_total": {
        "type": "counter", "help": "Engine executions completed."},
    "repro_engine_events_total": {
        "type": "counter",
        "help": "Engine work units processed (heap events / rounds)."},
    "repro_engine_messages_total": {
        "type": "counter", "help": "Messages sent across all runs."},
    "repro_engine_bits_total": {
        "type": "counter", "help": "Message bits sent across all runs."},
    "repro_engine_frontier_size": {
        "type": "histogram", "buckets": SIZE_BUCKETS,
        "help": "Per-round frontier / in-flight batch sizes "
                "(sync & bulk: messages in flight per round; async: "
                "event-queue depth sampled at the heartbeat cadence)."},
    # -- runner (labels: algorithm, engine) ----------------------------
    "repro_runs_total": {
        "type": "counter",
        "help": "End-to-end run_wakeup executions per algorithm."},
    "repro_run_messages": {
        "type": "histogram", "buckets": SIZE_BUCKETS,
        "help": "Message complexity distribution, one sample per run."},
    "repro_run_time": {
        "type": "histogram", "buckets": ROUND_BUCKETS,
        "help": "Time complexity distribution (tau-normalized / "
                "rounds), one sample per run."},
    # -- executor ------------------------------------------------------
    "repro_executor_cells_total": {
        "type": "counter",
        "help": "Terminal cell outcomes (labels: status, cached)."},
    "repro_executor_cell_retries_total": {
        "type": "counter",
        "help": "Isolated re-attempts after a worker death."},
    "repro_executor_cells_queued": {
        "type": "gauge",
        "help": "Cache-miss cells submitted to the pool this sweep."},
    "repro_executor_workers": {
        "type": "gauge", "help": "Configured worker process count."},
    "repro_executor_cell_seconds": {
        "type": "histogram", "buckets": SECONDS_BUCKETS,
        "help": "Executed-cell wall durations (nondeterministic)."},
    "repro_executor_wall_seconds": {
        "type": "gauge",
        "help": "Wall time of the last sweep (nondeterministic)."},
    "repro_phase_seconds": {
        "type": "histogram", "buckets": SECONDS_BUCKETS,
        "help": "Per-phase wall-time spans from cell profiles "
                "(labels: phase; nondeterministic)."},
    # -- artifact stores -----------------------------------------------
    "repro_cellcache_fetch_total": {
        "type": "counter",
        "help": "Cell result-cache lookups (labels: outcome=hit|miss)."},
    "repro_topology_fetch_total": {
        "type": "counter",
        "help": "Compiled-topology fetches "
                "(labels: tier=build|hit_mem|hit_disk)."},
    "repro_replay_store_total": {
        "type": "counter",
        "help": "Schedule-replay artifacts (labels: op=save|load)."},
    # -- repro.check ---------------------------------------------------
    "repro_check_schedules_total": {
        "type": "counter", "help": "Schedules explored."},
    "repro_check_states_total": {
        "type": "counter", "help": "Distinct states visited."},
    "repro_check_dedup_hits_total": {
        "type": "counter", "help": "State-fingerprint dedup prunes."},
    "repro_check_sleep_prunes_total": {
        "type": "counter", "help": "Sleep-set (POR) prunes."},
    "repro_worstcase_evaluations_total": {
        "type": "counter", "help": "Worst-case search evaluations."},
    "repro_shrink_iterations_total": {
        "type": "counter", "help": "Counterexample shrink test runs."},
    # -- repro.opt (adversary optimizers + frontier atlas) -------------
    "repro_opt_generations_total": {
        "type": "counter",
        "help": "Optimizer generations completed (labels: optimizer)."},
    "repro_opt_evaluations_total": {
        "type": "counter",
        "help": "Candidate genomes scored, duplicates included "
                "(labels: optimizer)."},
    "repro_opt_best_score": {
        "type": "gauge",
        "help": "Running incumbent score of the last optimizer run "
                "(labels: optimizer, objective)."},
    "repro_opt_atlas_merges_total": {
        "type": "counter",
        "help": "Atlas merge outcomes (labels: "
                "outcome=new|improved|kept)."},
    # -- repro.serve (the job daemon) ----------------------------------
    "repro_serve_jobs_total": {
        "type": "counter",
        "help": "Serve jobs reaching a terminal state (labels: "
                "status=done|failed|timeout|rejected|deduped)."},
    "repro_serve_queue_depth": {
        "type": "gauge",
        "help": "Jobs admitted but not yet finished (queued + "
                "running)."},
    "repro_serve_job_seconds": {
        "type": "histogram", "buckets": SECONDS_BUCKETS,
        "help": "Job wall-clock latency, admission to terminal state "
                "(nondeterministic)."},
}

_TIMING_SUFFIX = "_seconds"


def is_timing(name: str) -> bool:
    """True for wall-clock families excluded from the determinism
    contract (name convention: ``*_seconds``)."""
    return name.endswith(_TIMING_SUFFIX)


def series_key(name: str, labels: Mapping[str, str]) -> str:
    """Canonical series identifier: ``name{k="v",...}`` with label keys
    sorted — the snapshot dict key and the Prometheus series name."""
    if not labels:
        return name
    inner = ",".join(
        f'{k}="{labels[k]}"' for k in sorted(labels)
    )
    return f"{name}{{{inner}}}"


def parse_series_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Inverse of :func:`series_key` (labels values must not contain
    quotes or commas — true for every label this codebase emits)."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels: Dict[str, str] = {}
    for part in rest.rstrip("}").split(","):
        if not part:
            continue
        k, _, v = part.partition("=")
        labels[k] = v.strip('"')
    return name, labels


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
class Counter:
    """One monotonically increasing series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """One last-value-wins series (with a peak helper)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def max(self, value: float) -> None:
        if value > self.value:
            self.value = float(value)


class Histogram:
    """One fixed-bucket series.

    ``counts[i]`` holds observations with ``value <= bounds[i]`` (and
    greater than the previous bound); ``counts[-1]`` is the +Inf
    overflow bucket.  Counts are stored *non-cumulative* — cheap to
    merge — and cumulated only at Prometheus render time.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Iterable[float]):
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly ascending")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1


class _NullInstrument:
    """Shared no-op stand-in for every instrument type."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def max(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()

_TYPES = ("counter", "gauge", "histogram")


class _Family:
    """All series of one name: shared type, help, buckets."""

    __slots__ = ("name", "type", "help", "buckets", "series")

    def __init__(self, name: str, kind: str,
                 buckets: Optional[Tuple[float, ...]] = None):
        meta = CATALOG.get(name, {})
        self.name = name
        self.type = kind
        self.help = meta.get("help", "")
        if kind == "histogram":
            self.buckets = tuple(
                buckets
                if buckets is not None
                else meta.get("buckets", SIZE_BUCKETS)
            )
        else:
            self.buckets = None
        self.series: Dict[str, Any] = {}

    def child(self, labels: Mapping[str, str]):
        key = series_key(self.name, labels)
        inst = self.series.get(key)
        if inst is None:
            if self.type == "counter":
                inst = Counter()
            elif self.type == "gauge":
                inst = Gauge()
            else:
                inst = Histogram(self.buckets)
            self.series[key] = inst
        return inst


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
class MetricsRegistry:
    """A process-wide (or per-worker) set of instrument families.

    Accessors create families and labeled children on demand and are
    cheap enough for warm paths; hot loops should hold the returned
    child and call ``inc``/``observe`` on it directly::

        frontier = reg.histogram("repro_engine_frontier_size",
                                 engine="sync")
        for round in ...:
            frontier.observe(len(in_flight))
    """

    enabled: bool = True

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    # -- accessors -------------------------------------------------------
    def _family(self, name: str, kind: str,
                buckets: Optional[Tuple[float, ...]] = None) -> _Family:
        fam = self._families.get(name)
        if fam is None:
            fam = _Family(name, kind, buckets)
            self._families[name] = fam
        elif fam.type != kind:
            raise ValueError(
                f"instrument {name!r} is a {fam.type}, not a {kind}"
            )
        return fam

    def counter(self, name: str, **labels: str) -> Counter:
        return self._family(name, "counter").child(labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._family(name, "gauge").child(labels)

    def histogram(
        self,
        name: str,
        buckets: Optional[Iterable[float]] = None,
        **labels: str,
    ) -> Histogram:
        b = tuple(buckets) if buckets is not None else None
        return self._family(name, "histogram", b).child(labels)

    # -- snapshot / merge ------------------------------------------------
    def snapshot(self, deterministic_only: bool = False) -> Dict[str, Any]:
        """Plain JSON-able view of every series, keys sorted.

        ``deterministic_only`` drops the ``*_seconds`` families — the
        remainder is bit-identical across identical runs (the metrics
        determinism conformance contract).
        """
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        for name in sorted(self._families):
            if deterministic_only and is_timing(name):
                continue
            fam = self._families[name]
            for key in sorted(fam.series):
                inst = fam.series[key]
                if fam.type == "counter":
                    counters[key] = inst.value
                elif fam.type == "gauge":
                    gauges[key] = inst.value
                else:
                    histograms[key] = {
                        "le": list(inst.bounds),
                        "counts": list(inst.counts),
                        "sum": inst.sum,
                        "count": inst.count,
                    }
        return {
            "schema": SNAPSHOT_SCHEMA,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def merge_snapshot(self, snap: Mapping[str, Any]) -> None:
        """Fold another registry's snapshot into this one — counters and
        histogram buckets add, gauges keep the max.  This is how the
        executor aggregates worker deltas exactly under fork: fixed
        buckets guarantee bucket-by-bucket alignment."""
        for key, value in snap.get("counters", {}).items():
            name, labels = parse_series_key(key)
            self.counter(name, **labels).value += float(value)
        for key, value in snap.get("gauges", {}).items():
            name, labels = parse_series_key(key)
            self.gauge(name, **labels).max(float(value))
        for key, h in snap.get("histograms", {}).items():
            name, labels = parse_series_key(key)
            inst = self.histogram(name, buckets=h["le"], **labels)
            if list(inst.bounds) != [float(b) for b in h["le"]]:
                raise ValueError(
                    f"histogram {key!r} bucket bounds differ; "
                    "cannot merge"
                )
            for i, c in enumerate(h["counts"]):
                inst.counts[i] += int(c)
            inst.sum += float(h["sum"])
            inst.count += int(h["count"])


class NullRegistry(MetricsRegistry):
    """The zero-overhead default: accessors hand back one shared no-op
    instrument; ``enabled = False`` lets hot paths skip instrumentation
    entirely (the ``NULL_RECORDER`` pattern)."""

    enabled = False

    def counter(self, name: str, **labels: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def histogram(self, name, buckets=None, **labels):  # type: ignore[override]
        return _NULL_INSTRUMENT


#: Shared disabled registry; safe to reuse (it holds no state).
NULL_REGISTRY = NullRegistry()

_global_registry: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The process-global registry (``NULL_REGISTRY`` until someone
    opts in)."""
    return _global_registry


def set_global_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` as the process-global sink (``None`` resets
    to the disabled default); returns the previous one so callers can
    restore it — the worker entry point swaps a fresh registry in for
    the duration of a cell and ships the delta back to the parent."""
    global _global_registry
    previous = _global_registry
    _global_registry = registry if registry is not None else NULL_REGISTRY
    return previous


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def _fmt(value: float) -> str:
    """Prometheus number formatting: integers without the trailing .0."""
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _fmt_bound(bound: float) -> str:
    return "+Inf" if bound == float("inf") else _fmt(bound)


def render_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Prometheus text exposition format for a snapshot dict.

    Emits ``# HELP`` / ``# TYPE`` once per family (help text from
    :data:`CATALOG`), then one line per series; histograms render as
    cumulative ``_bucket`` series ending in ``le="+Inf"`` plus
    ``_sum`` and ``_count``.
    """
    lines: List[str] = []
    seen_types: set = set()

    def _header(name: str, kind: str) -> None:
        if name in seen_types:
            return
        seen_types.add(name)
        help_text = CATALOG.get(name, {}).get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    for key, value in snapshot.get("counters", {}).items():
        name, _ = parse_series_key(key)
        _header(name, "counter")
        lines.append(f"{key} {_fmt(value)}")
    for key, value in snapshot.get("gauges", {}).items():
        name, _ = parse_series_key(key)
        _header(name, "gauge")
        lines.append(f"{key} {_fmt(value)}")
    for key, h in snapshot.get("histograms", {}).items():
        name, labels = parse_series_key(key)
        _header(name, "histogram")
        cumulative = 0
        for bound, count in zip(
            list(h["le"]) + [float("inf")], h["counts"]
        ):
            cumulative += int(count)
            lbl = dict(labels)
            lbl["le"] = _fmt_bound(float(bound))
            lines.append(
                f"{series_key(name + '_bucket', lbl)} {cumulative}"
            )
        lines.append(f"{series_key(name + '_sum', labels)} {_fmt(h['sum'])}")
        lines.append(
            f"{series_key(name + '_count', labels)} {int(h['count'])}"
        )
    return "\n".join(lines) + ("\n" if lines else "")


def histogram_quantile(hist: Mapping[str, Any], q: float) -> float:
    """Estimate the q-quantile (0 < q <= 1) of a snapshot histogram by
    linear interpolation within its bucket, the standard Prometheus
    estimator.  Observations in the +Inf bucket clamp to the largest
    finite bound.  Returns 0.0 for an empty histogram."""
    total = int(hist["count"])
    if total <= 0:
        return 0.0
    bounds = [float(b) for b in hist["le"]]
    counts = [int(c) for c in hist["counts"]]
    target = q * total
    cumulative = 0
    for i, count in enumerate(counts):
        if count == 0:
            continue
        if cumulative + count >= target:
            if i >= len(bounds):  # +Inf bucket
                return bounds[-1] if bounds else 0.0
            lo = bounds[i - 1] if i > 0 else 0.0
            hi = bounds[i]
            frac = (target - cumulative) / count
            return lo + (hi - lo) * frac
        cumulative += count
    return bounds[-1] if bounds else 0.0


def validate_snapshot(snap: Any) -> List[str]:
    """Schema violations in a snapshot dict (empty list = valid) —
    shared by ``scripts/check_metrics.py`` and the telemetry stream
    validator's ``metrics_snapshot`` handling."""
    errors: List[str] = []
    if not isinstance(snap, Mapping):
        return ["snapshot is not an object"]
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(snap.get(section), Mapping):
            errors.append(f"missing/invalid section {section!r}")
    if errors:
        return errors
    for key, value in snap["counters"].items():
        if not isinstance(value, (int, float)) or value < 0:
            errors.append(f"counter {key!r}: non-numeric or negative")
    for key, value in snap["gauges"].items():
        if not isinstance(value, (int, float)):
            errors.append(f"gauge {key!r}: non-numeric")
    for key, h in snap["histograms"].items():
        if not isinstance(h, Mapping):
            errors.append(f"histogram {key!r}: not an object")
            continue
        le = h.get("le")
        counts = h.get("counts")
        if not isinstance(le, list) or not isinstance(counts, list):
            errors.append(f"histogram {key!r}: missing le/counts")
            continue
        floats = [float(b) for b in le]
        if floats != sorted(set(floats)):
            errors.append(f"histogram {key!r}: bounds not ascending")
        if len(counts) != len(le) + 1:
            errors.append(
                f"histogram {key!r}: {len(counts)} buckets for "
                f"{len(le)} bounds (want bounds + 1)"
            )
        if any((not isinstance(c, int)) or c < 0 for c in counts):
            errors.append(f"histogram {key!r}: negative/non-int count")
        elif h.get("count") != sum(counts):
            errors.append(
                f"histogram {key!r}: count {h.get('count')} != "
                f"bucket sum {sum(counts)}"
            )
        if not isinstance(h.get("sum"), (int, float)):
            errors.append(f"histogram {key!r}: non-numeric sum")
    return errors
