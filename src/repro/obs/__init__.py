"""Telemetry subsystem: structured run events, per-phase profiling,
and live sweep progress.

Three layers, cheap by default:

* :mod:`repro.obs.events` — the stable, schema-versioned vocabulary of
  run events (``run_start``, ``phase_end``, ``cell_timeout``, ...)
  serialized as JSONL;
* :mod:`repro.obs.recorder` — the :class:`Recorder` sink protocol with
  counters, gauges, and monotonic timers.  The default
  :data:`NULL_RECORDER` is a no-op whose ``enabled`` flag lets hot
  paths skip event construction entirely, so an un-instrumented run
  pays nothing;
* :mod:`repro.obs.phases` — the :class:`PhaseTracker` that both
  engines own: algorithm code opens ``ctx.phase("dfs-token")`` spans
  and the tracker attributes wall-time and message counts to them
  (accumulated in :class:`~repro.sim.metrics.Metrics` even without an
  active recorder, so benches always see a profile).

:mod:`repro.obs.progress` renders live sweep progress (done/failed/
cached counts, throughput, ETA, slowest-cell watchlist) from the
per-cell callbacks of the parallel executor.

:mod:`repro.obs.metrics` is the aggregation layer on top: a
process-wide :class:`~repro.obs.metrics.MetricsRegistry` of labeled
counters/gauges/fixed-bucket histograms with deterministic, mergeable
snapshots, exported as Prometheus text, JSON (``repro metrics dump``),
or the live ``repro top`` view (:mod:`repro.obs.top`).

See ``docs/observability.md`` for the event schema and the phase-hook
guide for algorithm authors.
"""

from repro.obs.events import (
    EVENT_KINDS,
    SCHEMA_VERSION,
    make_event,
    parse_line,
    validate_event,
)
from repro.obs.metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    render_prometheus,
    set_global_registry,
)
from repro.obs.phases import PhaseTracker
from repro.obs.progress import SweepProgress
from repro.obs.recorder import (
    NULL_RECORDER,
    JsonlRecorder,
    MemoryRecorder,
    NullRecorder,
    Recorder,
)

__all__ = [
    "EVENT_KINDS",
    "SCHEMA_VERSION",
    "make_event",
    "parse_line",
    "validate_event",
    "NULL_REGISTRY",
    "MetricsRegistry",
    "NullRegistry",
    "get_registry",
    "render_prometheus",
    "set_global_registry",
    "PhaseTracker",
    "SweepProgress",
    "NULL_RECORDER",
    "JsonlRecorder",
    "MemoryRecorder",
    "NullRecorder",
    "Recorder",
]
