"""Live sweep progress rendering.

The :class:`~repro.experiments.parallel.ParallelSweepExecutor` calls a
progress object — any object with ``start``/``cell``/``finish``
methods — as cells complete.  :class:`SweepProgress` is the terminal
implementation: a single status line with completion counts, cell
throughput, an ETA, and a watchlist of the slowest cells seen so far
(the cells worth staring at when a sweep drags).

On a TTY the line redraws in place (``\\r``); on a non-TTY stream
(CI logs) updates are throttled to one full line per
``non_tty_interval`` seconds so logs stay readable.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Optional, TextIO, Tuple


#: Below this much elapsed wall-time a cells/s figure is meaningless
#: (the first tick can land microseconds after ``start``, and dividing
#: by a near-zero elapsed renders absurd rates like 1e9 cell/s).
_MIN_RATE_ELAPSED = 1e-3


def _fmt_eta(seconds: float) -> str:
    if seconds != seconds or seconds < 0 or seconds == float("inf"):
        return "?"
    seconds = int(round(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


class SweepProgress:
    """Renders executor progress to a terminal stream."""

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        min_interval: float = 0.1,
        non_tty_interval: float = 2.0,
        watchlist: int = 3,
    ):
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.non_tty_interval = non_tty_interval
        self.watch_size = watchlist
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._total = 0
        self._done = 0
        self._ok = 0
        self._failed = 0
        self._cached = 0
        self._t0 = 0.0
        self._last_render = 0.0
        self._last_len = 0
        # (duration, label) of the slowest executed cells, descending.
        self._slowest: List[Tuple[float, str]] = []

    # -- executor callbacks ---------------------------------------------
    def start(self, total: int, workers: int) -> None:
        self._total = total
        self._t0 = time.perf_counter()
        self._last_render = 0.0

    def cell(self, outcome: Any) -> None:
        """One finished cell; ``outcome`` is a
        :class:`~repro.experiments.parallel.CellOutcome`."""
        self._done += 1
        if outcome.ok:
            self._ok += 1
        else:
            self._failed += 1
        if outcome.cached:
            self._cached += 1
        elif outcome.duration > 0:
            label = f"n={outcome.spec.n}#{outcome.spec.trial}"
            if not outcome.ok:
                label += f"[{outcome.status}]"
            self._slowest.append((outcome.duration, label))
            self._slowest.sort(reverse=True)
            del self._slowest[self.watch_size:]
        self._render()

    def finish(self, stats: Dict[str, float]) -> None:
        self._render(final=True)
        if self._tty and self._last_len:
            self.stream.write("\n")
            self.stream.flush()

    # -- rendering -------------------------------------------------------
    def render_line(self) -> str:
        elapsed = time.perf_counter() - self._t0
        if self._done > 0 and elapsed >= _MIN_RATE_ELAPSED:
            rate = self._done / elapsed
            rate_str = f"{rate:.1f}"
            eta = _fmt_eta((self._total - self._done) / rate)
        else:
            # First tick / nothing done yet: no meaningful rate.
            rate_str, eta = "?", "?"
        line = (
            f"cells {self._done}/{self._total} "
            f"(ok {self._ok}, failed {self._failed}, "
            f"cached {self._cached}) | {rate_str} cell/s | eta {eta}"
        )
        if self._slowest:
            watch = ", ".join(
                f"{label} {dur:.2f}s" for dur, label in self._slowest
            )
            line += f" | slowest: {watch}"
        return line

    def _render(self, final: bool = False) -> None:
        now = time.perf_counter()
        interval = (
            self.min_interval if self._tty else self.non_tty_interval
        )
        if not final and now - self._last_render < interval:
            return
        self._last_render = now
        line = self.render_line()
        if self._tty:
            pad = " " * max(0, self._last_len - len(line))
            self.stream.write("\r" + line + pad)
            self._last_len = len(line)
        else:
            self.stream.write(line + "\n")
        self.stream.flush()
