"""Per-phase attribution of wall-time and message counts.

The full paper reasons about *phases* of an execution — awake-distance
growth, token traversals, advice decoding — that total metrics
collapse.  A :class:`PhaseTracker` makes them measurable: each engine
owns one, node code opens spans through
:meth:`repro.sim.node.NodeContext.phase`, and on span exit the tracker
attributes

* **wall-time** — monotonic seconds inside the span — and
* **messages** — sends queued on the opening node's outbox during the
  span, plus any sends the engine flushed while it was open

to the phase name in :class:`~repro.sim.metrics.Metrics` (so profiles
exist even with the default :class:`~repro.obs.recorder.NullRecorder`)
and, when a recorder is enabled, emits ``phase_start``/``phase_end``
events.

Spans nest; attribution is *inclusive* (an outer phase's totals
contain its inner phases'), matching how profiler call trees read.
Wall-times are wall-clock and therefore not deterministic; message
counts and entry counts are, and only those may be asserted by tests.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.sim.metrics import Metrics


class _PhaseSpan:
    """One ``with``-block of a named phase."""

    __slots__ = ("_tracker", "_name", "_outbox")

    def __init__(self, tracker: "PhaseTracker", name: str, outbox):
        self._tracker = tracker
        self._name = name
        self._outbox = outbox

    def __enter__(self) -> "_PhaseSpan":
        self._tracker._start(self._name, self._outbox)
        return self

    def __exit__(self, *exc) -> None:
        self._tracker._stop()


class _NullSpan:
    """Reusable no-op span for contexts without a tracker."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


NULL_SPAN = _NullSpan()


class PhaseTracker:
    """Engine-owned stack of open phase spans.

    Parameters
    ----------
    metrics:
        The engine's accumulator; receives
        :meth:`~repro.sim.metrics.Metrics.record_phase` on span exit.
    recorder:
        Event sink; ``phase_start``/``phase_end`` are only emitted when
        it is enabled.
    fields:
        Static context (``n``, ``algorithm``, ...) attached to every
        emitted phase event.
    """

    __slots__ = ("metrics", "recorder", "fields", "_stack")

    def __init__(
        self,
        metrics: Metrics,
        recorder: Recorder = NULL_RECORDER,
        fields: Optional[Dict[str, Any]] = None,
    ):
        self.metrics = metrics
        self.recorder = recorder
        self.fields = fields or {}
        # (name, t0, messages_total snapshot, outbox, outbox-len snapshot)
        self._stack: List[Tuple[str, float, int, Any, int]] = []

    # ------------------------------------------------------------------
    def span(self, name: str, outbox=None) -> _PhaseSpan:
        """A context manager for one phase entry.  ``outbox`` is the
        opening node's send queue (sends land there during callbacks
        and are flushed by the engine only afterwards)."""
        return _PhaseSpan(self, name, outbox)

    @property
    def current(self) -> Optional[str]:
        return self._stack[-1][0] if self._stack else None

    @property
    def depth(self) -> int:
        return len(self._stack)

    # ------------------------------------------------------------------
    def _start(self, name: str, outbox) -> None:
        self._stack.append(
            (
                name,
                time.perf_counter(),
                self.metrics.messages_total,
                outbox,
                len(outbox) if outbox is not None else 0,
            )
        )
        if self.recorder.enabled:
            self.recorder.emit(
                "phase_start", phase=name, depth=len(self._stack),
                **self.fields,
            )

    def _stop(self) -> None:
        name, t0, msgs0, outbox, out0 = self._stack.pop()
        elapsed = time.perf_counter() - t0
        messages = self.metrics.messages_total - msgs0
        if outbox is not None:
            messages += len(outbox) - out0
        self.metrics.record_phase(name, elapsed, messages)
        if self.recorder.enabled:
            self.recorder.emit(
                "phase_end",
                phase=name,
                elapsed=elapsed,
                messages=messages,
                entries=1,
                depth=len(self._stack) + 1,
                **self.fields,
            )
