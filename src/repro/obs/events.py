"""The telemetry event vocabulary.

Every telemetry record is one JSON object per line (JSONL) with three
envelope fields — ``schema`` (an integer, :data:`SCHEMA_VERSION`),
``kind`` (one of :data:`EVENT_KINDS`), ``ts`` (wall-clock seconds since
the epoch, for humans; ordering within a stream is by line, not by
``ts``) — plus the kind's required payload fields and any number of
optional context fields (``key``, ``n``, ``algorithm``, ...).

The schema is append-only: new kinds and new *optional* fields may be
added, required fields of existing kinds never change without a
version bump.  ``scripts/check_telemetry.py`` validates a stream
against this module, and :func:`validate_event` is the single source
of truth it uses.

Event kinds
-----------

==============  ====================================================
``sweep_start``  a :class:`ParallelSweepExecutor` run begins
``sweep_end``    ... and ends (carries the executor stats)
``cell_start``   one sweep cell is published (cached or executed)
``cell_end``     terminal: the cell finished ok / failed / crashed
``cell_retry``   a crashed cell is being re-attempted
``cell_timeout`` terminal: the cell exceeded its wall-clock budget
``run_start``    one engine execution begins (runner-level)
``run_end``      ... and ends
``phase_start``  a live phase span opens (in-process runs only)
``phase_end``    a phase span closed; per-cell events from the
                 executor are *aggregates* over the whole cell
``engine_step``  throttled engine-loop heartbeat
``topology_stats`` compiled-topology cache totals for one sweep
                 (builds vs memory/disk hits), emitted just before
                 ``sweep_end``
``check_stats``  one schedule-space exploration finished
                 (:func:`repro.check.explorer.explore` totals)
``worstcase_stats`` one worst-case schedule search finished
``opt_generation`` one adversary-optimizer generation was evaluated
                 (:func:`repro.opt.evaluate.optimize`; carries the
                 generation's best and the running incumbent score)
``shrink_stats`` one counterexample was minimized
``metrics_snapshot`` a :class:`repro.obs.metrics.MetricsRegistry`
                 snapshot (counters/gauges/histograms sections),
                 emitted at sweep end when metrics are enabled
``job_queued``   a :mod:`repro.serve` job passed admission control
``job_start``    ... and began executing on the job runner
``job_end``      terminal: the job finished (status ``done`` /
                 ``failed`` / ``timeout``)
``job_rejected`` terminal: admission control refused the job
==============  ====================================================

A cell reaches exactly one terminal event: ``cell_end`` (status
``ok``/``failed``/``crashed``) or ``cell_timeout``.  A ``job_*``
lifecycle (the :mod:`repro.serve` daemon's wire format) nests the cell
lifecycle: ``job_queued`` → ``job_start`` → per-cell events →
``job_end``; a stream may interleave many jobs, so the same cell key
can legitimately start (and terminate) once per job that touches it.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List

SCHEMA_VERSION = 1

# kind -> required payload fields (beyond the envelope).
EVENT_KINDS: Dict[str, tuple] = {
    "sweep_start": ("cells", "workers"),
    "sweep_end": ("cells", "executed", "cached", "ok", "failed",
                  "wall_time"),
    "cell_start": ("key", "algorithm", "n", "trial", "seed", "engine",
                   "cached"),
    "cell_end": ("key", "status", "cached", "duration"),
    "cell_retry": ("key", "attempt"),
    "cell_timeout": ("key", "duration", "budget"),
    "run_start": ("algorithm", "engine", "n", "seed"),
    "run_end": ("algorithm", "engine", "n", "messages", "time",
                "all_awake"),
    "phase_start": ("phase",),
    "phase_end": ("phase", "elapsed", "messages", "entries"),
    "engine_step": ("events", "now", "awake"),
    "topology_stats": ("build", "hit_mem", "hit_disk"),
    "check_stats": ("algorithm", "schedules", "states", "pruned_sleep",
                    "pruned_state", "violations", "max_depth",
                    "completed"),
    "worstcase_stats": ("algorithm", "objective", "evaluations",
                        "best_score", "policy"),
    "opt_generation": ("optimizer", "generation", "population", "best",
                       "incumbent"),
    "shrink_stats": ("invariant", "tests", "from_len", "to_len",
                     "reduction"),
    "metrics_snapshot": ("counters", "gauges", "histograms"),
    "job_queued": ("job", "job_kind", "queue_depth"),
    "job_start": ("job", "job_kind"),
    "job_end": ("job", "status", "duration"),
    "job_rejected": ("job", "reason"),
}

#: Statuses a ``cell_end`` event may carry.
CELL_END_STATUSES = ("ok", "failed", "crashed")

#: Kinds that close a cell's lifecycle.
TERMINAL_CELL_KINDS = ("cell_end", "cell_timeout")


def make_event(kind: str, **fields: Any) -> Dict[str, Any]:
    """Build one schema-conformant event dict.

    Raises ``ValueError`` for an unknown kind or a missing required
    field — emit sites fail loudly rather than producing records the
    validator would reject later.
    """
    try:
        required = EVENT_KINDS[kind]
    except KeyError:
        raise ValueError(f"unknown telemetry event kind {kind!r}") from None
    missing = [f for f in required if f not in fields]
    if missing:
        raise ValueError(
            f"event {kind!r} is missing required fields {missing}"
        )
    event: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "ts": time.time(),
    }
    event.update(fields)
    return event


def validate_event(event: Any) -> List[str]:
    """Return a list of schema violations (empty = valid)."""
    errors: List[str] = []
    if not isinstance(event, dict):
        return [f"event is {type(event).__name__}, not an object"]
    kind = event.get("kind")
    if kind not in EVENT_KINDS:
        errors.append(f"unknown kind {kind!r}")
        return errors
    schema = event.get("schema")
    if schema != SCHEMA_VERSION:
        errors.append(
            f"schema version {schema!r} != {SCHEMA_VERSION} ({kind})"
        )
    if not isinstance(event.get("ts"), (int, float)):
        errors.append(f"missing/non-numeric ts ({kind})")
    for field in EVENT_KINDS[kind]:
        if field not in event:
            errors.append(f"{kind}: missing required field {field!r}")
    if kind == "cell_end":
        status = event.get("status")
        if status not in CELL_END_STATUSES:
            errors.append(f"cell_end: invalid status {status!r}")
    return errors


def serialize_event(event: Dict[str, Any]) -> str:
    """One JSONL line (no trailing newline); keys sorted for stable
    diffs."""
    return json.dumps(event, sort_keys=True, default=repr)


def parse_line(line: str) -> Dict[str, Any]:
    """Inverse of :func:`serialize_event`; raises on malformed JSON."""
    event = json.loads(line)
    if not isinstance(event, dict):
        raise ValueError("telemetry line is not a JSON object")
    return event
