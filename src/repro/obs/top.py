"""``repro top`` — a live terminal dashboard over the metrics registry.

Renders a multi-line panel from successive
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dicts: executor
throughput (cells done, cells/s since the previous frame), cache
hit-rates (cell result cache + topology store), engine totals, and
per-phase p50/p99 estimated from histogram buckets.

Two entry points:

* :class:`TopView` — a progress-protocol object (``start``/``cell``/
  ``finish``) usable as the executor's live display via
  ``repro sweep --progress top``; it samples the registry on each cell
  callback (throttled) and redraws in place with ANSI cursor-up.
* :func:`render_top` — the pure snapshot→text renderer, also used by
  ``repro top --once FILE`` to pretty-print a dumped snapshot.  Pure
  function, so tests cover it without a TTY.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Mapping, Optional, TextIO

from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    histogram_quantile,
    parse_series_key,
)


def _rate_cell(current: float, previous: Optional[float],
               dt: float) -> str:
    if previous is None or dt <= 0:
        return "-"
    return f"{max(0.0, current - previous) / dt:.1f}/s"


def _hit_rate(hits: float, total: float) -> str:
    if total <= 0:
        return "-"
    return f"{100.0 * hits / total:.1f}%"


def _sum_matching(section: Mapping[str, float], name: str,
                  **want: str) -> float:
    """Sum every series of ``name`` whose labels include ``want``."""
    total = 0.0
    for key, value in section.items():
        n, labels = parse_series_key(key)
        if n != name:
            continue
        if all(labels.get(k) == v for k, v in want.items()):
            total += value
    return total


def render_top(
    snap: Mapping[str, Any],
    prev: Optional[Mapping[str, Any]] = None,
    dt: float = 0.0,
) -> str:
    """Render one dashboard frame from a snapshot (and optionally the
    previous frame's snapshot + elapsed seconds, for rates)."""
    counters = snap.get("counters", {})
    gauges = snap.get("gauges", {})
    hists = snap.get("histograms", {})
    prev_counters = prev.get("counters", {}) if prev else {}

    lines: List[str] = []

    # -- executor -------------------------------------------------------
    done = _sum_matching(counters, "repro_executor_cells_total")
    cached = _sum_matching(counters, "repro_executor_cells_total",
                           cached="yes")
    ok = _sum_matching(counters, "repro_executor_cells_total",
                       status="ok")
    retries = _sum_matching(counters,
                            "repro_executor_cell_retries_total")
    prev_done = (
        _sum_matching(prev_counters, "repro_executor_cells_total")
        if prev else None
    )
    workers = gauges.get("repro_executor_workers", 0)
    lines.append(
        f"executor   cells {int(done)} (ok {int(ok)}, "
        f"cached {int(cached)}, retries {int(retries)}) | "
        f"workers {int(workers)} | "
        f"rate {_rate_cell(done, prev_done, dt)}"
    )

    # -- caches ---------------------------------------------------------
    cell_hits = _sum_matching(counters, "repro_cellcache_fetch_total",
                              outcome="hit")
    cell_total = _sum_matching(counters, "repro_cellcache_fetch_total")
    topo_build = _sum_matching(counters, "repro_topology_fetch_total",
                               tier="build")
    topo_total = _sum_matching(counters, "repro_topology_fetch_total")
    lines.append(
        f"caches     cell {_hit_rate(cell_hits, cell_total)} hit "
        f"({int(cell_hits)}/{int(cell_total)}) | "
        f"topology {_hit_rate(topo_total - topo_build, topo_total)} hit "
        f"({int(topo_total - topo_build)}/{int(topo_total)})"
    )

    # -- engines --------------------------------------------------------
    events = _sum_matching(counters, "repro_engine_events_total")
    messages = _sum_matching(counters, "repro_engine_messages_total")
    runs = _sum_matching(counters, "repro_engine_runs_total")
    prev_events = (
        _sum_matching(prev_counters, "repro_engine_events_total")
        if prev else None
    )
    lines.append(
        f"engines    runs {int(runs)} | events {int(events)} "
        f"({_rate_cell(events, prev_events, dt)}) | "
        f"messages {int(messages)}"
    )

    # -- checker --------------------------------------------------------
    states = _sum_matching(counters, "repro_check_states_total")
    if states:
        scheds = _sum_matching(counters, "repro_check_schedules_total")
        dedup = _sum_matching(counters, "repro_check_dedup_hits_total")
        sleep = _sum_matching(counters, "repro_check_sleep_prunes_total")
        lines.append(
            f"check      states {int(states)} | "
            f"schedules {int(scheds)} | "
            f"pruned {int(dedup)} dedup / {int(sleep)} sleep"
        )

    # -- per-phase latency from histogram buckets -----------------------
    phase_rows: List[str] = []
    for key in sorted(hists):
        name, labels = parse_series_key(key)
        if name != "repro_phase_seconds":
            continue
        h = hists[key]
        if not h.get("count"):
            continue
        p50 = histogram_quantile(h, 0.50)
        p99 = histogram_quantile(h, 0.99)
        phase_rows.append(
            f"  {labels.get('phase', '?'):<20s} n={int(h['count']):<6d} "
            f"p50={p50 * 1e3:8.2f}ms  p99={p99 * 1e3:8.2f}ms"
        )
    if not phase_rows:
        # Fall back to executed-cell durations when phase spans are
        # absent (cached sweeps, non-profiled algorithms).
        for key in sorted(hists):
            name, _ = parse_series_key(key)
            if name != "repro_executor_cell_seconds":
                continue
            h = hists[key]
            if not h.get("count"):
                continue
            p50 = histogram_quantile(h, 0.50)
            p99 = histogram_quantile(h, 0.99)
            phase_rows.append(
                f"  {'cell':<20s} n={int(h['count']):<6d} "
                f"p50={p50 * 1e3:8.2f}ms  p99={p99 * 1e3:8.2f}ms"
            )
    if phase_rows:
        lines.append("phases     (p50/p99 from histogram buckets)")
        lines.extend(phase_rows)

    return "\n".join(lines)


class TopView:
    """Progress-protocol dashboard: redraws :func:`render_top` frames
    in place as cells complete (``repro sweep --progress top``)."""

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        registry: Optional[MetricsRegistry] = None,
        min_interval: float = 0.5,
    ):
        self.stream = stream if stream is not None else sys.stderr
        self._registry = registry
        self.min_interval = min_interval
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._last_render = 0.0
        self._last_lines = 0
        self._prev_snap: Optional[Dict[str, Any]] = None
        self._prev_t = 0.0

    def _reg(self) -> MetricsRegistry:
        return (
            self._registry
            if self._registry is not None
            else get_registry()
        )

    # -- progress protocol ----------------------------------------------
    def start(self, total: int, workers: int) -> None:
        self._last_render = 0.0
        self._prev_snap = None
        self._prev_t = time.perf_counter()

    def cell(self, outcome: Any) -> None:
        self._render()

    def finish(self, stats: Dict[str, float]) -> None:
        self._render(final=True)
        self.stream.write("\n")
        self.stream.flush()

    # -- rendering -------------------------------------------------------
    def _render(self, final: bool = False) -> None:
        now = time.perf_counter()
        if not final and now - self._last_render < self.min_interval:
            return
        self._last_render = now
        snap = self._reg().snapshot()
        frame = render_top(
            snap, prev=self._prev_snap, dt=now - self._prev_t
        )
        self._prev_snap = snap
        self._prev_t = now
        lines = frame.split("\n")
        if self._tty and self._last_lines:
            # Move the cursor back to the top of the previous frame and
            # overwrite it (clearing each line to its end).
            self.stream.write(f"\x1b[{self._last_lines}A")
            self.stream.write(
                "\n".join("\x1b[2K" + line for line in lines) + "\n"
            )
        else:
            self.stream.write(frame + "\n")
        self._last_lines = len(lines)
        self.stream.flush()
