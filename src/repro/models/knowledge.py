"""Network setups: topology + IDs + ports + knowledge/bandwidth models.

A :class:`NetworkSetup` is the complete adversary-chosen static input of
an execution (Sec 1.1): the graph, the unique node IDs (drawn from a
range polynomial in n), each node's port mapping, whether nodes know
their neighbors' IDs (KT1) or only port numbers (KT0), the bandwidth
model (LOCAL/CONGEST), and — for advising schemes — the per-node advice
strings computed by an oracle that saw everything except the awake set.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Hashable, List, Optional

from repro.errors import SimulationError
from repro.graphs.graph import Graph, Vertex
from repro.models.congest import BandwidthModel, congest_model, local_model
from repro.models.ports import PortAssignment


class Knowledge(Enum):
    """Initial-knowledge assumption (Sec 1.1)."""

    KT0 = "KT0"
    KT1 = "KT1"


@dataclass
class NetworkSetup:
    """Static inputs of a wake-up execution.

    Attributes
    ----------
    graph:
        Topology.
    ids:
        vertex -> integer ID, unique, drawn from a polynomial range.
    ports:
        Port bijections per vertex.
    knowledge:
        KT0 or KT1.
    bandwidth:
        LOCAL or CONGEST policy.
    advice:
        vertex -> advice bit string (``bytes``-free ``str`` of '0'/'1'
        is avoided; we store :class:`tuple` of ints 0/1 via the advice
        layer).  ``None`` when the scheme uses no advice.
    log2_n_bound:
        The constant-factor upper bound on log n that nodes are assumed
        to know (Sec 1.1, footnote 1 area).
    """

    graph: Graph
    ids: Dict[Vertex, int]
    ports: PortAssignment
    knowledge: Knowledge
    bandwidth: BandwidthModel
    advice: Optional[Dict[Vertex, "object"]] = None
    log2_n_bound: int = 0

    def __post_init__(self) -> None:
        n = self.graph.num_vertices
        if len(self.ids) != n:
            raise SimulationError("every vertex needs an ID")
        if len(set(self.ids.values())) != n:
            raise SimulationError("IDs must be unique")
        if self.log2_n_bound <= 0:
            self.log2_n_bound = max(1, math.ceil(math.log2(max(2, n))))
        self._vertex_of_id = {i: v for v, i in self.ids.items()}

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.graph.num_vertices

    def id_of(self, v: Vertex) -> int:
        """The unique integer ID assigned to vertex v."""
        return self.ids[v]

    def vertex_of(self, node_id: int) -> Vertex:
        """Inverse of :meth:`id_of` (engine-side lookup)."""
        try:
            return self._vertex_of_id[node_id]
        except KeyError:
            raise SimulationError(f"no vertex has ID {node_id}") from None

    def neighbor_ids(self, v: Vertex) -> List[int]:
        """IDs of v's neighbors in port order (KT1 knowledge content)."""
        return [
            self.ids[self.ports.neighbor(v, p)]
            for p in self.ports.ports(v)
        ]

    def with_advice(self, advice: Dict[Vertex, object]) -> "NetworkSetup":
        """A copy of this setup carrying oracle-computed advice."""
        return NetworkSetup(
            graph=self.graph,
            ids=self.ids,
            ports=self.ports,
            knowledge=self.knowledge,
            bandwidth=self.bandwidth,
            advice=advice,
            log2_n_bound=self.log2_n_bound,
        )


def assign_ids(
    graph: Graph,
    seed: random.Random | int | None = None,
    id_range_exponent: int = 2,
    fixed: Optional[Dict[Vertex, int]] = None,
) -> Dict[Vertex, int]:
    """Assign unique IDs from a range of size n^id_range_exponent.

    ``fixed`` pins chosen vertices to chosen IDs (used by the 𝒢ₖ lower
    bound, which fixes the center-node IDs and permutes the rest).
    """
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    n = graph.num_vertices
    space = max(n, n**id_range_exponent)
    ids: Dict[Vertex, int] = dict(fixed or {})
    if len(set(ids.values())) != len(ids):
        raise SimulationError("fixed IDs must be unique")
    used = set(ids.values())
    remaining = [v for v in graph.vertices() if v not in ids]
    pool: List[int] = []
    while len(pool) < len(remaining):
        candidate = rng.randrange(space)
        if candidate not in used:
            used.add(candidate)
            pool.append(candidate)
    for v, i in zip(remaining, pool):
        ids[v] = i
    return ids


def make_setup(
    graph: Graph,
    knowledge: Knowledge = Knowledge.KT1,
    bandwidth: str = "LOCAL",
    seed: random.Random | int | None = None,
    ids: Optional[Dict[Vertex, int]] = None,
    ports: Optional[PortAssignment] = None,
    congest_factor: int = 16,
    compiled: Optional[object] = None,
) -> NetworkSetup:
    """Convenience constructor for the common experiment shapes.

    ``bandwidth`` is "LOCAL" or "CONGEST".  Random choices (IDs, port
    shuffles) derive from ``seed``.

    ``compiled`` (a :class:`repro.graphs.compile.CompiledTopology` of
    this same graph) routes the port shuffle through the artifact's
    prevalidated fast path: identical rng consumption, identical
    assignment, but no per-vertex permutation/symmetry re-validation
    and the engines' send tables come prebuilt.
    """
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    if ids is None:
        ids = assign_ids(graph, rng)
    if ports is None:
        if compiled is not None:
            ports = compiled.random_ports(rng)
        else:
            ports = PortAssignment.random(graph, rng)
    if bandwidth == "LOCAL":
        bw = local_model()
    elif bandwidth == "CONGEST":
        bw = congest_model(graph.num_vertices, factor=congest_factor)
    else:
        raise SimulationError(f"unknown bandwidth model {bandwidth!r}")
    return NetworkSetup(
        graph=graph, ids=ids, ports=ports, knowledge=knowledge, bandwidth=bw
    )
