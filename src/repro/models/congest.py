"""Bandwidth models: LOCAL vs CONGEST.

In the LOCAL model message length is unbounded and only locality
matters; in the CONGEST model every message carries at most O(log n)
bits (Sec 1.1).  The simulator measures every payload with
:func:`repro.sim.messages.bit_size` and, under CONGEST, raises
:class:`~repro.errors.ModelViolation` on any message exceeding the cap.
This turns the paper's model distinction into an executable contract:
the CONGEST advising schemes (Cor 1, Thm 5, Thm 6) run with enforcement
on, and the test suite asserts that the LOCAL-only algorithms (Thm 3's
DFS token with its full visited list, Thm 4's neighbor-list exchanges)
actually *do* violate it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import ModelViolation


@dataclass(frozen=True)
class BandwidthModel:
    """A message-size policy.

    ``cap_bits`` of ``None`` means unbounded (LOCAL).
    """

    name: str
    cap_bits: Optional[int]

    def check(self, bits: int) -> None:
        if self.cap_bits is not None and bits > self.cap_bits:
            raise ModelViolation(
                f"{self.name} violation: message of {bits} bits exceeds "
                f"cap of {self.cap_bits} bits"
            )

    @property
    def is_congest(self) -> bool:
        return self.cap_bits is not None


def local_model() -> BandwidthModel:
    """The LOCAL model: unbounded message size."""
    return BandwidthModel(name="LOCAL", cap_bits=None)


def congest_model(n: int, factor: int = 16) -> BandwidthModel:
    """The CONGEST model with cap = factor * ceil(log2 n) bits.

    The constant ``factor`` reflects the usual "O(log n) bits, i.e. a
    constant number of IDs/counters per message" reading; IDs live in a
    polynomial range so a single ID costs c * log2 n bits.  The default
    (16) comfortably fits a tag, two IDs, and two counters.
    """
    if n < 2:
        n = 2
    cap = factor * math.ceil(math.log2(n))
    return BandwidthModel(name="CONGEST", cap_bits=cap)
