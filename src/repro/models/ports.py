"""Port mappings (the KT0 / port-numbering substrate).

Under KT0 (Sec 1.1) a node v of degree d has ports 1..d, each leading to
a distinct neighbor via the bijection port_v : [d] -> N(v), and v has
*no prior knowledge* of the mapping.  The adversary chooses the mapping;
the KT0 lower bound (Theorem 1) samples it uniformly and independently
per node, which is exactly what :meth:`PortAssignment.random` does.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Tuple

from repro.errors import SimulationError
from repro.graphs.graph import Graph, Vertex


class PortAssignment:
    """An explicit port bijection for every vertex of a graph.

    Ports are 1-based, matching the paper's convention
    (``1, ..., deg(v)``).
    """

    def __init__(self, graph: Graph, order: Dict[Vertex, List[Vertex]]):
        self._graph = graph
        self._to_neighbor: Dict[Vertex, List[Vertex]] = {}
        self._to_port: Dict[Vertex, Dict[Vertex, int]] = {}
        # Per-vertex flat lookup tables, built lazily by table(); the
        # engines' hot-path replacement for neighbor()/port() pairs.
        self._tables: Dict[Vertex, Tuple[Tuple[Vertex, ...], Tuple[int, ...]]] = {}
        for v in graph.vertices():
            nbrs = order.get(v)
            if nbrs is None:
                raise SimulationError(f"no port order for vertex {v!r}")
            if sorted(map(repr, nbrs)) != sorted(map(repr, graph.neighbors(v))):
                raise SimulationError(
                    f"port order at {v!r} is not a permutation of N(v)"
                )
            self._to_neighbor[v] = list(nbrs)
            self._to_port[v] = {u: i + 1 for i, u in enumerate(nbrs)}

    # -- constructors ----------------------------------------------------
    @classmethod
    def canonical(cls, graph: Graph) -> "PortAssignment":
        """Ports in adjacency insertion order (deterministic)."""
        return cls(graph, {v: graph.neighbors(v) for v in graph.vertices()})

    @classmethod
    def random(
        cls, graph: Graph, seed: random.Random | int | None = None
    ) -> "PortAssignment":
        """Uniformly random, mutually independent port mappings — the
        input distribution of the Theorem 1 lower bound."""
        rng = seed if isinstance(seed, random.Random) else random.Random(seed)
        order = {}
        for v in graph.vertices():
            nbrs = graph.neighbors(v)
            rng.shuffle(nbrs)
            order[v] = nbrs
        return cls(graph, order)

    @classmethod
    def prevalidated(
        cls, graph: Graph, order: Dict[Vertex, List[Vertex]]
    ) -> "PortAssignment":
        """Trusted constructor for already-validated topologies.

        Skips the per-vertex permutation check of ``__init__`` and the
        per-neighbor symmetry validation of :meth:`table`, and prebuilds
        every send table eagerly — the engines then pay zero validation
        cost at init.  Callers (the compiled-topology layer,
        :meth:`repro.graphs.compile.CompiledTopology.random_ports`)
        guarantee that ``order[v]`` is a permutation of N(v) for a
        symmetric adjacency; handing this unvalidated data produces
        undefined behavior, which is why the ordinary constructors
        remain the default path.
        """
        self = cls.__new__(cls)
        self._graph = graph
        self._to_neighbor = {v: list(nbrs) for v, nbrs in order.items()}
        to_port = {
            v: {u: i + 1 for i, u in enumerate(nbrs)}
            for v, nbrs in self._to_neighbor.items()
        }
        self._to_port = to_port
        self._tables = {
            v: (tuple(nbrs), tuple(to_port[u][v] for u in nbrs))
            for v, nbrs in self._to_neighbor.items()
        }
        return self

    # -- queries -----------------------------------------------------------
    def degree(self, v: Vertex) -> int:
        """Number of ports (= degree) of v."""
        return len(self._to_neighbor[v])

    def neighbor(self, v: Vertex, port: int) -> Vertex:
        """port_v(port): the neighbor behind the given 1-based port."""
        nbrs = self._to_neighbor.get(v)
        if nbrs is None:
            raise SimulationError(f"vertex {v!r} unknown")
        if not 1 <= port <= len(nbrs):
            raise SimulationError(
                f"port {port} out of range 1..{len(nbrs)} at {v!r}"
            )
        return nbrs[port - 1]

    def port(self, v: Vertex, u: Vertex) -> int:
        """port_v^{-1}(u): the 1-based port at v leading to neighbor u."""
        try:
            return self._to_port[v][u]
        except KeyError:
            raise SimulationError(f"{u!r} is not a neighbor of {v!r}") from None

    def ports(self, v: Vertex) -> range:
        """All 1-based ports of v."""
        return range(1, self.degree(v) + 1)

    def neighbors_in_port_order(self, v: Vertex) -> List[Vertex]:
        """v's neighbors listed by ascending port number."""
        return list(self._to_neighbor[v])

    def table(self, v: Vertex) -> Tuple[Tuple[Vertex, ...], Tuple[int, ...]]:
        """The flat send table of v: ``(neighbors, back_ports)``.

        ``neighbors[p - 1]`` is ``port_v(p)`` and ``back_ports[p - 1]``
        is the port *at that neighbor* leading back to v — exactly the
        two lookups an engine needs per send.  The table is validated
        once (every neighbor must know a return port; a missing one
        means the adjacency is asymmetric) and cached, so the engines'
        inner loops are two list indexings with no per-send range or
        membership checks.
        """
        tab = self._tables.get(v)
        if tab is None:
            nbrs = self._to_neighbor.get(v)
            if nbrs is None:
                raise SimulationError(f"vertex {v!r} unknown")
            back = []
            for u in nbrs:
                port_map = self._to_port.get(u)
                if port_map is None or v not in port_map:
                    raise SimulationError(
                        f"asymmetric adjacency at {v!r}: neighbor {u!r} "
                        f"has no return port to {v!r}"
                    )
                back.append(port_map[v])
            tab = (tuple(nbrs), tuple(back))
            self._tables[v] = tab
        return tab
