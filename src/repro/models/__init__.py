"""Computing-model layer: KT0/KT1 knowledge, LOCAL/CONGEST bandwidth,
and port mappings."""

from repro.models.congest import BandwidthModel, congest_model, local_model
from repro.models.knowledge import (
    Knowledge,
    NetworkSetup,
    assign_ids,
    make_setup,
)
from repro.models.ports import PortAssignment

__all__ = [
    "BandwidthModel",
    "congest_model",
    "local_model",
    "Knowledge",
    "NetworkSetup",
    "assign_ids",
    "make_setup",
    "PortAssignment",
]
