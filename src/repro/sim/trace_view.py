"""Human-readable rendering of execution traces.

Turns a :class:`~repro.sim.trace.Trace` into a timeline or per-node
lanes — useful when debugging a protocol or when an example wants to
*show* an execution rather than just its totals.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Optional

from repro.sim.trace import Trace, TraceEvent

Vertex = Hashable


def _default_fmt(v: Vertex) -> str:
    return repr(v)


def render_timeline(
    trace: Trace,
    limit: int = 100,
    vertex_fmt: Optional[Callable[[Vertex], str]] = None,
    kinds: Optional[set] = None,
) -> str:
    """Render the first ``limit`` events as a one-line-per-event log.

    ``kinds`` filters to a subset of {"wake", "send", "deliver"}.
    """
    fmt = vertex_fmt or _default_fmt
    lines: List[str] = []
    shown = 0
    for ev in trace.events:
        if kinds is not None and ev.kind not in kinds:
            continue
        if shown >= limit:
            lines.append(f"... ({len(trace.events)} events total)")
            break
        lines.append(_render_event(ev, fmt))
        shown += 1
    return "\n".join(lines)


def _render_event(ev: TraceEvent, fmt) -> str:
    t = f"t={ev.time:9.3f}"
    if ev.kind == "wake":
        return f"{t}  WAKE    {fmt(ev.vertex)} ({ev.detail})"
    msg = ev.detail
    arrow = "->" if ev.kind == "send" else "=>"
    tag = msg.payload[0] if isinstance(msg.payload, tuple) and msg.payload else msg.payload
    if ev.kind == "send":
        return (
            f"{t}  SEND    {fmt(msg.src)} {arrow} {fmt(msg.dst)} "
            f"[{tag}] ({msg.bits}b)"
        )
    return (
        f"{t}  DELIVER {fmt(msg.src)} {arrow} {fmt(msg.dst)} "
        f"[{tag}] port {msg.dst_port}"
    )


def render_wake_wave(
    trace: Trace,
    vertex_fmt: Optional[Callable[[Vertex], str]] = None,
    bucket: float = 1.0,
) -> str:
    """Render the wake-up wave: which nodes woke in each time bucket.

    Shows the spatial progress of an execution at a glance, e.g.::

        [t 0.0-1.0)  adversary: 0
        [t 1.0-2.0)  message: 1, 5, 7
    """
    fmt = vertex_fmt or _default_fmt
    wakes = trace.wakes()
    if not wakes:
        return "(no wake events)"
    t0 = min(t for t, _v, _c in wakes)
    buckets: dict = {}
    for t, v, cause in wakes:
        idx = int((t - t0) / bucket)
        buckets.setdefault(idx, []).append((v, cause))
    lines = []
    for idx in sorted(buckets):
        lo = t0 + idx * bucket
        entries = buckets[idx]
        by_cause: dict = {}
        for v, cause in entries:
            by_cause.setdefault(cause, []).append(fmt(v))
        parts = [
            f"{cause}: {', '.join(sorted(vs))}"
            for cause, vs in sorted(by_cause.items())
        ]
        lines.append(
            f"[t {lo:.1f}-{lo + bucket:.1f})  " + " | ".join(parts)
        )
    return "\n".join(lines)


def message_matrix(trace: Trace, vertices: List[Vertex]) -> str:
    """A small vertices x vertices matrix of message counts (debugging
    aid for small graphs; entries capped at 99 for alignment)."""
    counts: dict = {}
    for msg in trace.sends():
        counts[(msg.src, msg.dst)] = counts.get((msg.src, msg.dst), 0) + 1
    labels = [repr(v)[:6] for v in vertices]
    width = max((len(x) for x in labels), default=1) + 1
    header = " " * width + "".join(lbl.rjust(width) for lbl in labels)
    lines = [header]
    for v, lbl in zip(vertices, labels):
        row = [lbl.rjust(width)]
        for u in vertices:
            c = min(99, counts.get((v, u), 0))
            row.append((str(c) if c else ".").rjust(width))
        lines.append("".join(row))
    return "\n".join(lines)
