"""Simulation layer: engines, adversary, metrics, node API, runner."""

from repro.sim.adversary import (
    Adversary,
    DelayStrategy,
    PerEdgeDelay,
    SlowEdgeDelay,
    UniformRandomDelay,
    UnitDelay,
    WakeSchedule,
)
from repro.sim.async_engine import AsyncEngine
from repro.sim.bulk import (
    HAS_BULK,
    BulkKernel,
    BulkSyncEngine,
    BulkUnavailable,
)
from repro.sim.messages import Message, Send, bit_size
from repro.sim.metrics import Metrics
from repro.sim.node import NodeAlgorithm, NodeContext
from repro.sim.runner import WakeUpResult, run_wakeup
from repro.sim.sync_engine import SyncEngine
from repro.sim.trace import Trace, TraceEvent

__all__ = [
    "Adversary",
    "DelayStrategy",
    "PerEdgeDelay",
    "SlowEdgeDelay",
    "UniformRandomDelay",
    "UnitDelay",
    "WakeSchedule",
    "AsyncEngine",
    "HAS_BULK",
    "BulkKernel",
    "BulkSyncEngine",
    "BulkUnavailable",
    "Message",
    "Send",
    "bit_size",
    "Metrics",
    "NodeAlgorithm",
    "NodeContext",
    "WakeUpResult",
    "run_wakeup",
    "SyncEngine",
    "Trace",
    "TraceEvent",
]
