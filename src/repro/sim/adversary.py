"""The adversary: wake-up schedules and message-delay strategies.

Per Sec 1.1 of the paper, the adversary chooses the topology, IDs, port
mappings, the set of initially awake nodes, *when* to wake additional
sleeping nodes, and the (finite) delay of every message.  It is
**oblivious**: its decisions may not depend on node states or random
bits.  We realize obliviousness structurally — every strategy here is a
pure function of public inputs (edge identity, send index, schedule
fixed before the run), never of algorithm state.

Time is normalized so that the maximum message delay is tau = 1 (Sec
1.2); delay strategies therefore return values in (0, 1].
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.graphs.graph import Graph, Vertex


def _stable_unit(*parts: object) -> float:
    """A deterministic value in (0, 1) derived from ``parts``.

    Built on blake2b rather than :func:`hash` because Python salts
    string hashing per interpreter process (PYTHONHASHSEED): with
    ``hash()`` the "oblivious" delays silently differed between runs,
    which breaks replayability and poisons any on-disk result cache
    keyed by the adversary configuration.
    """
    return _unit_from_bytes(repr(parts).encode("utf-8"))


def _unit_from_bytes(
    data: bytes,
    _blake2b=hashlib.blake2b,
    _from_bytes=int.from_bytes,
) -> float:
    """The digest step of :func:`_stable_unit`, shared with callers
    that assemble the repr bytes themselves (hot paths that cache a
    per-edge prefix instead of re-repring every argument).  The
    default arguments pre-bind the builtins: this runs once per sent
    message."""
    h = _from_bytes(_blake2b(data, digest_size=8).digest(), "big")
    return ((h % 2**32) + 0.5) / 2**32

# ----------------------------------------------------------------------
# Wake schedules
# ----------------------------------------------------------------------


class WakeSchedule:
    """Maps each adversarially-woken vertex to its wake time.

    ``times()`` returns the full schedule; vertices absent from it are
    only ever woken by receiving a message.  Times are floats for the
    asynchronous engine; the synchronous one rounds them *up* to the
    next integer round (a wake at t = 2.7 lands in round 3 — never
    earlier than the adversary scheduled).
    """

    def __init__(self, times: Dict[Vertex, float]):
        if not times:
            raise SimulationError("wake schedule must wake at least one node")
        for v, t in times.items():
            if t < 0:
                raise SimulationError(f"negative wake time for {v!r}")
        self._times = dict(times)

    def times(self) -> Dict[Vertex, float]:
        """A copy of the vertex -> wake-time map."""
        return dict(self._times)

    def initially_awake(self) -> List[Vertex]:
        """Vertices woken at the earliest scheduled time."""
        t0 = min(self._times.values())
        return [v for v, t in self._times.items() if t == t0]

    def all_scheduled(self) -> List[Vertex]:
        """Every vertex the adversary will ever wake."""
        return list(self._times)

    @property
    def first_wake_time(self) -> float:
        return min(self._times.values())

    def __len__(self) -> int:
        return len(self._times)

    # -- constructors ----------------------------------------------------
    @classmethod
    def all_at_once(cls, vertices: Iterable[Vertex], time: float = 0.0):
        """Wake the given set simultaneously (the A0 of Eq. 1)."""
        return cls({v: time for v in vertices})

    @classmethod
    def singleton(cls, vertex: Vertex, time: float = 0.0):
        """Wake a single node — the canonical worst case for rho_awk = D."""
        return cls({vertex: time})

    @classmethod
    def staggered(cls, waves: Sequence[Tuple[float, Iterable[Vertex]]]):
        """Wake successive waves at given times (later waves are the
        adversary's tool for prolonging executions; cf. proof of Thm 3)."""
        times: Dict[Vertex, float] = {}
        for t, group in waves:
            for v in group:
                if v in times:
                    raise SimulationError(f"vertex {v!r} scheduled twice")
                times[v] = t
        return cls(times)

    @classmethod
    def random_subset(
        cls,
        graph: Graph,
        count: int,
        seed: random.Random | int | None = None,
        time: float = 0.0,
    ):
        """Wake a uniformly random ``count``-subset at ``time``."""
        rng = seed if isinstance(seed, random.Random) else random.Random(seed)
        verts = list(graph.vertices())
        if not 1 <= count <= len(verts):
            raise SimulationError("count out of range")
        return cls.all_at_once(rng.sample(verts, count), time)

    @classmethod
    def sequential(
        cls, vertices: Sequence[Vertex], gap: float
    ) -> "WakeSchedule":
        """Wake the given vertices one at a time, ``gap`` time units
        apart, in the given order.

        With the order chosen by increasing ID and a gap exceeding a
        full traversal (> 2n), this is the strongest schedule against
        rank-free DFS wake-up: every newly woken node displaces the
        previous traversal (see the Theorem-3 rank ablation)."""
        if not vertices:
            raise SimulationError("sequential schedule needs vertices")
        if gap < 0:
            raise SimulationError("gap must be nonnegative")
        return cls({v: i * gap for i, v in enumerate(vertices)})

    @classmethod
    def anti_rank_staggered(
        cls,
        graph: Graph,
        waves: int,
        gap: float,
        seed: random.Random | int | None = None,
    ):
        """The adversarial pattern from the Theorem-3 analysis: wake
        disjoint groups of geometrically growing size at intervals of
        ``gap`` time units, attempting to repeatedly displace the
        current maximum-rank DFS token."""
        rng = seed if isinstance(seed, random.Random) else random.Random(seed)
        verts = list(graph.vertices())
        rng.shuffle(verts)
        times: Dict[Vertex, float] = {}
        idx = 0
        size = 1
        for w in range(waves):
            group = verts[idx: idx + size]
            if not group:
                break
            for v in group:
                times[v] = w * gap
            idx += size
            size *= 2
        if not times:
            raise SimulationError("graph too small for requested schedule")
        return cls(times)


# ----------------------------------------------------------------------
# Delay strategies (asynchronous engine only)
# ----------------------------------------------------------------------


class DelayStrategy:
    """Assigns a delay in (0, 1] to each message send.

    ``delay(src, dst, sent_at, seq)`` must be a pure function of its
    arguments (plus construction-time randomness), which enforces the
    oblivious-adversary requirement.
    """

    def delay(self, src: Vertex, dst: Vertex, sent_at: float, seq: int) -> float:
        """Delay in (0, 1] for the ``seq``-th send, over edge src->dst."""
        raise NotImplementedError


class UnitDelay(DelayStrategy):
    """Every message takes exactly tau = 1: async executions then mirror
    synchronous ones, which makes analytical comparisons easy."""

    def delay(self, src, dst, sent_at, seq):
        return 1.0


class UniformRandomDelay(DelayStrategy):
    """I.i.d. uniform delays in [lo, 1], fixed by a construction seed.

    Delays are drawn from a deterministic per-(edge, seq) hash so that
    replaying the same execution yields identical delays regardless of
    event processing order.
    """

    def __init__(self, seed: int = 0, lo: float = 0.05):
        if not 0 < lo <= 1:
            raise SimulationError("lo must be in (0, 1]")
        self._seed = seed
        self._lo = lo
        self._span = 1.0 - lo
        # Per-edge repr prefix: only the seq varies between sends on
        # one edge, so the (seed, src, dst) part of the hash input is
        # assembled once per edge instead of once per send.
        self._prefix: Dict[Tuple[Vertex, Vertex], str] = {}

    def delay(self, src, dst, sent_at, seq):
        # Byte-identical to _stable_unit(seed, repr(src), repr(dst),
        # seq): a tuple's repr joins element reprs with ", ".
        key = (src, dst)
        prefix = self._prefix.get(key)
        if prefix is None:
            prefix = f"({self._seed!r}, {repr(src)!r}, {repr(dst)!r}, "
            self._prefix[key] = prefix
        u = _unit_from_bytes((prefix + repr(seq) + ")").encode("utf-8"))
        return self._lo + self._span * u


class VectorDelay(DelayStrategy):
    """Delays read from a fixed vector, indexed by global send order.

    The ``seq``-th send (globally, across all edges) gets delay
    ``values[seq % len(values)]`` — a pure function of the send index
    and construction-time data, so the strategy is oblivious.  This is
    the scalable genome the adversary optimizers tune: a vector of a
    few hundred floats parameterizes a schedule at any n, and replaying
    the same vector reproduces the execution bit-identically without
    the controlled scheduler.  An all-ones vector coincides with
    :class:`UnitDelay`.
    """

    def __init__(self, values: Sequence[float]):
        if not values:
            raise SimulationError("VectorDelay needs at least one value")
        vals = []
        for v in values:
            v = float(v)
            if not 0 < v <= 1 or not math.isfinite(v):
                raise SimulationError(
                    f"VectorDelay value {v!r} outside (0, 1]"
                )
            vals.append(v)
        self._values = tuple(vals)

    @property
    def values(self) -> Tuple[float, ...]:
        return self._values

    def delay(self, src, dst, sent_at, seq):
        return self._values[seq % len(self._values)]


class PerEdgeDelay(DelayStrategy):
    """A fixed deterministic delay per directed edge, hashed from a seed.

    Models heterogeneous but stable link latencies; the adversary fixes
    them before the execution (oblivious by construction).
    """

    def __init__(self, seed: int = 0, lo: float = 0.1):
        if not 0 < lo <= 1:
            raise SimulationError("lo must be in (0, 1]")
        self._seed = seed
        self._lo = lo
        self._cache: Dict[Tuple[str, str], float] = {}

    def delay(self, src, dst, sent_at, seq):
        key = (repr(src), repr(dst))
        if key not in self._cache:
            u = _stable_unit(self._seed, key[0], key[1])
            self._cache[key] = self._lo + (1.0 - self._lo) * u
        return self._cache[key]


class SlowEdgeDelay(DelayStrategy):
    """Maximally delays a chosen set of directed edges (delay 1.0) while
    all other messages travel fast (delay ``fast``).

    This is the classic adversarial pattern for separating time-optimal
    from message-optimal algorithms in asynchronous networks.
    """

    def __init__(self, slow_edges: Iterable[Tuple[Vertex, Vertex]], fast: float = 0.05):
        if not 0 < fast <= 1:
            raise SimulationError("fast must be in (0, 1]")
        self._slow = {(repr(a), repr(b)) for a, b in slow_edges}
        self._fast = fast

    def delay(self, src, dst, sent_at, seq):
        if (repr(src), repr(dst)) in self._slow:
            return 1.0
        return self._fast


@dataclass
class Adversary:
    """Bundle of the adversary's run-time powers: when nodes wake and how
    long messages take.  Topology/ID/port choices are made when building
    the :class:`~repro.models.knowledge.NetworkSetup`."""

    schedule: WakeSchedule
    delays: DelayStrategy = field(default_factory=UnitDelay)
