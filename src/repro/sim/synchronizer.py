"""Alpha synchronizer: run synchronous algorithms on the async engine.

The paper states Theorem 4 (FastWakeUp) for the synchronous model (Sec
3.2), yet its Table 1 lists the result under "async. KT1 LOCAL" — the
classic bridge between the two being a *synchronizer* (Awerbuch's
alpha synchronizer).  This module implements that bridge for wake-up
algorithms:

Every participating node maintains a **pulse** counter.  In pulse p it
sends exactly one frame per port — ``("pulse", p, payloads)`` where
``payloads`` are the inner algorithm's messages for that port, possibly
empty (a heartbeat).  A node advances from pulse p to p + 1 once it
holds pulse-p frames from *all* neighbors; on advancing it delivers the
inner payloads (the inner algorithm's round-(p+1) deliveries) and gives
the inner node its round-(p+1) computation step.  FIFO channels make
the frame sequence per edge gap-free, so the emulation is exactly a
lock-step execution.

Wake-up specifics:

* the pulse-0 frame of any node wakes its sleeping neighbors at the
  *outer* (engine) level, and they join the pulse structure — but their
  **inner** algorithm stays asleep until an inner payload (or an
  adversary wake) arrives, preserving the wake-up semantics the inner
  algorithm was designed for: empty heartbeats are synchronizer
  plumbing, not protocol messages;
* because no node can pass pulse p until every neighbor reached p, the
  whole component advances in global lock-step; the emulated execution
  equals a synchronous execution in which every node participates from
  pulse 0 — a *legal* schedule for the inner algorithm, so correctness
  (everyone inner-awake) transfers;
* cost: Theta(m) frames per pulse for ``pulse_budget`` pulses, and the
  budget must dominate the inner algorithm's round complexity.  This
  overhead is the textbook price of alpha synchronization and is why
  the paper's Table-1 "async" listing for Theorem 4 does not come with
  a message-complexity discount.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional

from repro.core.base import BOTH, SYNC, WakeUpAlgorithm
from repro.errors import SimulationError
from repro.sim.node import NodeAlgorithm, NodeContext

PULSE = "pulse"

Vertex = Hashable


class _InnerContext:
    """Duck-typed stand-in for :class:`NodeContext` handed to the inner
    (synchronous) node: intercepts sends into per-port pulse buffers and
    carries the inner local-round counter."""

    def __init__(self, outer: NodeContext):
        self._outer = outer
        self.local_round = 0
        self.outbox: Dict[int, List[Any]] = {}
        self.wake_cause: Optional[str] = None

    # -- knowledge passthrough ---------------------------------------------
    @property
    def vertex(self):
        return self._outer.vertex

    @property
    def node_id(self) -> int:
        return self._outer.node_id

    @property
    def degree(self) -> int:
        return self._outer.degree

    @property
    def ports(self):
        return self._outer.ports

    @property
    def log2_n_bound(self) -> int:
        return self._outer.log2_n_bound

    @property
    def advice(self):
        return self._outer.advice

    @property
    def rng(self):
        return self._outer.rng

    @property
    def awake(self) -> bool:
        return self._outer.awake

    def neighbor_id(self, port: int) -> int:
        return self._outer.neighbor_id(port)

    def neighbor_ids(self):
        return self._outer.neighbor_ids()

    def port_of(self, neighbor_id: int) -> int:
        return self._outer.port_of(neighbor_id)

    # -- intercepted communication -----------------------------------------
    def send(self, port: int, payload: Any) -> None:
        if not 1 <= port <= self.degree:
            raise SimulationError(
                f"inner node sent on invalid port {port}"
            )
        self.outbox.setdefault(port, []).append(payload)

    def send_to(self, neighbor_id: int, payload: Any) -> None:
        self.send(self.port_of(neighbor_id), payload)

    def broadcast(self, payload: Any) -> None:
        for p in self.ports:
            self.send(p, payload)


class _SynchronizedNode(NodeAlgorithm):
    """Outer node: pulse bookkeeping around one inner sync node."""

    def __init__(self, inner: NodeAlgorithm, pulse_budget: int):
        self._inner = inner
        self._budget = pulse_budget
        self._ictx: Optional[_InnerContext] = None
        self._pulse: Optional[int] = None  # current pulse, None = not joined
        # frames[p][port] = list of inner payloads from that neighbor
        self._frames: Dict[int, Dict[int, List[Any]]] = {}
        self._inner_awake = False
        self._inner_wake_pulse = 0

    # ------------------------------------------------------------------
    def on_wake(self, ctx: NodeContext) -> None:
        self._ictx = _InnerContext(ctx)
        if ctx.wake_cause == "adversary":
            self._inner_wake(ctx, "adversary")
        self._join(ctx)

    def on_message(self, ctx: NodeContext, port: int, payload: Any) -> None:
        if not (isinstance(payload, tuple) and payload[:1] == (PULSE,)):
            return
        _, p, inner_payloads = payload
        self._frames.setdefault(p, {})[port] = list(inner_payloads)
        self._try_advance(ctx)

    # ------------------------------------------------------------------
    def _inner_wake(self, ctx: NodeContext, cause: str) -> None:
        if self._inner_awake:
            return
        self._inner_awake = True
        self._inner_wake_pulse = self._pulse if self._pulse is not None else 0
        assert self._ictx is not None
        self._ictx.wake_cause = cause
        self._inner.on_wake(self._ictx)

    def _join(self, ctx: NodeContext) -> None:
        """Enter the pulse structure at pulse 0."""
        if self._pulse is not None:
            return
        self._pulse = 0
        self._run_inner_round(ctx)
        self._emit(ctx)
        self._try_advance(ctx)

    def _run_inner_round(self, ctx: NodeContext) -> None:
        assert self._ictx is not None and self._pulse is not None
        if self._inner_awake and self._inner.wants_round():
            self._ictx.local_round = self._pulse - self._inner_wake_pulse
            self._inner.on_round(self._ictx)

    def _emit(self, ctx: NodeContext) -> None:
        """Send this pulse's frame (payloads or heartbeat) on every port."""
        assert self._ictx is not None and self._pulse is not None
        outbox, self._ictx.outbox = self._ictx.outbox, {}
        for port in ctx.ports:
            payloads = tuple(outbox.get(port, ()))
            ctx.send(port, (PULSE, self._pulse, payloads))

    def _try_advance(self, ctx: NodeContext) -> None:
        assert self._ictx is not None
        while self._pulse is not None and self._pulse < self._budget:
            ready = self._frames.get(self._pulse, {})
            if len(ready) < ctx.degree:
                return
            frames = self._frames.pop(self._pulse)
            self._pulse += 1
            # Deliver the inner payloads as round-(pulse) messages.
            for port in sorted(frames):
                for payload in frames[port]:
                    if not self._inner_awake:
                        self._inner_wake(ctx, "message")
                    self._ictx.local_round = (
                        self._pulse - self._inner_wake_pulse
                    )
                    self._inner.on_message(self._ictx, port, payload)
            self._run_inner_round(ctx)
            self._emit(ctx)


class AlphaSynchronized(WakeUpAlgorithm):
    """Wrap a synchronous wake-up algorithm for the async engine.

    ``pulse_budget`` must be at least the inner algorithm's round
    complexity on the target inputs (e.g. > 10 * rho_awk + 11 for
    FastWakeUp); the execution sends Theta(m) frames per pulse.

    Caveat: the synchronizer's own heartbeat frames wake every node at
    the *engine* level, so a run's ``all_awake`` is trivially true.
    The faithful wake-up measure is **inner** wake — whether the
    wrapped algorithm's protocol reached each node — exposed through
    :meth:`inner_asleep` after the run.
    """

    synchrony = BOTH  # that is the point

    def __init__(self, inner: WakeUpAlgorithm, pulse_budget: int):
        if inner.synchrony not in (SYNC, BOTH):
            raise SimulationError(
                f"{inner.name} is not a synchronous algorithm"
            )
        if pulse_budget < 1:
            raise SimulationError("pulse budget must be positive")
        self.inner = inner
        self.pulse_budget = pulse_budget
        self.name = f"alpha-sync({inner.name})"
        self.requires_kt1 = inner.requires_kt1
        self.uses_advice = inner.uses_advice
        # Frames aggregate an arbitrary number of inner messages, so the
        # wrapper does not preserve CONGEST guarantees.
        self.congest_safe = False
        self._nodes: Dict[Vertex, _SynchronizedNode] = {}

    def compute_advice(self, setup):
        return self.inner.compute_advice(setup)

    def make_node(self, vertex, setup) -> NodeAlgorithm:
        node = _SynchronizedNode(
            self.inner.make_node(vertex, setup), self.pulse_budget
        )
        self._nodes[vertex] = node
        return node

    # ------------------------------------------------------------------
    def inner_asleep(self):
        """Vertices whose *inner* algorithm never woke in the last run
        (the synchronizer-faithful notion of a wake-up failure)."""
        return frozenset(
            v for v, node in self._nodes.items() if not node._inner_awake
        )

    def inner_all_awake(self) -> bool:
        return not self.inner_asleep()
