"""Bulk frontier engine: whole-frontier rounds as sparse-matrix ops.

The per-message engines top out around ~10^5 events/s because every
send is a Python-level event (PR 3's fast lane squeezed what was left).
Frontier algorithms — flooding, push gossip, star broadcast — have a
much coarser natural unit: *one synchronous round of the whole
network*.  This module advances that unit directly:

* the awake set and the sending frontier are numpy bitvectors;
* one round of deliveries is one CSR matrix–vector product over the
  adjacency that :class:`~repro.graphs.compile.CompiledTopology`
  already stores (``recv = A @ sent``);
* message counts come from degree sums over the frontier
  (``indptr`` differences), and bit totals from the cached payload
  sizes (:func:`~repro.sim.messages.bit_size_cached`) — the same
  measurement the per-message engines charge.

**Metric-equivalence contract.**  For every supported algorithm the
bulk lane must produce *exactly* the aggregate metrics of the
:class:`~repro.sim.sync_engine.SyncEngine` on the same inputs:
completion time (rounds), total messages, total bits,
``max_message_bits``, per-vertex wake times and causes,
``events_processed`` (rounds), and the per-round message histogram
(:attr:`Metrics.round_messages`).  The suite in
``tests/test_bulk_conformance.py`` enforces this across the
workload x n x wake-pattern matrix.  What the bulk lane deliberately
does **not** provide: per-message traces, per-edge/per-node message
Counters, drop strategies, and the async engine's delay semantics —
runs needing any of those take the per-message engines (the runner
falls back transparently).

Algorithms opt in through the :class:`BulkKernel` protocol
(:meth:`~repro.core.base.WakeUpAlgorithm.bulk_kernel`), declaring
their per-round update and termination predicate; everything else —
wake bookkeeping, adversary schedule, metrics, telemetry — is the
engine's.

numpy/scipy are optional (``pip install repro[bulk]``): importing this
module never fails, but constructing the engine without them raises
:class:`BulkUnavailable` with an actionable message.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.models.knowledge import NetworkSetup
from repro.obs.metrics import get_registry
from repro.obs.phases import PhaseTracker
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.sim.adversary import Adversary
from repro.sim.faults import NoDrops
from repro.sim.messages import bit_size_cached
from repro.sim.metrics import Metrics

try:  # pragma: no cover - exercised via HAS_BULK on both outcomes
    import numpy as _np
except ImportError:  # pragma: no cover - dependency-light environment
    _np = None
try:  # pragma: no cover
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover
    _sparse = None

#: True when the bulk lane's dependencies (numpy + scipy) are present.
HAS_BULK = _np is not None and _sparse is not None

Vertex = Hashable


class BulkUnavailable(ImportError):
    """The bulk engine was requested but numpy/scipy are missing."""


def require_bulk() -> None:
    """Raise :class:`BulkUnavailable` unless numpy and scipy import."""
    if not HAS_BULK:
        missing = [
            name
            for name, mod in (("numpy", _np), ("scipy", _sparse))
            if mod is None
        ] or ["numpy", "scipy"]
        raise BulkUnavailable(
            "the bulk frontier engine needs "
            + " and ".join(missing)
            + "; install the optional extras with `pip install repro[bulk]`"
            " (or route this run through engine='sync')"
        )


# ----------------------------------------------------------------------
# Kernel protocol
# ----------------------------------------------------------------------
class BulkKernel:
    """Per-algorithm frontier logic plugged into :class:`BulkSyncEngine`.

    A kernel declares three things:

    * :attr:`payload` — the (constant) message payload, measured once
      with the same :func:`~repro.sim.messages.bit_size_cached` the
      per-message engines use.  Kernels with non-constant payloads are
      unsupported by construction (their algorithms simply do not
      override :meth:`~repro.core.base.WakeUpAlgorithm.bulk_kernel`).
    * :meth:`on_round` — the per-round update: given who woke this
      round and what arrived, decide who sends where.
    * :meth:`wants_rounds` — the termination predicate, mirroring the
      sync engine's ``wants_round`` poll.

    The engine calls :meth:`bind` once before the first round; kernels
    read topology and wake state straight off the engine's arrays.
    """

    #: Constant message payload; measured once for the bits accounting.
    payload: Tuple[Any, ...] = ()

    def bind(self, engine: "BulkSyncEngine") -> None:
        self.engine = engine

    def on_round(
        self,
        r: int,
        woke_msg: "Any",
        woke_adv: "Any",
        recv: Optional["Any"],
    ) -> Tuple[int, Optional["Any"]]:
        """Advance one round; returns ``(messages_sent, recv_next)``.

        ``woke_msg`` / ``woke_adv`` are index arrays of the nodes that
        woke *this* round (message deliveries strictly before adversary
        wake-ups, matching the sync engine's step order); ``recv`` is
        the per-node delivery-count array for this round (``None`` when
        nothing was in flight).  ``recv_next`` is the delivery-count
        array the engine will present next round, or ``None`` when
        nothing was sent.
        """
        raise NotImplementedError

    def wants_rounds(self, r: int) -> bool:
        """Whether any node still wants compute rounds after round
        ``r`` was processed (gossip-style active phases).  Defaults to
        False: purely reactive kernels terminate with the message
        flow."""
        return False


class FloodingBulkKernel(BulkKernel):
    """Every node broadcasts once upon waking (``flooding``)."""

    def __init__(self, payload: Tuple[Any, ...]):
        self.payload = payload

    def on_round(self, r, woke_msg, woke_adv, recv):
        eng = self.engine
        if len(woke_msg) == 0 and len(woke_adv) == 0:
            return 0, None
        new = _np.concatenate((woke_msg, woke_adv))
        sent = int(eng.degrees[new].sum())
        if sent == 0:
            return 0, None
        x = _np.zeros(eng.n, dtype=_np.int64)
        x[new] = 1
        return sent, eng.adjacency @ x


class StarBroadcastBulkKernel(BulkKernel):
    """King–Mashregi star sampling (``star-broadcast``).

    Adversary-woken nodes flip the star coin (one ``Random.random()``
    draw on the node's private generator — identical stream to the
    per-message engines); stars and low-degree nodes broadcast, silent
    high-degree non-stars broadcast when the first message arrives.
    Message-woken nodes broadcast immediately and never draw.
    """

    def __init__(
        self,
        payload: Tuple[Any, ...],
        star_probability: Optional[float],
        degree_threshold: Optional[float],
    ):
        self.payload = payload
        self._p = star_probability
        self._thresh = degree_threshold

    def bind(self, engine: "BulkSyncEngine") -> None:
        super().bind(engine)
        n_hat = 1 << engine.setup.log2_n_bound
        self._p_eff = (
            self._p
            if self._p is not None
            else 1.0 / math.sqrt(n_hat * math.log(n_hat))
        )
        self._thresh_eff = (
            self._thresh
            if self._thresh is not None
            else math.sqrt(n_hat) * math.log(n_hat) ** 1.5
        )
        self._broadcasted = _np.zeros(engine.n, dtype=bool)

    def on_round(self, r, woke_msg, woke_adv, recv):
        eng = self.engine
        senders: List[int] = []
        if recv is not None:
            # Any arrival lifts silence: asleep receivers wake (cause
            # "message") and broadcast; awake silent nodes broadcast on
            # on_message.  Both reduce to "received and not yet sent".
            triggered = _np.flatnonzero((recv > 0) & ~self._broadcasted)
            senders.extend(triggered.tolist())
        degrees = eng.degrees
        p, thresh = self._p_eff, self._thresh_eff
        for i in woke_adv.tolist():
            is_star = eng.node_rng(i).random() < p
            if is_star or degrees[i] <= thresh:
                senders.append(i)
            # else: a silent high-degree non-star — the failure mode.
        if not senders:
            return 0, None
        idx = _np.asarray(senders, dtype=_np.int64)
        self._broadcasted[idx] = True
        sent = int(degrees[idx].sum())
        if sent == 0:
            return 0, None
        x = _np.zeros(eng.n, dtype=_np.int64)
        x[idx] = 1
        return sent, eng.adjacency @ x


class PushGossipBulkKernel(BulkKernel):
    """Push-only gossip (``push-gossip``): every awake node pushes the
    rumor to one uniformly random neighbor per round, for ``budget``
    local rounds.

    Port draws replay each node's private ``Random`` stream exactly
    (``randrange(1, degree + 1)`` once per active round), so wake
    rounds — and therefore every aggregate metric — match the sync
    engine bit for bit.  The draws are inherently per-node Python calls
    (one message per node per round), so gossip rides the bulk lane for
    conformance and the shared round loop, not for a flooding-sized
    speedup.
    """

    def __init__(self, payload: Tuple[Any, ...], budget: int):
        self.payload = payload
        self.budget = budget

    def bind(self, engine: "BulkSyncEngine") -> None:
        super().bind(engine)
        self._port_neighbors: Dict[int, Any] = {}

    def on_round(self, r, woke_msg, woke_adv, recv):
        eng = self.engine
        # Active exactly while local_round < budget; the round that
        # reaches the budget runs (and flips the node to done) without
        # sending — mirroring _PushNode.on_round.
        active = eng.awake & (r - eng.wake_round < self.budget)
        senders = _np.flatnonzero(active)
        if len(senders) == 0:
            return 0, None
        degrees = eng.degrees
        dsts: List[int] = []
        for i in senders.tolist():
            deg = int(degrees[i])
            if deg == 0:
                continue  # degree-0 nodes draw nothing (matches sync)
            port = eng.node_rng(i).randrange(1, deg + 1)
            nbrs = self._port_neighbors.get(i)
            if nbrs is None:
                nbrs = eng.port_neighbor_indices(i)
                self._port_neighbors[i] = nbrs
            dsts.append(nbrs[port - 1])
        if not dsts:
            return 0, None
        recv_next = _np.bincount(
            _np.asarray(dsts, dtype=_np.int64), minlength=eng.n
        )
        return len(dsts), recv_next

    def wants_rounds(self, r: int) -> bool:
        eng = self.engine
        return bool(_np.any(eng.awake & (r - eng.wake_round < self.budget)))


def resolve_bulk_lane(
    algorithm,
    setup: NetworkSetup,
    adversary: Adversary,
    trace,
) -> Optional[BulkKernel]:
    """Decide whether a run can take the bulk lane.

    Returns the algorithm's kernel, or ``None`` when the run must fall
    back to the sync engine: the algorithm declares no kernel, a
    per-message trace was requested, or a (non-trivial) drop strategy
    is armed — all three are outside the bulk lane's contract.  Raises
    :class:`BulkUnavailable` when a kernel exists but numpy/scipy are
    missing (the caller asked for bulk explicitly; silently degrading
    would hide the missing extras).
    """
    kernel = algorithm.bulk_kernel(setup)
    if kernel is None:
        return None
    if trace is not None:
        return None
    drops = getattr(adversary, "drops", None)
    if drops is not None and type(drops) is not NoDrops:
        return None
    require_bulk()
    return kernel


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class BulkSyncEngine:
    """Synchronous lock-step engine advancing whole frontiers per round.

    Semantics are the :class:`~repro.sim.sync_engine.SyncEngine`'s
    (Sec 3.2 round structure: deliver, adversary wake-ups, compute;
    fractional wake times ceil to the next round), realized as numpy
    array updates plus one CSR matvec per round instead of per-message
    Python events.  See the module docstring for the exact
    metric-equivalence contract.

    When the setup's graph is the materialized view of an in-process
    :class:`~repro.graphs.compile.CompiledTopology`, its CSR arrays are
    reused directly (and the converted numpy/scipy views are memoized
    on the artifact), so executor-routed runs pay no per-run adjacency
    construction.
    """

    def __init__(
        self,
        setup: NetworkSetup,
        kernel: BulkKernel,
        adversary: Adversary,
        seed: int = 0,
        max_rounds: int = 1_000_000,
        recorder: Optional[Recorder] = None,
    ):
        require_bulk()
        self.setup = setup
        self.kernel = kernel
        self.adversary = adversary
        self.seed = seed
        self.metrics = Metrics()
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.phases = PhaseTracker(
            self.metrics, self.recorder, fields={"n": setup.n}
        )
        self._max_rounds = max_rounds
        self.rounds_executed = 0

        self.verts, indptr, indices, self.adjacency = _csr_views(setup)
        self.n = len(self.verts)
        self.indptr = indptr
        self.degrees = _np.diff(indptr)
        self._index = {v: i for i, v in enumerate(self.verts)}

        # Wake state (engine-owned; kernels read, never write).
        self.awake = _np.zeros(self.n, dtype=bool)
        self.wake_round = _np.full(self.n, -1, dtype=_np.int64)
        self._wake_cause_msg = _np.zeros(self.n, dtype=bool)
        self._rngs: Dict[int, random.Random] = {}

        # Payload accounting: one measurement, same cache as the
        # per-message engines.
        self._payload_bits = bit_size_cached(kernel.payload)
        cap = setup.bandwidth.cap_bits
        if cap is not None and self._payload_bits > cap:
            setup.bandwidth.check(self._payload_bits)

        # Adversary schedule, ceil'd exactly like the sync engine.
        self._schedule: Dict[int, Any] = {}
        sched_rounds: Dict[int, List[int]] = {}
        for v, t in adversary.schedule.times().items():
            i = self._index.get(v)
            if i is None:
                raise SimulationError(f"schedule wakes unknown vertex {v!r}")
            sched_rounds.setdefault(math.ceil(t), []).append(i)
        for r, idxs in sched_rounds.items():
            self._schedule[r] = _np.asarray(idxs, dtype=_np.int64)

        #: Messages sent per round (the conformance histogram); also
        #: mirrored into ``metrics.round_messages``.
        self.round_messages: List[int] = []
        kernel.bind(self)

    # -- kernel services -------------------------------------------------
    def node_rng(self, i: int) -> random.Random:
        """Node i's private generator — same lazy construction and seed
        derivation as :class:`~repro.sim.node.NodeContext`, so kernels
        consume identical streams."""
        rng = self._rngs.get(i)
        if rng is None:
            node_seed = (
                self.seed * 1_000_003 + self.setup.id_of(self.verts[i])
            ) % 2**63
            rng = random.Random(node_seed)
            self._rngs[i] = rng
        return rng

    def port_neighbor_indices(self, i: int):
        """Neighbor *indices* of node i in port order (1-based port p
        maps to entry p - 1) — the vectorized view of
        ``PortAssignment.table``."""
        neighbors, _ = self.setup.ports.table(self.verts[i])
        index = self._index
        return _np.asarray(
            [index[u] for u in neighbors], dtype=_np.int64
        )

    # -- run -------------------------------------------------------------
    def run(self) -> Metrics:
        """Execute rounds until quiescence; returns the metrics.

        As in the per-message engines, the whole loop runs inside the
        implicit ``"engine"`` phase.
        """
        self.phases._start("engine", None)
        try:
            return self._run_rounds()
        finally:
            self.phases._stop()

    def _run_rounds(self) -> Metrics:
        rec = self.recorder
        rec_enabled = rec.enabled
        mreg = get_registry()
        # Per-round frontier observation (this round's sent batch);
        # hoisted, disabled path pays one `is None` check per round.
        frontier_obs = (
            mreg.histogram(
                "repro_engine_frontier_size", engine="bulk"
            ).observe
            if mreg.enabled
            else None
        )
        metrics = self.metrics
        kernel = self.kernel
        awake = self.awake
        wake_round = self.wake_round
        payload_bits = self._payload_bits
        empty = _np.empty(0, dtype=_np.int64)
        pending: Optional[Any] = None
        r = 0
        last_wake_round = max(self._schedule) if self._schedule else 0
        while True:
            if r > self._max_rounds:
                raise SimulationError(
                    f"round budget of {self._max_rounds} exceeded; "
                    "the protocol is likely not terminating"
                )
            # 1. deliver last round's messages ---------------------------
            recv = pending
            pending = None
            woke_msg = empty
            if recv is not None:
                # Every send is delivered (no drops on this lane), so a
                # non-None batch means activity this round.
                metrics.note_activity(float(r))
                woke_msg = _np.flatnonzero((recv > 0) & ~awake)
                if len(woke_msg):
                    awake[woke_msg] = True
                    wake_round[woke_msg] = r
                    self._wake_cause_msg[woke_msg] = True
                    metrics.note_activity(float(r))
                    if metrics.first_wake is None:
                        metrics.first_wake = float(r)

            # 2. adversary wake-ups --------------------------------------
            woke_adv = empty
            sched = self._schedule.get(r)
            if sched is not None:
                woke_adv = sched[~awake[sched]]
                if len(woke_adv):
                    awake[woke_adv] = True
                    wake_round[woke_adv] = r
                    metrics.note_activity(float(r))
                    if metrics.first_wake is None:
                        metrics.first_wake = float(r)

            # 3. frontier update (the kernel's compute step) -------------
            sent, recv_next = kernel.on_round(r, woke_msg, woke_adv, recv)
            if sent:
                metrics.messages_total += sent
                metrics.bits_total += sent * payload_bits
                if payload_bits > metrics.max_message_bits:
                    metrics.max_message_bits = payload_bits
                pending = recv_next
            self.round_messages.append(sent)
            if frontier_obs is not None and sent:
                frontier_obs(sent)

            self.rounds_executed = r + 1
            metrics.events_processed += 1
            r += 1
            if rec_enabled:
                # Per-round heartbeat (the bulk round *is* the step):
                # frontier is this round's sender count proxy — the
                # messages it pushed into flight.
                rec.emit(
                    "engine_step",
                    events=metrics.events_processed,
                    now=float(r),
                    awake=int(awake.sum()),
                    n=self.setup.n,
                    engine="bulk",
                    frontier=sent,
                )
            if (
                pending is None
                and r > last_wake_round
                and not kernel.wants_rounds(r - 1)
            ):
                break
        self._finalize()
        if mreg.enabled:
            mreg.counter("repro_engine_runs_total", engine="bulk").inc()
            mreg.counter(
                "repro_engine_events_total", engine="bulk"
            ).inc(metrics.events_processed)
            mreg.counter(
                "repro_engine_messages_total", engine="bulk"
            ).inc(metrics.messages_total)
            mreg.counter(
                "repro_engine_bits_total", engine="bulk"
            ).inc(metrics.bits_total)
        return metrics

    def _finalize(self) -> None:
        """Materialize the per-vertex wake map from the arrays (the
        aggregate contract needs labels; everything during the run is
        index-space)."""
        metrics = self.metrics
        verts = self.verts
        woken = _np.flatnonzero(self.awake)
        rounds = self.wake_round
        causes = self._wake_cause_msg
        wake_time = metrics.wake_time
        wake_cause = metrics.wake_cause
        for i in woken.tolist():
            v = verts[i]
            wake_time[v] = float(rounds[i])
            wake_cause[v] = "message" if causes[i] else "adversary"
        metrics.round_messages = list(self.round_messages)

    # ------------------------------------------------------------------
    @property
    def round_complexity(self) -> int:
        """Rounds between the first wake-up and the last activity."""
        if self.metrics.first_wake is None:
            return 0
        return int(self.metrics.last_activity - self.metrics.first_wake)


# ----------------------------------------------------------------------
# Adjacency views
# ----------------------------------------------------------------------
def _csr_views(setup: NetworkSetup):
    """(verts, indptr, indices, scipy CSR) for the setup's graph.

    When the graph is an LRU-managed :class:`CompiledTopology` view the
    artifact's CSR arrays are converted once and memoized on the
    artifact (``_runtime`` — never serialized); otherwise the arrays
    are built from the adjacency dicts, preserving insertion order.
    """
    from repro.graphs.compile import compiled_for_graph

    graph = setup.graph
    topo = compiled_for_graph(graph)
    if topo is not None:
        cached = topo._runtime.get("bulk_csr")
        if cached is not None:
            return cached
        indptr = _np.asarray(topo.indptr, dtype=_np.int64)
        indices = _np.asarray(topo.indices, dtype=_np.int64)
        views = (topo.verts, indptr, indices, _csr_matrix(indptr, indices))
        topo._runtime["bulk_csr"] = views
        return views
    verts = list(graph.vertices())
    index = {v: i for i, v in enumerate(verts)}
    indptr_list = [0]
    indices_list: List[int] = []
    for v in verts:
        for u in graph.neighbors(v):
            indices_list.append(index[u])
        indptr_list.append(len(indices_list))
    indptr = _np.asarray(indptr_list, dtype=_np.int64)
    indices = _np.asarray(indices_list, dtype=_np.int64)
    return verts, indptr, indices, _csr_matrix(indptr, indices)


def _csr_matrix(indptr, indices):
    n = len(indptr) - 1
    data = _np.ones(len(indices), dtype=_np.int64)
    return _sparse.csr_matrix((data, indices, indptr), shape=(n, n))
