"""High-level execution driver.

``run_wakeup`` wires together a network setup, a wake-up algorithm, and
an adversary; runs the oracle (for advising schemes) and the requested
engine; and returns a :class:`WakeUpResult` carrying every Table-1
quantity for the execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from repro.errors import SimulationError, WakeUpFailure
from repro.models.knowledge import NetworkSetup
from repro.obs.metrics import get_registry
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.sim.adversary import Adversary
from repro.sim.async_engine import AsyncEngine
from repro.sim.metrics import Metrics
from repro.sim.sync_engine import SyncEngine
from repro.sim.trace import Trace

Vertex = Hashable


@dataclass
class WakeUpResult:
    """Outcome of one execution.

    Attributes mirror the paper's complexity measures:

    * ``messages`` / ``bits`` — message complexity and total bits;
    * ``time`` — async time (tau-normalized) or sync round count
      between first wake and last activity;
    * ``advice_max_bits`` / ``advice_avg_bits`` — the advising scheme's
      cost on this input (0 for advice-free algorithms);
    * ``all_awake`` — whether the wake-up problem was solved;
    * ``wake_time`` — per-vertex wake times.
    """

    algorithm: str
    engine: str
    n: int
    messages: int
    bits: int
    max_message_bits: int
    time: float
    time_all_awake: float
    all_awake: bool
    asleep: frozenset
    wake_time: Dict[Vertex, float]
    advice_max_bits: int
    advice_avg_bits: float
    advice_total_bits: int
    metrics: Metrics
    trace: Optional[Trace] = None

    def summary(self) -> Dict[str, float]:
        """Flat numeric view for bench tables and JSON storage."""
        return {
            "n": float(self.n),
            "messages": float(self.messages),
            "bits": float(self.bits),
            "time": float(self.time),
            "advice_max_bits": float(self.advice_max_bits),
            "advice_avg_bits": float(self.advice_avg_bits),
        }

    def phase_profile(self) -> Dict[str, Dict[str, float]]:
        """Per-phase wall-time/message attribution (see
        :meth:`repro.sim.metrics.Metrics.phase_profile`); survives the
        lean/IPC path."""
        return self.metrics.phase_profile()

    # ------------------------------------------------------------------
    # Lean serialization (process boundary / on-disk result cache)
    # ------------------------------------------------------------------
    def lean(self) -> "WakeUpResult":
        """A copy safe to ship across a process boundary cheaply.

        Drops the heavyweights that grow with n and m — the ``trace``,
        the metric Counters, and the per-vertex ``wake_time`` map —
        while keeping every scalar the :meth:`summary` and the sweep
        aggregators read.  ``asleep`` is kept (it is empty on success
        and is exactly the failure diagnostic on partial wake-ups).
        """
        return WakeUpResult(
            algorithm=self.algorithm,
            engine=self.engine,
            n=self.n,
            messages=self.messages,
            bits=self.bits,
            max_message_bits=self.max_message_bits,
            time=self.time,
            time_all_awake=self.time_all_awake,
            all_awake=self.all_awake,
            asleep=self.asleep,
            wake_time={},
            advice_max_bits=self.advice_max_bits,
            advice_avg_bits=self.advice_avg_bits,
            advice_total_bits=self.advice_total_bits,
            metrics=self.metrics.compact(),
            trace=None,
        )

    def to_lean_dict(self) -> Dict[str, object]:
        """JSON-able form of :meth:`lean`; the cache file payload."""
        return {
            "algorithm": self.algorithm,
            "engine": self.engine,
            "n": self.n,
            "messages": self.messages,
            "bits": self.bits,
            "max_message_bits": self.max_message_bits,
            "time": self.time,
            "time_all_awake": self.time_all_awake,
            "all_awake": self.all_awake,
            "asleep": sorted(repr(v) for v in self.asleep),
            "advice_max_bits": self.advice_max_bits,
            "advice_avg_bits": self.advice_avg_bits,
            "advice_total_bits": self.advice_total_bits,
            "metrics": {
                "first_wake": self.metrics.first_wake,
                "last_activity": self.metrics.last_activity,
                "events_processed": self.metrics.events_processed,
                "awake_count": self.metrics.awake_count(),
                "wake_causes": self.metrics.wake_cause_counts(),
                "phases": self.metrics.phase_profile(),
            },
        }

    @classmethod
    def from_lean_dict(cls, data: Dict[str, object]) -> "WakeUpResult":
        """Rebuild a lean result from :meth:`to_lean_dict` output.

        The reconstruction is exact for every summary scalar; the
        ``asleep`` set comes back as reprs (vertices are not JSON keys)
        and ``wake_time`` stays empty, mirroring :meth:`lean`.
        """
        md = data["metrics"]
        metrics = Metrics(
            messages_total=int(data["messages"]),
            bits_total=int(data["bits"]),
            max_message_bits=int(data["max_message_bits"]),
            first_wake=md["first_wake"],
            last_activity=float(md["last_activity"]),
            events_processed=int(md["events_processed"]),
        )
        for name, prof in md.get("phases", {}).items():
            metrics.phase_time[name] = float(prof["time_s"])
            metrics.phase_messages[name] = int(prof["messages"])
            metrics.phase_entries[name] = int(prof["entries"])
        count = int(md["awake_count"])
        if count:
            first = md["first_wake"] or 0.0
            last_wake = first + float(data["time_all_awake"])
            metrics.wake_time = {
                ("awake", i): first for i in range(count - 1)
            }
            metrics.wake_time[("awake", count - 1)] = last_wake
            metrics.wake_cause = Metrics.placeholder_wake_causes(
                md.get("wake_causes", {})
            )
        return cls(
            algorithm=str(data["algorithm"]),
            engine=str(data["engine"]),
            n=int(data["n"]),
            messages=int(data["messages"]),
            bits=int(data["bits"]),
            max_message_bits=int(data["max_message_bits"]),
            time=float(data["time"]),
            time_all_awake=float(data["time_all_awake"]),
            all_awake=bool(data["all_awake"]),
            asleep=frozenset(data["asleep"]),
            wake_time={},
            advice_max_bits=int(data["advice_max_bits"]),
            advice_avg_bits=float(data["advice_avg_bits"]),
            advice_total_bits=int(data["advice_total_bits"]),
            metrics=metrics,
            trace=None,
        )


def run_wakeup(
    setup: NetworkSetup,
    algorithm,
    adversary: Adversary,
    engine: str = "async",
    seed: int = 0,
    require_all_awake: bool = True,
    max_events: int = 5_000_000,
    max_rounds: int = 1_000_000,
    record_trace: bool = False,
    trace: Optional[Trace] = None,
    recorder: Optional[Recorder] = None,
    controller=None,
) -> WakeUpResult:
    """Execute one wake-up run end to end.

    Parameters
    ----------
    setup:
        The static network (may already carry advice; if the algorithm
        declares ``uses_advice`` and the setup has none, the oracle is
        invoked here).
    algorithm:
        A :class:`~repro.core.base.WakeUpAlgorithm`.
    adversary:
        Wake schedule plus (async) delay strategy.
    engine:
        "async", "sync", or "bulk".  "bulk" requests the vectorized
        frontier lane (:mod:`repro.sim.bulk`): algorithms that declare
        a :meth:`~repro.core.base.WakeUpAlgorithm.bulk_kernel` run as
        whole-frontier rounds with exactly the sync engine's aggregate
        metrics; runs outside the bulk contract (no kernel, a trace
        requested, a drop strategy armed) fall back to the sync engine
        transparently.  The result's ``engine`` field records the lane
        that actually ran.
    require_all_awake:
        If True (default) a run that leaves nodes asleep raises
        :class:`~repro.errors.WakeUpFailure`; benches measuring failure
        probability set this to False.
    trace:
        A pre-built :class:`~repro.sim.trace.Trace` to record into —
        how callers get a bounded flight recorder
        (``Trace(maxlen=...)``) that they still hold when the run
        raises.  Implies ``record_trace``.
    recorder:
        Telemetry sink (:mod:`repro.obs`); the default
        :data:`~repro.obs.recorder.NULL_RECORDER` costs nothing.
        ``run_start``/``run_end`` frame the engine's own events, and
        ``run_end`` is emitted (with ``all_awake=False``) even when the
        run ends in :class:`~repro.errors.WakeUpFailure`.
    controller:
        A :class:`~repro.check.controller.ScheduleController` that
        resolves the async engine's nondeterminism explicitly (bounded
        model checking / worst-case search; see ``docs/modelcheck.md``).
        Async engine only.
    """
    if engine not in ("async", "sync", "bulk"):
        raise SimulationError(f"unknown engine {engine!r}")
    if controller is not None and engine != "async":
        raise SimulationError(
            "schedule controllers only apply to the async engine"
        )
    # The bulk lane implements sync-model semantics; algorithms declare
    # synchrony against the model, not the implementation.
    algorithm.validate_setup(
        setup, "sync" if engine == "bulk" else engine
    )
    if trace is None and record_trace:
        trace = Trace()

    lane = engine
    kernel = None
    if engine == "bulk":
        from repro.sim.bulk import resolve_bulk_lane

        kernel = resolve_bulk_lane(algorithm, setup, adversary, trace)
        if kernel is None:
            lane = "sync"

    rec = recorder if recorder is not None else NULL_RECORDER
    if rec.enabled:
        rec.emit(
            "run_start",
            algorithm=algorithm.name,
            engine=lane,
            n=setup.n,
            seed=seed,
        )

    advice_max = advice_avg = advice_total = 0
    if algorithm.uses_advice:
        if setup.advice is None:
            advice_map = algorithm.compute_advice(setup)
            if advice_map is None:
                raise SimulationError(
                    f"{algorithm.name} declares uses_advice but its "
                    "oracle returned None"
                )
            setup = setup.with_advice(dict(advice_map.items()))
            advice_max = advice_map.max_bits
            advice_avg = advice_map.average_bits
            advice_total = advice_map.total_bits
        else:
            lengths = [len(b) for b in setup.advice.values()]
            advice_max = max(lengths, default=0)
            advice_total = sum(lengths)
            advice_avg = advice_total / len(lengths) if lengths else 0.0

    if lane == "bulk":
        # The kernel carries the node logic; per-vertex instances are
        # never built (that O(n) Python loop is part of what the bulk
        # lane removes from the critical path).
        from repro.sim.bulk import BulkSyncEngine

        eng = BulkSyncEngine(
            setup, kernel, adversary, seed=seed, max_rounds=max_rounds,
            recorder=rec,
        )
        metrics = eng.run()
        time_complexity = float(eng.round_complexity)
        time_all_awake = metrics.time_all_awake
    elif lane == "async":
        nodes = algorithm.build_nodes(setup)
        eng = AsyncEngine(
            setup, nodes, adversary, seed=seed, max_events=max_events,
            trace=trace, recorder=rec, controller=controller,
        )
        metrics = eng.run()
        time_complexity = metrics.time_complexity
        time_all_awake = metrics.time_all_awake
    else:
        nodes = algorithm.build_nodes(setup)
        eng = SyncEngine(
            setup, nodes, adversary, seed=seed, max_rounds=max_rounds,
            trace=trace, recorder=rec,
        )
        metrics = eng.run()
        time_complexity = float(eng.round_complexity)
        time_all_awake = metrics.time_all_awake

    asleep = frozenset(
        v for v in setup.graph.vertices() if v not in metrics.wake_time
    )
    mreg = get_registry()
    if mreg.enabled:
        # Per-run, algorithm-labeled aggregates.  Names are distinct
        # from the engine-level repro_engine_* instruments (those count
        # totals per engine; these sample distributions per run) so
        # nothing is double-counted.
        labels = {"algorithm": algorithm.name, "engine": lane}
        mreg.counter("repro_runs_total", **labels).inc()
        mreg.histogram("repro_run_messages", **labels).observe(
            metrics.messages_total
        )
        mreg.histogram("repro_run_time", **labels).observe(
            time_complexity
        )
    if rec.enabled:
        rec.emit(
            "run_end",
            algorithm=algorithm.name,
            engine=lane,
            n=setup.n,
            messages=metrics.messages_total,
            time=time_complexity,
            all_awake=not asleep,
            asleep=len(asleep),
        )
    if asleep and require_all_awake:
        raise WakeUpFailure(asleep)

    return WakeUpResult(
        algorithm=algorithm.name,
        engine=lane,
        n=setup.n,
        messages=metrics.messages_total,
        bits=metrics.bits_total,
        max_message_bits=metrics.max_message_bits,
        time=time_complexity,
        time_all_awake=time_all_awake,
        all_awake=not asleep,
        asleep=asleep,
        wake_time=dict(metrics.wake_time),
        advice_max_bits=advice_max,
        advice_avg_bits=advice_avg,
        advice_total_bits=advice_total,
        metrics=metrics,
        trace=trace,
    )
