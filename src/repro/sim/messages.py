"""Messages and exact bit-size accounting.

The paper distinguishes the LOCAL model (unbounded messages) from the
CONGEST model (O(log n)-bit messages).  To make that distinction
executable, every payload sent through the simulator is *measured* in
bits by :func:`bit_size`; the CONGEST policy (see
:mod:`repro.models.congest`) enforces a cap on that measure.

Size convention
---------------
Payloads are built from plain Python values.  Sizes are charged as:

* ``None`` / ``bool`` — 1 bit;
* ``int`` — ``1 + bit_length`` bits (sign + magnitude; at least 2);
* ``str`` — 8 bits flat.  Strings are used exclusively as message-type
  tags drawn from an O(1)-size per-algorithm alphabet, so a constant
  cost is the honest charge.  (Payload *data* is always numeric.)
* ``tuple`` / ``list`` — sum of elements plus 2 bits of framing per
  element (self-delimiting container encoding);
* ``frozenset`` / ``set`` — as list;
* ``dict`` — keys and values as a list of pairs;
* :class:`bytes` — 8 bits per byte.

The convention over-counts small payloads slightly and never
under-counts asymptotically, which is the safe direction for verifying
upper bounds on message/bit complexity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, NamedTuple

from repro.errors import SimulationError

#: Int sequences at least this long take the vectorized measurement
#: path in :func:`bit_size` (below the threshold the type scan costs
#:  more than the plain recursion saves).
_INT_RUN_MIN = 8


def bit_size(payload: Any) -> int:
    """Exact bit cost of a payload under the module's size convention.

    Dispatches on the exact type first (the overwhelmingly common
    case), falling back to the ``isinstance`` ladder for subclasses
    and the rarer container types.  Long homogeneous int sequences —
    DFS visited lists, ID vectors — are measured with C-level
    ``sum(map(int.bit_length, ...))`` instead of per-element recursion;
    the result is identical, element by element.
    """
    t = type(payload)
    if t is int:
        return 1 + max(1, payload.bit_length())
    if t is bool or payload is None:
        return 1
    if t is str:
        return 8
    if t is tuple or t is list:
        n = len(payload)
        if n >= _INT_RUN_MIN and all(type(x) is int for x in payload):
            # Per int element: 2 framing + 1 sign + max(1, bit_length);
            # a zero has bit_length 0 but is charged the 1-bit minimum.
            return 3 * n + sum(map(int.bit_length, payload)) + payload.count(0)
        return sum(bit_size(x) + 2 for x in payload)
    return _bit_size_general(payload)


def _bit_size_general(payload: Any) -> int:
    """The full isinstance ladder: subclasses, floats, bytes, sets,
    dicts, and objects with a ``size_bits`` hint."""
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return 1 + max(1, payload.bit_length())
    if isinstance(payload, float):
        return 64
    if isinstance(payload, str):
        return 8
    if isinstance(payload, bytes):
        return 8 * len(payload)
    if isinstance(payload, (tuple, list)):
        return sum(bit_size(x) + 2 for x in payload)
    if isinstance(payload, (set, frozenset)):
        return sum(bit_size(x) + 2 for x in sorted(payload, key=repr))
    if isinstance(payload, dict):
        return sum(
            bit_size(k) + bit_size(v) + 4 for k, v in payload.items()
        )
    size_hint = getattr(payload, "size_bits", None)
    if callable(size_hint):
        return int(size_hint())
    raise SimulationError(
        f"cannot measure payload of type {type(payload).__name__}"
    )


# ----------------------------------------------------------------------
# Memoized measurement (engine hot path)
# ----------------------------------------------------------------------
# Protocols send the same few payload *shapes* over and over (flooding's
# ("wake",) tag, gossip's small tuples), so the engines measure through
# a cache keyed on a structural type signature.  The signature carries
# the exact type at every position alongside the value — (int, 1),
# (bool, True), and (float, 1.0) are distinct keys even though the
# values compare equal and would collide in a plain value-keyed dict.
_BIT_SIZE_CACHE: Dict[Any, int] = {}
_BIT_SIZE_CACHE_MAX = 4096
#: Containers longer than this are never memoized: building their key
#: costs as much as measuring them, and each giant key would pin the
#: payload in the cache.
_MEMO_MAX_LEN = 8


def _structural_key(payload: Any):
    """Hashable (type, value) signature of a payload, or None when the
    payload is not worth (or not safe to) memoize."""
    t = type(payload)
    if t is tuple or t is list:
        if len(payload) > _MEMO_MAX_LEN:
            return None
        parts = []
        for x in payload:
            k = _structural_key(x)
            if k is None:
                return None
            parts.append(k)
        return (t, tuple(parts))
    if t is int or t is bool or t is str or t is float or payload is None:
        return (t, payload)
    return None


def bit_size_cached(payload: Any) -> int:
    """:func:`bit_size` through the structural-signature memo.

    Exact by construction: a cache hit returns the stored
    :func:`bit_size` of a structurally identical payload, and anything
    without a (small, hashable) signature falls back to the exact
    computation.  Scalars skip the cache entirely — measuring them is
    cheaper than keying them.
    """
    t = type(payload)
    if t is int:
        return 1 + max(1, payload.bit_length())
    if t is bool or payload is None:
        return 1
    if t is str:
        return 8
    key = _structural_key(payload)
    if key is None:
        return bit_size(payload)
    bits = _BIT_SIZE_CACHE.get(key)
    if bits is None:
        bits = bit_size(payload)
        if len(_BIT_SIZE_CACHE) < _BIT_SIZE_CACHE_MAX:
            _BIT_SIZE_CACHE[key] = bits
    return bits


class Message(NamedTuple):
    """A message in flight.

    A ``NamedTuple`` rather than a frozen dataclass: the engines build
    one per send on the hot path, and tuple construction is ~2.5x
    cheaper than a frozen-dataclass ``__init__`` while keeping the
    same immutability guarantee (assignment raises ``AttributeError``).

    Attributes
    ----------
    src, dst:
        Topology vertex labels of the endpoints.
    dst_port:
        The port number *at the destination* over which the message
        arrives (1-based, per the paper's port-numbering convention).
    src_port:
        The port number at the source over which it was sent.
    payload:
        Arbitrary measured payload.
    bits:
        Cached :func:`bit_size` of the payload.
    sent_at:
        Simulation time (async) or round number (sync) of the send.
    seq:
        Global send sequence number; used for FIFO tie-breaking and
        deterministic replay.
    """

    src: Hashable
    dst: Hashable
    dst_port: int
    src_port: int
    payload: Any
    bits: int
    sent_at: float
    seq: int


@dataclass(slots=True)
class Send:
    """A send request emitted by a node during a computation step."""

    port: int
    payload: Any
