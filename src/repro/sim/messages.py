"""Messages and exact bit-size accounting.

The paper distinguishes the LOCAL model (unbounded messages) from the
CONGEST model (O(log n)-bit messages).  To make that distinction
executable, every payload sent through the simulator is *measured* in
bits by :func:`bit_size`; the CONGEST policy (see
:mod:`repro.models.congest`) enforces a cap on that measure.

Size convention
---------------
Payloads are built from plain Python values.  Sizes are charged as:

* ``None`` / ``bool`` — 1 bit;
* ``int`` — ``1 + bit_length`` bits (sign + magnitude; at least 2);
* ``str`` — 8 bits flat.  Strings are used exclusively as message-type
  tags drawn from an O(1)-size per-algorithm alphabet, so a constant
  cost is the honest charge.  (Payload *data* is always numeric.)
* ``tuple`` / ``list`` — sum of elements plus 2 bits of framing per
  element (self-delimiting container encoding);
* ``frozenset`` / ``set`` — as list;
* ``dict`` — keys and values as a list of pairs;
* :class:`bytes` — 8 bits per byte.

The convention over-counts small payloads slightly and never
under-counts asymptotically, which is the safe direction for verifying
upper bounds on message/bit complexity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Optional

from repro.errors import SimulationError


def bit_size(payload: Any) -> int:
    """Exact bit cost of a payload under the module's size convention."""
    if payload is None or isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return 1 + max(1, payload.bit_length())
    if isinstance(payload, float):
        return 64
    if isinstance(payload, str):
        return 8
    if isinstance(payload, bytes):
        return 8 * len(payload)
    if isinstance(payload, (tuple, list)):
        return sum(bit_size(x) + 2 for x in payload)
    if isinstance(payload, (set, frozenset)):
        return sum(bit_size(x) + 2 for x in sorted(payload, key=repr))
    if isinstance(payload, dict):
        return sum(
            bit_size(k) + bit_size(v) + 4 for k, v in payload.items()
        )
    size_hint = getattr(payload, "size_bits", None)
    if callable(size_hint):
        return int(size_hint())
    raise SimulationError(
        f"cannot measure payload of type {type(payload).__name__}"
    )


@dataclass(frozen=True)
class Message:
    """A message in flight.

    Attributes
    ----------
    src, dst:
        Topology vertex labels of the endpoints.
    dst_port:
        The port number *at the destination* over which the message
        arrives (1-based, per the paper's port-numbering convention).
    src_port:
        The port number at the source over which it was sent.
    payload:
        Arbitrary measured payload.
    bits:
        Cached :func:`bit_size` of the payload.
    sent_at:
        Simulation time (async) or round number (sync) of the send.
    seq:
        Global send sequence number; used for FIFO tie-breaking and
        deterministic replay.
    """

    src: Hashable
    dst: Hashable
    dst_port: int
    src_port: int
    payload: Any
    bits: int
    sent_at: float
    seq: int


@dataclass
class Send:
    """A send request emitted by a node during a computation step."""

    port: int
    payload: Any
