"""The per-node algorithm API.

Algorithms are written as subclasses of :class:`NodeAlgorithm` — one
instance per node — receiving callbacks from an engine:

* ``on_wake(ctx)`` — exactly once, when the node becomes awake (either
  because the adversary woke it, or because the first message arrived;
  in the latter case ``on_wake`` runs immediately before the
  corresponding ``on_message``).  Waking is permanent (Sec 1.1).
* ``on_message(ctx, port, payload)`` — on every delivery, with the
  1-based arrival port.
* ``on_round(ctx)`` — synchronous engine only: once per lock-step round
  while :meth:`NodeAlgorithm.wants_round` is true.  Nodes have no global
  clock — ``ctx.local_round`` counts rounds *since this node woke*
  (Thm 4, footnote 4).

The :class:`NodeContext` enforces the knowledge model: neighbor-ID
queries raise :class:`~repro.errors.ModelViolation` under KT0, so a KT0
algorithm cannot accidentally cheat.
"""

from __future__ import annotations

import random
from typing import Any, Hashable, List, Optional, Tuple

from repro.errors import ModelViolation, SimulationError
from repro.models.knowledge import Knowledge, NetworkSetup
from repro.sim.messages import Send, bit_size

Vertex = Hashable


class NodeContext:
    """A node's window onto the network, scoped by the knowledge model."""

    __slots__ = (
        "vertex",
        "_setup",
        "_outbox",
        "_rng",
        "local_round",
        "_awake",
        "wake_cause",
        "_phases",
        "_degree",
        "_ports",
    )

    def __init__(
        self,
        vertex: Vertex,
        setup: NetworkSetup,
        rng: "random.Random | int",
    ):
        self.vertex = vertex
        self._setup = setup
        self._outbox: List[Send] = []
        # Either a ready Random or a seed; in the latter case the
        # generator is built on first access.  Engines pass seeds so
        # that runs of rng-free algorithms never pay for n generator
        # initializations (Random.seed dominates engine setup
        # otherwise).  The stream is identical either way.
        self._rng = rng
        self.local_round = 0
        self._awake = False
        # Degree and the 1-based port range never change during a run;
        # caching them keeps send()/broadcast() free of per-call
        # dict-of-dict lookups (they sit on the engine hot path).
        self._degree = setup.ports.degree(vertex)
        self._ports = range(1, self._degree + 1)
        #: "adversary" or "message" — set by the engine immediately before
        #: ``on_wake`` (Sec 3.2: adversary-woken nodes mark themselves
        #: active; message-woken status depends on the message).
        self.wake_cause: Optional[str] = None
        #: The engine's PhaseTracker (repro.obs.phases); None when the
        #: context lives outside an engine (direct construction in
        #: tests), in which case phase() spans are no-ops.
        self._phases = None

    # ------------------------------------------------------------------
    # Identity and local knowledge (always available)
    # ------------------------------------------------------------------
    @property
    def node_id(self) -> int:
        return self._setup.id_of(self.vertex)

    @property
    def rng(self) -> random.Random:
        """This node's private random generator (lazily constructed)."""
        r = self._rng
        if type(r) is int:
            r = random.Random(r)
            self._rng = r
        return r

    @property
    def degree(self) -> int:
        return self._degree

    @property
    def ports(self) -> range:
        """All 1-based ports of this node."""
        return self._ports

    @property
    def log2_n_bound(self) -> int:
        """The known constant-factor upper bound on log2 n (Sec 1.1)."""
        return self._setup.log2_n_bound

    @property
    def advice(self) -> Any:
        """This node's oracle advice, or None if the scheme has none."""
        if self._setup.advice is None:
            return None
        return self._setup.advice.get(self.vertex)

    @property
    def awake(self) -> bool:
        return self._awake

    # ------------------------------------------------------------------
    # KT1-only knowledge
    # ------------------------------------------------------------------
    def _require_kt1(self) -> None:
        if self._setup.knowledge is not Knowledge.KT1:
            raise ModelViolation(
                "neighbor IDs are only available under the KT1 assumption"
            )

    def neighbor_id(self, port: int) -> int:
        """ID of the neighbor behind ``port`` (KT1 only)."""
        self._require_kt1()
        u = self._setup.ports.neighbor(self.vertex, port)
        return self._setup.id_of(u)

    def neighbor_ids(self) -> List[int]:
        """IDs of all neighbors, in port order (KT1 only)."""
        self._require_kt1()
        return self._setup.neighbor_ids(self.vertex)

    def port_of(self, neighbor_id: int) -> int:
        """Port leading to the neighbor with the given ID (KT1 only)."""
        self._require_kt1()
        u = self._setup.vertex_of(neighbor_id)
        return self._setup.ports.port(self.vertex, u)

    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------
    def send(self, port: int, payload: Any) -> None:
        """Queue a message over a port; size-checked against the
        bandwidth model at flush time.

        Payloads are logically immutable once sent: the engine hands
        the *same object* to the receiver and caches its measured bit
        size, so mutating a payload after ``send`` has always been
        undefined behaviour.  Send tuples (as every built-in algorithm
        does), or copy before mutating.
        """
        if not 1 <= port <= self._degree:
            raise SimulationError(
                f"node {self.vertex!r}: port {port} out of range "
                f"1..{self._degree}"
            )
        self._outbox.append(Send(port, payload))

    def send_to(self, neighbor_id: int, payload: Any) -> None:
        """Send addressed by neighbor ID (KT1 convenience)."""
        self.send(self.port_of(neighbor_id), payload)

    def broadcast(self, payload: Any) -> None:
        """Send the same payload over every port."""
        # Ports from the node's own range are valid by construction, so
        # this skips send()'s per-port range check.
        append = self._outbox.append
        for p in self._ports:
            append(Send(p, payload))

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def phase(self, name: str):
        """Open a named profiling phase: ``with ctx.phase("decode"):``.

        Wall-time inside the span and messages queued during it are
        attributed to ``name`` in the run's
        :class:`~repro.sim.metrics.Metrics` (and emitted as
        ``phase_start``/``phase_end`` telemetry events when a recorder
        is attached).  Spans nest, attribution is inclusive, and the
        call is a no-op outside an engine — algorithms can instrument
        unconditionally.  See docs/observability.md.
        """
        if self._phases is None:
            from repro.obs.phases import NULL_SPAN

            return NULL_SPAN
        return self._phases.span(name, self._outbox)

    # ------------------------------------------------------------------
    # Engine plumbing
    # ------------------------------------------------------------------
    def _drain(self) -> List[Send]:
        out, self._outbox = self._outbox, []
        return out


class NodeAlgorithm:
    """Base class for per-node protocol logic.

    Subclasses keep their state as instance attributes; the engine
    guarantees callbacks never run concurrently for the same node.
    """

    def on_wake(self, ctx: NodeContext) -> None:
        """Called exactly once when the node becomes awake."""

    def on_message(self, ctx: NodeContext, port: int, payload: Any) -> None:
        """Called for every delivered message."""

    def on_round(self, ctx: NodeContext) -> None:
        """Synchronous engine only: a lock-step computing step."""

    def wants_round(self) -> bool:
        """Whether the sync engine should keep calling :meth:`on_round`.

        Defaults to False: purely message-driven algorithms never need
        idle round callbacks, and returning False lets executions
        terminate as soon as no messages are in flight.
        """
        return False
