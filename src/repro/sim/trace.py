"""Execution traces for debugging, visualization, and the lower-bound
indistinguishability checks.

A :class:`Trace` records every wake, send, and delivery in order.  The
Theorem-2 harness (:mod:`repro.lowerbounds.theorem2`) compares traces of
executions on ID-swapped configurations to test the Lemma 5/6 argument;
tests use traces to assert fine-grained protocol behaviour (e.g. "each
DFS token traverses each tree edge at most twice", Claim 1).

Passing ``maxlen`` turns the trace into a bounded **flight recorder**:
only the most recent ``maxlen`` events are kept (O(maxlen) memory
however long the run), with :attr:`dropped` counting the evicted
prefix.  The parallel executor uses this mode to attach the tail of a
failing cell's execution to its failure record
(``CellSpec.flight_recorder``) — the last events before a wake-up
failure are usually exactly the diagnostic one needs.  The query
helpers (:meth:`sends`, :meth:`messages_between`, ...) then describe
the retained window only.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Hashable, List, Optional, Tuple

from repro.sim.messages import Message

Vertex = Hashable

#: Flight-recorder tail length used by default when a cell requests
#: crash tracing without choosing a size.
DEFAULT_FLIGHT_RECORDER = 64


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded event.

    ``kind`` is "wake", "send", or "deliver".  For wakes, ``detail``
    is the cause ("adversary" or "message"); for sends/deliveries it is
    the :class:`~repro.sim.messages.Message`.
    """

    time: float
    kind: str
    vertex: Vertex
    detail: Any

    def describe(self) -> str:
        """Compact one-line rendering (flight-recorder dumps)."""
        if self.kind == "wake":
            return f"t={self.time:.6g} wake {self.vertex!r} by {self.detail}"
        msg = self.detail
        arrow = "->" if self.kind == "send" else "=>"
        return (
            f"t={self.time:.6g} {self.kind} "
            f"{msg.src!r}{arrow}{msg.dst!r} {msg.payload!r}"
        )


class Trace:
    """Ordered event log of a single execution.

    ``maxlen=None`` (default) keeps every event; an integer keeps only
    the newest ``maxlen`` (ring-buffer / flight-recorder mode).
    """

    def __init__(self, maxlen: Optional[int] = None) -> None:
        if maxlen is not None and maxlen < 1:
            raise ValueError("Trace maxlen must be a positive integer")
        self.maxlen = maxlen
        self.events: "deque[TraceEvent]" = deque(maxlen=maxlen)
        #: Events evicted from the front of the ring buffer (always 0
        #: in unbounded mode).
        self.dropped: int = 0

    def _append(self, event: TraceEvent) -> None:
        if self.maxlen is not None and len(self.events) == self.maxlen:
            self.dropped += 1
        self.events.append(event)

    # -- recording hooks (called by engines) -----------------------------
    def wake(self, time: float, vertex: Vertex, cause: str) -> None:
        """Record a wake event ("adversary" or "message")."""
        self._append(TraceEvent(time, "wake", vertex, cause))

    def send(self, time: float, msg: Message) -> None:
        """Record a message send."""
        self._append(TraceEvent(time, "send", msg.src, msg))

    def deliver(self, time: float, msg: Message) -> None:
        """Record a message delivery."""
        self._append(TraceEvent(time, "deliver", msg.dst, msg))

    # -- queries -----------------------------------------------------------
    def sends(self) -> List[Message]:
        """All sent messages, in send order."""
        return [e.detail for e in self.events if e.kind == "send"]

    def deliveries(self) -> List[Message]:
        """All delivered messages, in delivery order."""
        return [e.detail for e in self.events if e.kind == "deliver"]

    def wakes(self) -> List[Tuple[float, Vertex, str]]:
        """All wake events as (time, vertex, cause) tuples."""
        return [
            (e.time, e.vertex, e.detail)
            for e in self.events
            if e.kind == "wake"
        ]

    def edges_used(self) -> set:
        """Set of directed edges over which at least one message was sent."""
        return {(m.src, m.dst) for m in self.sends()}

    def messages_between(self, u: Vertex, v: Vertex) -> int:
        """Messages sent over the undirected edge {u, v} (both directions)."""
        return sum(
            1
            for m in self.sends()
            if (m.src, m.dst) in ((u, v), (v, u))
        )

    def tail(self, count: Optional[int] = None) -> List[str]:
        """The last ``count`` (default: all retained) events rendered
        as one-line strings — the flight-recorder dump format.  A
        leading marker line reports how much history was evicted."""
        events = list(self.events)
        if count is not None:
            events = events[-count:]
        lines = [e.describe() for e in events]
        hidden = self.dropped + (len(self.events) - len(events))
        if hidden:
            lines.insert(0, f"... ({hidden} earlier events not retained)")
        return lines

    def __len__(self) -> int:
        return len(self.events)
