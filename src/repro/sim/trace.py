"""Execution traces for debugging, visualization, and the lower-bound
indistinguishability checks.

A :class:`Trace` records every wake, send, and delivery in order.  The
Theorem-2 harness (:mod:`repro.lowerbounds.theorem2`) compares traces of
executions on ID-swapped configurations to test the Lemma 5/6 argument;
tests use traces to assert fine-grained protocol behaviour (e.g. "each
DFS token traverses each tree edge at most twice", Claim 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, List, Optional, Tuple

from repro.sim.messages import Message

Vertex = Hashable


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    ``kind`` is "wake", "send", or "deliver".  For wakes, ``detail``
    is the cause ("adversary" or "message"); for sends/deliveries it is
    the :class:`~repro.sim.messages.Message`.
    """

    time: float
    kind: str
    vertex: Vertex
    detail: Any


class Trace:
    """Ordered event log of a single execution."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    # -- recording hooks (called by engines) -----------------------------
    def wake(self, time: float, vertex: Vertex, cause: str) -> None:
        """Record a wake event ("adversary" or "message")."""
        self.events.append(TraceEvent(time, "wake", vertex, cause))

    def send(self, time: float, msg: Message) -> None:
        """Record a message send."""
        self.events.append(TraceEvent(time, "send", msg.src, msg))

    def deliver(self, time: float, msg: Message) -> None:
        """Record a message delivery."""
        self.events.append(TraceEvent(time, "deliver", msg.dst, msg))

    # -- queries -----------------------------------------------------------
    def sends(self) -> List[Message]:
        """All sent messages, in send order."""
        return [e.detail for e in self.events if e.kind == "send"]

    def deliveries(self) -> List[Message]:
        """All delivered messages, in delivery order."""
        return [e.detail for e in self.events if e.kind == "deliver"]

    def wakes(self) -> List[Tuple[float, Vertex, str]]:
        """All wake events as (time, vertex, cause) tuples."""
        return [
            (e.time, e.vertex, e.detail)
            for e in self.events
            if e.kind == "wake"
        ]

    def edges_used(self) -> set:
        """Set of directed edges over which at least one message was sent."""
        return {(m.src, m.dst) for m in self.sends()}

    def messages_between(self, u: Vertex, v: Vertex) -> int:
        """Messages sent over the undirected edge {u, v} (both directions)."""
        return sum(
            1
            for m in self.sends()
            if (m.src, m.dst) in ((u, v), (v, u))
        )

    def __len__(self) -> int:
        return len(self.events)
