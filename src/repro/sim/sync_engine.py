"""Synchronous lock-step engine.

Implements the synchronous model of Sec 3.2: computation proceeds in
rounds; every message sent in round r is delivered by the start of
round r + 1.  Nodes have **no global clock** — a node only observes its
own local round counter, which starts when it wakes (footnote 4 of the
paper).  The adversary wakes scheduled nodes at integer round numbers.

Round structure (round r):

1. deliver every message sent in round r - 1, waking sleeping
   recipients (``on_wake`` then ``on_message``);
2. apply adversary wake-ups scheduled for round r;
3. give every awake node whose :meth:`wants_round` is true a
   computation step (``on_round``), with ``ctx.local_round`` set to the
   number of rounds since it woke (0 in its wake round).

Sends emitted anywhere within round r are delivered in step 1 of round
r + 1.  The execution ends when no messages are in flight, no future
wake-ups remain, and no node wants further rounds.
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.models.knowledge import NetworkSetup
from repro.obs.metrics import get_registry
from repro.obs.phases import PhaseTracker
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.sim.adversary import Adversary
from repro.sim.faults import NoDrops
from repro.sim.messages import Message, bit_size_cached
from repro.sim.metrics import Metrics
from repro.sim.node import NodeAlgorithm, NodeContext
from repro.sim.trace import Trace

Vertex = Hashable

# Telemetry heartbeat cadence: one engine_step event per this many
# lock-step rounds (when a recorder is enabled).
_STEP_EVERY_ROUNDS = 128

# Sentinel for the payload-identity memo ("no payload seen yet").
_UNSET = object()


class SyncEngine:
    """Runs one synchronous execution of a wake-up algorithm."""

    def __init__(
        self,
        setup: NetworkSetup,
        nodes: Dict[Vertex, NodeAlgorithm],
        adversary: Adversary,
        seed: int = 0,
        max_rounds: int = 1_000_000,
        trace: Optional[Trace] = None,
        recorder: Optional[Recorder] = None,
    ):
        self.setup = setup
        self.nodes = nodes
        self.adversary = adversary
        self.metrics = Metrics()
        self.trace = trace
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.phases = PhaseTracker(
            self.metrics, self.recorder, fields={"n": setup.n}
        )
        self._max_rounds = max_rounds
        self._seq = itertools.count()
        self.rounds_executed = 0

        self._ctx: Dict[Vertex, NodeContext] = {}
        self._wake_round: Dict[Vertex, int] = {}
        # Deterministic processing order for nodes within a round.
        self._order: List[Vertex] = sorted(
            setup.graph.vertices(), key=lambda v: setup.id_of(v)
        )
        for v in setup.graph.vertices():
            # Seed only; the context builds the Random on first use.
            node_rng = (seed * 1_000_003 + setup.id_of(v)) % 2**63
            ctx = NodeContext(v, setup, node_rng)
            ctx._phases = self.phases
            self._ctx[v] = ctx
        missing = set(setup.graph.vertices()) - set(nodes)
        if missing:
            raise SimulationError(
                f"{len(missing)} vertices have no algorithm instance"
            )
        # Fractional wake times round *up* to the next integer round:
        # a wake scheduled at t = 2.7 cannot land in round 2 — that
        # would wake the node before the adversary asked to.  ceil is
        # exact for integer-valued floats (ceil(2.0) == 2), so integer
        # schedules are unaffected.
        self._schedule: Dict[int, List[Vertex]] = {}
        for v, t in adversary.schedule.times().items():
            if not setup.graph.has_vertex(v):
                raise SimulationError(f"schedule wakes unknown vertex {v!r}")
            self._schedule.setdefault(math.ceil(t), []).append(v)

        # Hot-path fast lane (mirrors AsyncEngine): per-vertex send
        # tables and a flush path specialized for the run's fixed
        # drop/trace configuration.
        self._tables = {
            v: setup.ports.table(v) for v in setup.graph.vertices()
        }
        drops = getattr(adversary, "drops", None)
        if type(drops) is NoDrops:
            drops = None  # structurally a no-op; take the fast lane
        self._drops = drops
        if drops is None and trace is None:
            self._flush = self._flush_fast
        else:
            self._flush = self._flush_full
        # LOCAL runs (cap None) skip the per-send bandwidth call.
        self._bw_cap = setup.bandwidth.cap_bits
        # Payload-identity memo (see AsyncEngine): broadcasts reuse one
        # payload object across ports, and constant payloads across
        # calls; holding the reference keeps the id() stable.
        self._memo_payload: Any = _UNSET
        self._memo_bits = 0

    # ------------------------------------------------------------------
    def run(self) -> Metrics:
        """Execute rounds until quiescence; returns the metrics.

        As in the async engine, the whole round loop runs inside the
        implicit ``"engine"`` phase.
        """
        self.phases._start("engine", None)
        try:
            return self._run_rounds()
        finally:
            self.phases._stop()

    def _run_rounds(self) -> Metrics:
        rec = self.recorder
        rec_enabled = rec.enabled  # fixed for the run; hoisted
        mreg = get_registry()
        # Per-round frontier observation (messages in flight into the
        # next round); hoisted so the disabled path costs one `is None`
        # check per round.
        frontier_obs = (
            mreg.histogram(
                "repro_engine_frontier_size", engine="sync"
            ).observe
            if mreg.enabled
            else None
        )
        in_flight: List[Message] = []
        r = 0
        last_wake_round = max(self._schedule) if self._schedule else 0
        while True:
            if r > self._max_rounds:
                raise SimulationError(
                    f"round budget of {self._max_rounds} exceeded; "
                    "the protocol is likely not terminating"
                )
            # 1. deliver last round's messages ---------------------------
            for msg in in_flight:
                self._deliver(msg, r)
            in_flight = []

            # 2. adversary wake-ups --------------------------------------
            for v in self._schedule.get(r, ()):
                self._wake(v, r, "adversary")

            # 3. computation steps ---------------------------------------
            for v in self._order:
                ctx = self._ctx[v]
                if ctx._awake and self.nodes[v].wants_round():
                    ctx.local_round = r - self._wake_round[v]
                    self.nodes[v].on_round(ctx)

            # collect sends emitted during this round --------------------
            for v in self._order:
                if self._ctx[v]._outbox:
                    self._flush(v, r, in_flight)

            self.rounds_executed = r + 1
            self.metrics.events_processed += 1
            if frontier_obs is not None and in_flight:
                frontier_obs(len(in_flight))
            r += 1
            if rec_enabled and r % _STEP_EVERY_ROUNDS == 0:
                rec.emit(
                    "engine_step",
                    events=self.metrics.events_processed,
                    now=float(r),
                    awake=self.metrics.awake_count(),
                    n=self.setup.n,
                    engine="sync",
                )
            anyone_active = any(
                self._ctx[v]._awake and self.nodes[v].wants_round()
                for v in self._order
            )
            if not in_flight and r > last_wake_round and not anyone_active:
                break
        if mreg.enabled:
            metrics = self.metrics
            mreg.counter("repro_engine_runs_total", engine="sync").inc()
            mreg.counter(
                "repro_engine_events_total", engine="sync"
            ).inc(metrics.events_processed)
            mreg.counter(
                "repro_engine_messages_total", engine="sync"
            ).inc(metrics.messages_total)
            mreg.counter(
                "repro_engine_bits_total", engine="sync"
            ).inc(metrics.bits_total)
        return self.metrics

    # ------------------------------------------------------------------
    @property
    def round_complexity(self) -> int:
        """Rounds elapsed between the first wake-up and the last activity."""
        if self.metrics.first_wake is None:
            return 0
        return int(self.metrics.last_activity - self.metrics.first_wake)

    # ------------------------------------------------------------------
    def _wake(self, v: Vertex, r: int, cause: str) -> None:
        ctx = self._ctx[v]
        if ctx._awake:
            return
        ctx._awake = True
        ctx.wake_cause = cause
        self._wake_round[v] = r
        ctx.local_round = 0
        self.metrics.record_wake(v, float(r), cause)
        if self.trace is not None:
            self.trace.wake(float(r), v, cause)
        self.nodes[v].on_wake(ctx)

    def _deliver(self, msg: Message, r: int) -> None:
        v = msg.dst
        ctx = self._ctx[v]
        self.metrics.record_receive(v, float(r))
        if self.trace is not None:
            self.trace.deliver(float(r), msg)
        if not ctx._awake:
            self._wake(v, r, "message")
        ctx.local_round = r - self._wake_round[v]
        self.nodes[v].on_message(ctx, msg.dst_port, msg.payload)

    # ------------------------------------------------------------------
    # Flush paths — one is bound to self._flush at init.  Both turn a
    # node's queued sends into in-flight messages for the next round;
    # the fast lane drops the per-send drop/trace branches entirely.
    # ------------------------------------------------------------------
    def _flush_fast(self, v: Vertex, r: int, in_flight: List[Message]) -> None:
        """Fast lane: no drop strategy, no trace.

        Metric counters are accumulated locally and written back once
        per flush (Metrics.record_send, batched); the write-back sits
        in a ``finally`` so totals stay correct even when a bandwidth
        violation aborts the flush mid-loop.
        """
        ctx = self._ctx[v]
        sends = ctx._outbox
        if not sends:
            return
        ctx._outbox = []
        neighbors, back_ports = self._tables[v]
        sent_at = float(r)
        seq_next = self._seq.__next__
        cap = self._bw_cap
        metrics = self.metrics
        edge_messages = metrics.edge_messages
        append = in_flight.append
        last_payload = self._memo_payload
        last_bits = self._memo_bits
        n_sent = 0
        bits_sum = 0
        max_bits = metrics.max_message_bits
        try:
            for send in sends:
                port = send.port
                dst = neighbors[port - 1]
                payload = send.payload
                if payload is last_payload:
                    bits = last_bits
                else:
                    bits = bit_size_cached(payload)
                    last_payload = payload
                    last_bits = bits
                if cap is not None and bits > cap:
                    self.setup.bandwidth.check(bits)
                n_sent += 1
                bits_sum += bits
                if bits > max_bits:
                    max_bits = bits
                edge_messages[(v, dst)] += 1
                append(
                    Message(
                        v, dst, back_ports[port - 1], port, payload, bits,
                        sent_at, seq_next(),
                    )
                )
        finally:
            self._memo_payload = last_payload
            self._memo_bits = last_bits
            if n_sent:
                metrics.messages_total += n_sent
                metrics.bits_total += bits_sum
                metrics.max_message_bits = max_bits
                metrics.sent_by[v] += n_sent

    def _flush_full(self, v: Vertex, r: int, in_flight: List[Message]) -> None:
        """General path: fault injection and/or tracing enabled."""
        ctx = self._ctx[v]
        neighbors, back_ports = self._tables[v]
        sent_at = float(r)
        drops = self._drops
        trace = self.trace
        for send in ctx._drain():
            port = send.port
            dst = neighbors[port - 1]
            payload = send.payload
            bits = bit_size_cached(payload)
            self.setup.bandwidth.check(bits)
            seq = next(self._seq)
            if drops is not None and drops.drops(v, dst, seq):
                # Fault injection (repro.sim.faults): as in the async
                # engine, the message is charged to the sender but
                # never delivered (and never enters the trace).
                self.metrics.record_send(v, dst, bits)
                continue
            msg = Message(
                v, dst, back_ports[port - 1], port, payload, bits,
                sent_at, seq,
            )
            self.metrics.record_send(v, dst, bits)
            if trace is not None:
                trace.send(sent_at, msg)
            in_flight.append(msg)
