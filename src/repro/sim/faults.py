"""Fault injection — robustness testing beyond the paper's model.

The paper assumes error-free FIFO channels (Sec 1.1); every guarantee
in Table 1 is stated under that assumption.  Real Wake-on-LAN networks
drop packets, so a library an operator would adopt should let them ask:
*which of these algorithms degrade gracefully when the channel model is
violated?*  This module adds an optional message-loss layer:

* :class:`DropStrategy` — decides, per send, whether the message is
  lost.  Like delays, drops are **oblivious**: pure functions of
  (edge, sequence number, construction seed), never of node state.
* :class:`FaultyAdversary` — an :class:`~repro.sim.adversary.Adversary`
  carrying a drop strategy; both engines consult it at send time (a
  dropped message is charged to the sender and never delivered).

Findings the tests encode: flooding tolerates substantial loss on
dense graphs (every node has many wake chances), while the tree-based
advice schemes are single-path fragile — one lost probe strands a
subtree.  That redundancy/efficiency trade is invisible in the paper's
model and is exactly what fault injection is for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional

from repro.errors import SimulationError
from repro.sim.adversary import Adversary, DelayStrategy, UnitDelay, WakeSchedule

Vertex = Hashable


class DropStrategy:
    """Decides whether a given send is lost in transit."""

    def drops(self, src: Vertex, dst: Vertex, seq: int) -> bool:
        """Whether the ``seq``-th send over src->dst is lost."""
        raise NotImplementedError


class NoDrops(DropStrategy):
    def drops(self, src, dst, seq) -> bool:
        return False


class BernoulliDrops(DropStrategy):
    """Each message is lost independently with probability p, derived
    from a deterministic per-(edge, seq) hash (replayable)."""

    def __init__(self, p: float, seed: int = 0):
        if not 0.0 <= p < 1.0:
            raise SimulationError("drop probability must be in [0, 1)")
        self.p = p
        self._seed = seed

    def drops(self, src, dst, seq) -> bool:
        if self.p == 0.0:
            return False
        h = hash((self._seed, repr(src), repr(dst), seq))
        u = ((h % 2**32) + 0.5) / 2**32
        return u < self.p


class TargetedDrops(DropStrategy):
    """Lose every message on a chosen set of directed edges — the
    adversarial cut scenario."""

    def __init__(self, edges):
        self._edges = {(repr(a), repr(b)) for a, b in edges}

    def drops(self, src, dst, seq) -> bool:
        return (repr(src), repr(dst)) in self._edges


@dataclass
class FaultyAdversary(Adversary):
    """Adversary with message loss (both engines)."""

    drops: DropStrategy = field(default_factory=NoDrops)
