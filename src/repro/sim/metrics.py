"""Execution metrics: the paper's complexity measures, made measurable.

Collects exactly the quantities Table 1 reports:

* **message complexity** — total messages sent over the execution
  (Sec 1.2), plus per-node and per-edge breakdowns and total bits;
* **time complexity** — for async runs, (last delivery or wake) minus
  (first wake), with delays normalized to tau = 1; for sync runs the
  number of lock-step rounds between the first wake and the last
  activity;
* **wake times** — when each node woke, from which the realized
  awake-distance behaviour is derived.

Advice-length statistics live with the oracle
(:mod:`repro.advice.oracle`) since they are a property of the advising
scheme, not of an execution.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

Vertex = Hashable


@dataclass
class Metrics:
    """Mutable metric accumulator owned by an engine."""

    messages_total: int = 0
    bits_total: int = 0
    max_message_bits: int = 0
    sent_by: Counter = field(default_factory=Counter)
    received_by: Counter = field(default_factory=Counter)
    edge_messages: Counter = field(default_factory=Counter)
    wake_time: Dict[Vertex, float] = field(default_factory=dict)
    wake_cause: Dict[Vertex, str] = field(default_factory=dict)
    first_wake: Optional[float] = None
    last_activity: float = 0.0
    events_processed: int = 0
    # Per-phase attribution (repro.obs.phases.PhaseTracker): wall-time
    # is real-clock profiling data and therefore nondeterministic;
    # message and entry counts are deterministic.
    phase_time: Dict[str, float] = field(default_factory=dict)
    phase_messages: Counter = field(default_factory=Counter)
    phase_entries: Counter = field(default_factory=Counter)
    # Messages sent per round, filled by the bulk engine (the
    # per-message engines derive the same histogram from traces).
    # In-process only: O(rounds), dropped by compact().
    round_messages: List[int] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Recording (called by engines)
    # ------------------------------------------------------------------
    def record_send(self, src: Vertex, dst: Vertex, bits: int) -> None:
        """Charge one message of ``bits`` bits to the sender."""
        self.messages_total += 1
        self.bits_total += bits
        if bits > self.max_message_bits:
            self.max_message_bits = bits
        self.sent_by[src] += 1
        self.edge_messages[(src, dst)] += 1

    def record_receive(self, dst: Vertex, time: float) -> None:
        """Record a delivery at ``dst``."""
        self.received_by[dst] += 1
        self.note_activity(time)

    def record_wake(self, v: Vertex, time: float, cause: str) -> None:
        """Record v's (first and only) wake."""
        if v in self.wake_time:
            return  # waking is permanent; repeat wakes are no-ops
        self.wake_time[v] = time
        self.wake_cause[v] = cause
        if self.first_wake is None or time < self.first_wake:
            self.first_wake = time
        self.note_activity(time)

    def note_activity(self, time: float) -> None:
        """Advance the last-activity clock."""
        if time > self.last_activity:
            self.last_activity = time

    def record_phase(
        self, name: str, elapsed: float, messages: int = 0
    ) -> None:
        """Attribute one closed phase span (see
        :class:`repro.obs.phases.PhaseTracker`)."""
        self.phase_time[name] = self.phase_time.get(name, 0.0) + elapsed
        self.phase_messages[name] += messages
        self.phase_entries[name] += 1

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def time_complexity(self) -> float:
        """Sec 1.2: time from the first wake-up to the last activity."""
        if self.first_wake is None:
            return 0.0
        return self.last_activity - self.first_wake

    @property
    def time_all_awake(self) -> float:
        """Time from the first wake-up until the *last* wake-up.

        This is the measure the rho_awk statements are about ("wakes up
        all nodes within ... rounds"); it never exceeds
        :attr:`time_complexity`, which additionally counts trailing
        message deliveries to already-awake nodes.
        """
        if self.first_wake is None or not self.wake_time:
            return 0.0
        return max(self.wake_time.values()) - self.first_wake

    def awake_count(self) -> int:
        """How many nodes have woken so far."""
        return len(self.wake_time)

    def messages_per_node_max(self) -> int:
        """Worst per-node sent + received load."""
        combined = self.sent_by + self.received_by
        return max(combined.values(), default=0)

    def total_awake_time(self) -> float:
        """Sum over nodes of (last activity - wake time): a proxy for
        the energy spent listening while awake.

        This is the quantity the Wake-on-LAN motivation (Sec 1) cares
        about beyond message count; note it is distinct from the
        *awake complexity* literature the paper's footnote 2
        distinguishes itself from (there the algorithm controls the
        sleep schedule; here waking is permanent).
        """
        return sum(
            self.last_activity - t for t in self.wake_time.values()
        )

    def wake_cause_counts(self) -> Dict[str, int]:
        """How many nodes woke per cause ("adversary"/"message"),
        sorted by cause name — the cause-of-wake breakdown benches
        report."""
        counts = Counter(self.wake_cause.values())
        return {cause: counts[cause] for cause in sorted(counts)}

    def phase_profile(self) -> Dict[str, Dict[str, float]]:
        """Per-phase profile, sorted by descending wall-time:
        ``{phase: {"time_s", "messages", "entries"}}``."""
        return {
            name: {
                "time_s": self.phase_time[name],
                "messages": int(self.phase_messages[name]),
                "entries": int(self.phase_entries[name]),
            }
            for name in sorted(
                self.phase_time, key=self.phase_time.get, reverse=True
            )
        }

    def wake_latency(self, v: Vertex) -> Optional[float]:
        """Time between the global first wake and v's wake, or None if v
        never woke."""
        if v not in self.wake_time or self.first_wake is None:
            return None
        return self.wake_time[v] - self.first_wake

    def summary(self) -> Dict[str, float]:
        """A flat dict convenient for bench tables and logging."""
        return {
            "messages": float(self.messages_total),
            "bits": float(self.bits_total),
            "max_message_bits": float(self.max_message_bits),
            "time": float(self.time_complexity),
            "awake": float(self.awake_count()),
            "events": float(self.events_processed),
        }

    # ------------------------------------------------------------------
    # Lean serialization (parallel executor / result cache)
    # ------------------------------------------------------------------
    def compact(self) -> "Metrics":
        """A lightweight copy that keeps every scalar but drops the
        per-node/per-edge Counters and the per-vertex wake-time map.

        Used when a result crosses a process boundary or is persisted to
        the on-disk cache: the heavy collections grow with n and m, yet
        everything Table 1 reports is scalar.  The wake-time map is
        replaced by placeholder entries that preserve the derived
        quantities (:meth:`awake_count`, :attr:`time_all_awake`) without
        carrying a per-vertex dict (placeholder keys hash stably and
        compare equal across processes).  The wake-cause map gets the
        same treatment: per-vertex attribution is dropped, per-cause
        counts (:meth:`wake_cause_counts`) survive exactly.  Phase
        profiles are small (O(#phases)) and copied through whole.
        """
        m = Metrics(
            messages_total=self.messages_total,
            bits_total=self.bits_total,
            max_message_bits=self.max_message_bits,
            first_wake=self.first_wake,
            last_activity=self.last_activity,
            events_processed=self.events_processed,
            phase_time=dict(self.phase_time),
            phase_messages=Counter(self.phase_messages),
            phase_entries=Counter(self.phase_entries),
        )
        if self.wake_time:
            count = len(self.wake_time)
            last_wake = max(self.wake_time.values())
            first = self.first_wake if self.first_wake is not None else last_wake
            m.wake_time = {("awake", i): first for i in range(count - 1)}
            m.wake_time[("awake", count - 1)] = last_wake
            # Re-attach causes to the placeholder keys in sorted-cause
            # order: which placeholder carries which cause is arbitrary,
            # the per-cause counts are preserved bit-for-bit.
            causes = [
                c
                for cause, cnt in self.wake_cause_counts().items()
                for c in [cause] * cnt
            ]
            m.wake_cause = {
                ("awake", i): cause for i, cause in enumerate(causes)
            }
        return m

    @staticmethod
    def placeholder_wake_causes(counts: Dict[str, int]) -> Dict:
        """Rebuild a placeholder ``wake_cause`` map (keys aligned with
        :meth:`compact`'s wake-time placeholders) from per-cause
        counts; used by the lean-result deserializer."""
        causes = [
            c
            for cause in sorted(counts)
            for c in [cause] * int(counts[cause])
        ]
        return {("awake", i): cause for i, cause in enumerate(causes)}
