"""Asynchronous discrete-event engine.

Implements the paper's asynchronous model (Sec 1.1–1.2):

* every message suffers an unpredictable but finite delay, chosen by an
  oblivious adversary (a :class:`~repro.sim.adversary.DelayStrategy`);
  delays are normalized so the maximum is tau = 1 time unit;
* channels are error-free and FIFO — the engine enforces per-directed-
  edge delivery ordering even when the adversary's raw delays would
  reorder messages;
* local computation is instantaneous and free;
* a sleeping node is woken by the arrival of any message and processes
  that message immediately upon awakening; adversary wake-ups happen at
  schedule times; waking is permanent.

The event loop is deterministic: ties in delivery time break by global
send sequence number, and adversary wake-ups at equal times break by
schedule insertion order.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.models.knowledge import NetworkSetup
from repro.obs.metrics import get_registry
from repro.obs.phases import PhaseTracker
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.sim.adversary import Adversary
from repro.sim.faults import NoDrops
from repro.sim.messages import Message, bit_size_cached
from repro.sim.metrics import Metrics
from repro.sim.node import NodeAlgorithm, NodeContext
from repro.sim.trace import Trace

Vertex = Hashable

_WAKE = 0
_DELIVER = 1

# FIFO enforcement pushes a delivery this far past the previous one on
# the same directed channel, when the tau = 1 delay bound leaves room;
# small enough to never matter for the time accounting.  When the
# channel's high-water mark already sits at the bound (e.g. unit-delay
# bursts), the delivery instead ties with it and the heap's send-
# sequence tie-break keeps FIFO order — a bump past sent_at + 1 would
# violate the normalization and inflate time_complexity.
_FIFO_EPS = 1e-9

# Telemetry heartbeat cadence: one engine_step event per this many
# processed events (when a recorder is enabled).
_STEP_EVERY = 1_000

# Sentinel for the engine's payload-identity memo ("no payload seen
# yet"); a fresh object is never identical to any payload.
_UNSET = object()


class AsyncEngine:
    """Runs one asynchronous execution of a wake-up algorithm."""

    def __init__(
        self,
        setup: NetworkSetup,
        nodes: Dict[Vertex, NodeAlgorithm],
        adversary: Adversary,
        seed: int = 0,
        max_events: int = 5_000_000,
        trace: Optional[Trace] = None,
        recorder: Optional[Recorder] = None,
        controller=None,
    ):
        self.setup = setup
        # Schedule controller (repro.check): when set, run() delegates
        # to the controlled loop.  Same zero-overhead discipline as
        # NULL_RECORDER — the plain hot path pays one attribute check
        # per run(), not per event.
        self._controller = controller
        self.nodes = nodes
        self.adversary = adversary
        self.metrics = Metrics()
        self.trace = trace
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.phases = PhaseTracker(
            self.metrics, self.recorder, fields={"n": setup.n}
        )
        self._max_events = max_events
        self._seq = itertools.count()
        self._heap: List[Tuple[float, int, int, Any]] = []
        self._fifo_last: Dict[Tuple[Vertex, Vertex], float] = {}
        self._now = 0.0

        # Hot-path fast lane: per-vertex send tables (one validated
        # lookup per vertex instead of two checked dict walks per
        # send), and a flush path specialized at init for the run's
        # fixed drop/trace configuration.
        self._tables = {
            v: setup.ports.table(v) for v in setup.graph.vertices()
        }
        drops = getattr(adversary, "drops", None)
        if type(drops) is NoDrops:
            drops = None  # structurally a no-op; take the fast lane
        self._drops = drops
        if drops is None and trace is None:
            self._flush = self._flush_fast
        else:
            self._flush = self._flush_full
        # LOCAL runs (cap None) skip the per-send bandwidth call.
        self._bw_cap = setup.bandwidth.cap_bits
        # Broadcasts reuse one payload object across ports (and
        # constant payloads across calls), so one identity check
        # usually replaces the whole bit_size_cached lookup.  Holding
        # the reference keeps the id() stable.
        self._memo_payload: Any = _UNSET
        self._memo_bits = 0

        self._ctx: Dict[Vertex, NodeContext] = {}
        for v in setup.graph.vertices():
            # Seed only; the context builds the Random on first use.
            node_rng = (seed * 1_000_003 + setup.id_of(v)) % 2**63
            ctx = NodeContext(v, setup, node_rng)
            ctx._phases = self.phases
            self._ctx[v] = ctx
        missing = set(setup.graph.vertices()) - set(nodes)
        if missing:
            raise SimulationError(
                f"{len(missing)} vertices have no algorithm instance"
            )
        # One dict hit per event instead of two (ctx map + node map).
        self._vstate: Dict[Vertex, Tuple[NodeContext, NodeAlgorithm]] = {
            v: (self._ctx[v], nodes[v]) for v in setup.graph.vertices()
        }

        for v, t in adversary.schedule.times().items():
            if not setup.graph.has_vertex(v):
                raise SimulationError(f"schedule wakes unknown vertex {v!r}")
            heapq.heappush(self._heap, (t, next(self._seq), _WAKE, v))

    # ------------------------------------------------------------------
    def run(self) -> Metrics:
        """Process events until quiescence; returns the metrics.

        The whole event loop runs inside the implicit ``"engine"``
        phase, so every execution has at least one phase profile entry
        even for algorithms that declare no phases of their own.
        """
        if self._controller is not None:
            from repro.check.controller import run_controlled

            return run_controlled(self)
        rec = self.recorder
        rec_enabled = rec.enabled  # fixed for the run; hoisted
        mreg = get_registry()
        # Heap-depth sampling shares the heartbeat cadence; the child
        # observe is hoisted so the disabled path costs one `is None`
        # check per event, same discipline as rec_enabled.
        frontier_obs = (
            mreg.histogram(
                "repro_engine_frontier_size", engine="async"
            ).observe
            if mreg.enabled
            else None
        )
        heap = self._heap
        pop = heapq.heappop
        handle_wake = self._handle_wake
        max_events = self._max_events
        vstate = self._vstate
        metrics = self.metrics
        received_by = metrics.received_by
        trace = self.trace
        flush = self._flush
        now = self._now
        processed = 0
        self.phases._start("engine", None)
        try:
            while heap:
                time, _tie, kind, msg = pop(heap)
                if time < now - 1e-12:
                    raise SimulationError("event scheduled in the past")
                if time > now:
                    now = time
                    self._now = time
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"event budget of {self._max_events} exceeded; "
                        "the protocol is likely not terminating"
                    )
                if kind == _WAKE:
                    handle_wake(msg, time, cause="adversary")
                else:
                    # Delivery handling, inlined (this is the hot
                    # path; a method call per event is measurable).
                    # Metrics.record_receive is inlined too.
                    v = msg.dst
                    ctx, node = vstate[v]
                    received_by[v] += 1
                    if time > metrics.last_activity:
                        metrics.last_activity = time
                    if trace is not None:
                        trace.deliver(time, msg)
                    if not ctx._awake:
                        # Receipt of a message wakes a sleeping node;
                        # the message is then processed immediately
                        # (Sec 1.1).
                        ctx._awake = True
                        ctx.wake_cause = "message"
                        metrics.record_wake(v, time, "message")
                        if trace is not None:
                            trace.wake(time, v, "message")
                        node.on_wake(ctx)
                    node.on_message(ctx, msg.dst_port, msg.payload)
                    flush(v, time)
                if frontier_obs is not None and processed % _STEP_EVERY == 0:
                    frontier_obs(len(heap))
                if rec_enabled and processed % _STEP_EVERY == 0:
                    rec.emit(
                        "engine_step",
                        events=processed,
                        now=self._now,
                        awake=self.metrics.awake_count(),
                        n=self.setup.n,
                        engine="async",
                    )
        finally:
            self.phases._stop()
        self.metrics.events_processed = processed
        if mreg.enabled:
            mreg.counter("repro_engine_runs_total", engine="async").inc()
            mreg.counter(
                "repro_engine_events_total", engine="async"
            ).inc(processed)
            mreg.counter(
                "repro_engine_messages_total", engine="async"
            ).inc(metrics.messages_total)
            mreg.counter(
                "repro_engine_bits_total", engine="async"
            ).inc(metrics.bits_total)
        return self.metrics

    # ------------------------------------------------------------------
    def _handle_wake(self, v: Vertex, time: float, cause: str) -> None:
        ctx, node = self._vstate[v]
        if ctx._awake:
            return
        ctx._awake = True
        ctx.wake_cause = cause
        self.metrics.record_wake(v, time, cause)
        if self.trace is not None:
            self.trace.wake(time, v, cause)
        node.on_wake(ctx)
        self._flush(v, time)

    def _fifo_slot(self, prev: float, cap: float, chan) -> float:
        """A FIFO-consistent delivery time after ``prev`` within the
        tau = 1 bound ``cap`` (= sent_at + 1.0).

        Prefers a strict eps bump; when the high-water mark already
        sits at the bound, the delivery ties with it (the heap's seq
        tie-break preserves send order on equal times).  Only a
        high-water mark *beyond* the bound — impossible unless the
        invariant is already broken — raises.
        """
        bumped = prev + _FIFO_EPS
        if bumped <= cap:
            return bumped
        if prev <= cap:
            return prev
        raise SimulationError(
            f"FIFO channel {chan!r} saturated beyond the tau = 1 bound "
            f"(high-water mark {prev!r} past {cap!r})"
        )

    # ------------------------------------------------------------------
    # Flush paths — one is bound to self._flush at init.  Both turn
    # queued sends into scheduled deliveries with identical semantics;
    # the fast lane drops the per-send drop/trace branches entirely.
    # ------------------------------------------------------------------
    def _flush_fast(self, v: Vertex, time: float) -> None:
        """Fast lane: no drop strategy, no trace.

        Metric counters are accumulated locally and written back once
        per flush (Metrics.record_send, batched); the write-back sits
        in a ``finally`` so totals stay correct even when a bandwidth
        or delay violation aborts the flush mid-loop.
        """
        ctx = self._ctx[v]
        sends = ctx._outbox
        if not sends:
            return
        ctx._outbox = []
        neighbors, back_ports = self._tables[v]
        seq_next = self._seq.__next__
        delay_of = self.adversary.delays.delay
        cap = self._bw_cap
        metrics = self.metrics
        edge_messages = metrics.edge_messages
        fifo_last = self._fifo_last
        heap = self._heap
        push = heapq.heappush
        cap1 = time + 1.0
        last_payload = self._memo_payload
        last_bits = self._memo_bits
        n_sent = 0
        bits_sum = 0
        max_bits = metrics.max_message_bits
        try:
            for send in sends:
                port = send.port
                dst = neighbors[port - 1]
                payload = send.payload
                if payload is last_payload:
                    bits = last_bits
                else:
                    bits = bit_size_cached(payload)
                    last_payload = payload
                    last_bits = bits
                if cap is not None and bits > cap:
                    self.setup.bandwidth.check(bits)
                seq = seq_next()
                delay = delay_of(v, dst, time, seq)
                if not 0.0 < delay <= 1.0:
                    raise SimulationError(
                        f"adversary produced delay {delay} outside (0, 1]"
                    )
                deliver_at = time + delay
                chan = (v, dst)
                prev = fifo_last.get(chan)
                if prev is not None and deliver_at <= prev:
                    deliver_at = self._fifo_slot(prev, cap1, chan)
                fifo_last[chan] = deliver_at
                n_sent += 1
                bits_sum += bits
                if bits > max_bits:
                    max_bits = bits
                edge_messages[chan] += 1
                push(
                    heap,
                    (
                        deliver_at,
                        seq,
                        _DELIVER,
                        Message(
                            v, dst, back_ports[port - 1], port, payload,
                            bits, time, seq,
                        ),
                    ),
                )
        finally:
            self._memo_payload = last_payload
            self._memo_bits = last_bits
            if n_sent:
                metrics.messages_total += n_sent
                metrics.bits_total += bits_sum
                metrics.max_message_bits = max_bits
                metrics.sent_by[v] += n_sent

    def _flush_full(self, v: Vertex, time: float) -> None:
        """General path: fault injection and/or tracing enabled."""
        ctx = self._ctx[v]
        if not ctx._outbox:
            return
        neighbors, back_ports = self._tables[v]
        drops = self._drops
        trace = self.trace
        for send in ctx._drain():
            port = send.port
            dst = neighbors[port - 1]
            payload = send.payload
            bits = bit_size_cached(payload)
            self.setup.bandwidth.check(bits)
            seq = next(self._seq)
            if drops is not None and drops.drops(v, dst, seq):
                # Fault injection (repro.sim.faults): the message is
                # charged to the sender but never delivered.
                self.metrics.record_send(v, dst, bits)
                continue
            delay = self.adversary.delays.delay(v, dst, time, seq)
            if not 0.0 < delay <= 1.0:
                raise SimulationError(
                    f"adversary produced delay {delay} outside (0, 1]"
                )
            deliver_at = time + delay
            chan = (v, dst)
            prev = self._fifo_last.get(chan)
            if prev is not None and deliver_at <= prev:
                deliver_at = self._fifo_slot(prev, time + 1.0, chan)
            self._fifo_last[chan] = deliver_at
            msg = Message(
                v, dst, back_ports[port - 1], port, payload, bits, time, seq
            )
            self.metrics.record_send(v, dst, bits)
            if trace is not None:
                trace.send(time, msg)
            heapq.heappush(self._heap, (deliver_at, seq, _DELIVER, msg))
