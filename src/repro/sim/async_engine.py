"""Asynchronous discrete-event engine.

Implements the paper's asynchronous model (Sec 1.1–1.2):

* every message suffers an unpredictable but finite delay, chosen by an
  oblivious adversary (a :class:`~repro.sim.adversary.DelayStrategy`);
  delays are normalized so the maximum is tau = 1 time unit;
* channels are error-free and FIFO — the engine enforces per-directed-
  edge delivery ordering even when the adversary's raw delays would
  reorder messages;
* local computation is instantaneous and free;
* a sleeping node is woken by the arrival of any message and processes
  that message immediately upon awakening; adversary wake-ups happen at
  schedule times; waking is permanent.

The event loop is deterministic: ties in delivery time break by global
send sequence number, and adversary wake-ups at equal times break by
schedule insertion order.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.models.knowledge import NetworkSetup
from repro.obs.phases import PhaseTracker
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.sim.adversary import Adversary
from repro.sim.messages import Message, Send, bit_size
from repro.sim.metrics import Metrics
from repro.sim.node import NodeAlgorithm, NodeContext
from repro.sim.trace import Trace

Vertex = Hashable

_WAKE = 0
_DELIVER = 1

# FIFO enforcement pushes a delivery this far past the previous one on
# the same directed channel; small enough to never matter for the
# tau-normalized time accounting.
_FIFO_EPS = 1e-9

# Telemetry heartbeat cadence: one engine_step event per this many
# processed events (when a recorder is enabled).
_STEP_EVERY = 1_000


class AsyncEngine:
    """Runs one asynchronous execution of a wake-up algorithm."""

    def __init__(
        self,
        setup: NetworkSetup,
        nodes: Dict[Vertex, NodeAlgorithm],
        adversary: Adversary,
        seed: int = 0,
        max_events: int = 5_000_000,
        trace: Optional[Trace] = None,
        recorder: Optional[Recorder] = None,
    ):
        self.setup = setup
        self.nodes = nodes
        self.adversary = adversary
        self.metrics = Metrics()
        self.trace = trace
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.phases = PhaseTracker(
            self.metrics, self.recorder, fields={"n": setup.n}
        )
        self._max_events = max_events
        self._seq = itertools.count()
        self._heap: List[Tuple[float, int, int, Any]] = []
        self._fifo_last: Dict[Tuple[Vertex, Vertex], float] = {}
        self._now = 0.0

        master = random.Random(seed)
        self._ctx: Dict[Vertex, NodeContext] = {}
        for v in setup.graph.vertices():
            node_rng = random.Random(
                (seed * 1_000_003 + setup.id_of(v)) % 2**63
            )
            ctx = NodeContext(v, setup, node_rng)
            ctx._phases = self.phases
            self._ctx[v] = ctx
        missing = set(setup.graph.vertices()) - set(nodes)
        if missing:
            raise SimulationError(
                f"{len(missing)} vertices have no algorithm instance"
            )

        for v, t in adversary.schedule.times().items():
            if not setup.graph.has_vertex(v):
                raise SimulationError(f"schedule wakes unknown vertex {v!r}")
            heapq.heappush(self._heap, (t, next(self._seq), _WAKE, v))

    # ------------------------------------------------------------------
    def run(self) -> Metrics:
        """Process events until quiescence; returns the metrics.

        The whole event loop runs inside the implicit ``"engine"``
        phase, so every execution has at least one phase profile entry
        even for algorithms that declare no phases of their own.
        """
        rec = self.recorder
        processed = 0
        self.phases._start("engine", None)
        try:
            while self._heap:
                time, _tie, kind, data = heapq.heappop(self._heap)
                if time < self._now - 1e-12:
                    raise SimulationError("event scheduled in the past")
                self._now = max(self._now, time)
                processed += 1
                if processed > self._max_events:
                    raise SimulationError(
                        f"event budget of {self._max_events} exceeded; "
                        "the protocol is likely not terminating"
                    )
                if kind == _WAKE:
                    self._handle_wake(data, time, cause="adversary")
                else:
                    self._handle_delivery(data, time)
                if rec.enabled and processed % _STEP_EVERY == 0:
                    rec.emit(
                        "engine_step",
                        events=processed,
                        now=self._now,
                        awake=self.metrics.awake_count(),
                        n=self.setup.n,
                        engine="async",
                    )
        finally:
            self.phases._stop()
        self.metrics.events_processed = processed
        return self.metrics

    # ------------------------------------------------------------------
    def _handle_wake(self, v: Vertex, time: float, cause: str) -> None:
        ctx = self._ctx[v]
        if ctx._awake:
            return
        ctx._awake = True
        ctx.wake_cause = cause
        self.metrics.record_wake(v, time, cause)
        if self.trace is not None:
            self.trace.wake(time, v, cause)
        self.nodes[v].on_wake(ctx)
        self._flush(v, time)

    def _handle_delivery(self, msg: Message, time: float) -> None:
        v = msg.dst
        ctx = self._ctx[v]
        self.metrics.record_receive(v, time)
        if self.trace is not None:
            self.trace.deliver(time, msg)
        if not ctx._awake:
            # Receipt of a message wakes a sleeping node; the message is
            # then processed immediately (Sec 1.1).
            ctx._awake = True
            ctx.wake_cause = "message"
            self.metrics.record_wake(v, time, "message")
            if self.trace is not None:
                self.trace.wake(time, v, "message")
            self.nodes[v].on_wake(ctx)
        self.nodes[v].on_message(ctx, msg.dst_port, msg.payload)
        self._flush(v, time)

    def _flush(self, v: Vertex, time: float) -> None:
        """Turn queued sends into scheduled deliveries."""
        ctx = self._ctx[v]
        for send in ctx._drain():
            dst = self.setup.ports.neighbor(v, send.port)
            dst_port = self.setup.ports.port(dst, v)
            bits = bit_size(send.payload)
            self.setup.bandwidth.check(bits)
            seq = next(self._seq)
            drops = getattr(self.adversary, "drops", None)
            if drops is not None and drops.drops(v, dst, seq):
                # Fault injection (repro.sim.faults): the message is
                # charged to the sender but never delivered.
                self.metrics.record_send(v, dst, bits)
                continue
            delay = self.adversary.delays.delay(v, dst, time, seq)
            if not 0.0 < delay <= 1.0:
                raise SimulationError(
                    f"adversary produced delay {delay} outside (0, 1]"
                )
            deliver_at = time + delay
            chan = (v, dst)
            prev = self._fifo_last.get(chan)
            if prev is not None and deliver_at <= prev:
                deliver_at = prev + _FIFO_EPS
            self._fifo_last[chan] = deliver_at
            msg = Message(
                src=v,
                dst=dst,
                dst_port=dst_port,
                src_port=send.port,
                payload=send.payload,
                bits=bits,
                sent_at=time,
                seq=seq,
            )
            self.metrics.record_send(v, dst, bits)
            if self.trace is not None:
                self.trace.send(time, msg)
            heapq.heappush(self._heap, (deliver_at, seq, _DELIVER, msg))
