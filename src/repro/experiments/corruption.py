"""Advice-corruption experiments: how load-bearing is every bit?

Theorem 1's message is that advice bits are *information*: each one the
oracle spends measurably reduces the algorithm's uncertainty.  The dual
experiment — corrupt bits and watch schemes break — makes that tangible
and doubles as a robustness study for deployments where the advice is
provisioned configuration that can rot.

:func:`corruption_trial` flips ``flips`` uniformly random advice bits
across the network and classifies the outcome:

* ``"ok"`` — everyone woke despite the corruption (the flipped bits
  were redundant for this wake set);
* ``"asleep"`` — the run completed but left nodes sleeping (silent
  misbehaviour: the scheme followed wrong ports);
* ``"error"`` — a node detected the corruption (decode underflow,
  invalid port, or a model violation).

:func:`corruption_curve` sweeps the flip count and reports the failure
rate per point — the "advice integrity" curve of a scheme.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.advice.bits import Bits
from repro.errors import AdviceError, ReproError, SimulationError, WakeUpFailure
from repro.models.knowledge import NetworkSetup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup


def flip_bits(
    advice: Dict, flips: int, rng: random.Random
) -> Dict:
    """Return a copy of an advice map with ``flips`` random bit flips.

    Flip positions are drawn uniformly over the concatenation of all
    advice strings; nodes with empty advice are never touched.
    """
    lengths = {v: len(b) for v, b in advice.items() if len(b) > 0}
    total = sum(lengths.values())
    if total == 0:
        return dict(advice)
    mutable = {v: list(b) for v, b in advice.items()}
    for _ in range(flips):
        target = rng.randrange(total)
        for v, length in lengths.items():
            if target < length:
                mutable[v][target] ^= 1
                break
            target -= length
    return {v: Bits(bits) for v, bits in mutable.items()}


@dataclass
class CorruptionPoint:
    flips: int
    trials: int
    ok: int
    asleep: int
    error: int

    @property
    def failure_rate(self) -> float:
        return (self.asleep + self.error) / self.trials


def corruption_trial(
    setup: NetworkSetup,
    algorithm,
    awake: Sequence,
    flips: int,
    seed: int = 0,
    max_events: int = 100_000,
) -> str:
    """One corrupted run; returns "ok" / "asleep" / "error".

    ``max_events`` caps the execution: corrupted pointers can send a
    scheme into message cascades far beyond its honest complexity, and
    budget exhaustion is classified as a detected error.
    """
    if not algorithm.uses_advice:
        raise ReproError("corruption experiments need an advising scheme")
    advice_map = algorithm.compute_advice(setup)
    rng = random.Random(seed)
    corrupted = flip_bits(dict(advice_map.items()), flips, rng)
    poisoned = setup.with_advice(corrupted)
    adversary = Adversary(WakeSchedule.all_at_once(awake), UnitDelay())
    try:
        run_wakeup(
            poisoned, algorithm, adversary, engine="async", seed=seed + 1,
            max_events=max_events,
        )
    except WakeUpFailure:
        return "asleep"
    except (AdviceError, SimulationError):
        return "error"
    return "ok"


def corruption_curve(
    setup: NetworkSetup,
    algorithm_factory,
    awake: Sequence,
    flip_counts: Sequence[int],
    trials: int = 10,
    seed: int = 0,
) -> List[CorruptionPoint]:
    """Failure rate as a function of flipped advice bits."""
    points = []
    for flips in flip_counts:
        outcomes = {"ok": 0, "asleep": 0, "error": 0}
        for t in range(trials):
            result = corruption_trial(
                setup,
                algorithm_factory(),
                awake,
                flips,
                seed=seed * 1009 + flips * 31 + t,
            )
            outcomes[result] += 1
        points.append(
            CorruptionPoint(
                flips=flips,
                trials=trials,
                ok=outcomes["ok"],
                asleep=outcomes["asleep"],
                error=outcomes["error"],
            )
        )
    return points
