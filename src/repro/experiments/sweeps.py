"""Parameter-sweep utilities shared by benches and examples.

A sweep runs one algorithm over a family of growing networks, repeats
each size a few times with fresh seeds, and aggregates the Table-1
measures per size.  Workload constructors are plain callables
``n -> (graph, awake_vertices)`` so benches compose them freely.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import summarize
from repro.core.base import WakeUpAlgorithm
from repro.graphs.graph import Graph
from repro.graphs.traversal import awake_distance
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, DelayStrategy, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup

Workload = Callable[[int], Tuple[Graph, List]]


@dataclass
class SweepRow:
    """Aggregated measurements for one network size."""

    n: int
    rho_awk: float
    messages: float
    messages_std: float
    time: float
    time_all_awake: float
    bits: float
    advice_max_bits: float
    advice_avg_bits: float
    trials: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "n": self.n,
            "rho": self.rho_awk,
            "messages": self.messages,
            "time": self.time,
            "time_awake": self.time_all_awake,
            "adv_max": self.advice_max_bits,
            "adv_avg": self.advice_avg_bits,
        }


def sweep(
    algorithm_factory: Callable[[], WakeUpAlgorithm],
    workload: Workload,
    sizes: Sequence[int],
    engine: str = "async",
    knowledge: Knowledge = Knowledge.KT1,
    bandwidth: str = "LOCAL",
    trials: int = 3,
    seed: int = 0,
    delays: Optional[DelayStrategy] = None,
) -> List[SweepRow]:
    """Run ``algorithm`` across ``sizes``; one SweepRow per size."""
    rows: List[SweepRow] = []
    for n in sizes:
        msgs: List[float] = []
        times: List[float] = []
        awake_times: List[float] = []
        bits: List[float] = []
        rho = 0.0
        adv_max = adv_avg = 0.0
        for t in range(trials):
            run_seed = seed * 10_007 + n * 101 + t
            graph, awake = workload(n)
            rho = float(awake_distance(graph, awake))
            setup = make_setup(
                graph,
                knowledge=knowledge,
                bandwidth=bandwidth,
                seed=run_seed,
            )
            adversary = Adversary(
                WakeSchedule.all_at_once(awake),
                delays or UnitDelay(),
            )
            result = run_wakeup(
                setup,
                algorithm_factory(),
                adversary,
                engine=engine,
                seed=run_seed + 1,
            )
            msgs.append(result.messages)
            times.append(result.time)
            awake_times.append(result.time_all_awake)
            bits.append(result.bits)
            adv_max = max(adv_max, result.advice_max_bits)
            adv_avg = max(adv_avg, result.advice_avg_bits)
        m = summarize(msgs)
        rows.append(
            SweepRow(
                n=n,
                rho_awk=rho,
                messages=m.mean,
                messages_std=m.std,
                time=summarize(times).mean,
                time_all_awake=summarize(awake_times).mean,
                bits=summarize(bits).mean,
                advice_max_bits=adv_max,
                advice_avg_bits=adv_avg,
                trials=trials,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Standard workloads
# ----------------------------------------------------------------------
def er_single_wake(avg_degree: float = 6.0, seed: int = 0) -> Workload:
    """Connected Erdős–Rényi with one adversary-woken node."""
    from repro.graphs.generators import connected_erdos_renyi

    def build(n: int):
        g = connected_erdos_renyi(n, avg_degree / max(1, n - 1), seed=seed + n)
        return g, [next(iter(g.vertices()))]

    return build


def er_fraction_wake(
    avg_degree: float = 6.0, fraction: float = 0.1, seed: int = 0
) -> Workload:
    """Connected ER; a random ``fraction`` of nodes woken at time 0."""
    from repro.graphs.generators import connected_erdos_renyi

    def build(n: int):
        g = connected_erdos_renyi(n, avg_degree / max(1, n - 1), seed=seed + n)
        rng = random.Random(seed * 31 + n)
        count = max(1, int(fraction * n))
        awake = rng.sample(list(g.vertices()), count)
        return g, awake

    return build


def dense_er_all_awake(p: float = 0.5, seed: int = 0) -> Workload:
    """Dense ER with every node awake — rho_awk = 0 message stress."""
    from repro.graphs.generators import connected_erdos_renyi

    def build(n: int):
        g = connected_erdos_renyi(n, p, seed=seed + n)
        return g, list(g.vertices())

    return build


def grid_corner_wake() -> Workload:
    """Square grid, corner woken — maximal rho_awk."""
    import math

    from repro.graphs.generators import grid_graph

    def build(n: int):
        side = max(2, int(math.isqrt(n)))
        g = grid_graph(side, side)
        return g, [0]

    return build


def tree_random_wake(seed: int = 0) -> Workload:
    """Random tree with one random node woken."""
    from repro.graphs.generators import random_tree

    def build(n: int):
        g = random_tree(n, seed=seed + n)
        rng = random.Random(seed * 17 + n)
        return g, [rng.randrange(n)]

    return build
