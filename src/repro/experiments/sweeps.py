"""Parameter-sweep utilities shared by benches and examples.

A sweep runs one algorithm over a family of growing networks, repeats
each size a few times with fresh seeds, and aggregates the Table-1
measures per size.  Workload constructors are plain callables
``n -> (graph, awake_vertices)`` so benches compose them freely.

Two execution paths share the aggregation:

* :func:`sweep` — the legacy in-process loop over arbitrary callables;
* :func:`parallel_sweep` — the spec-based path: algorithm by registry
  name, workload by :data:`WORKLOADS` kind, routed through a
  :class:`~repro.experiments.parallel.ParallelSweepExecutor` (worker
  processes + on-disk cell cache).  With identical inputs the two paths
  produce bit-identical summary scalars (enforced by
  ``tests/test_parallel_executor.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import summarize
from repro.core.base import WakeUpAlgorithm
from repro.errors import ReproError
from repro.experiments.parallel import (
    CellOutcome,
    CellSpec,
    ParallelSweepExecutor,
)
from repro.graphs.graph import Graph
from repro.graphs.traversal import awake_distance
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, DelayStrategy, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup

Workload = Callable[[int], Tuple[Graph, List]]


def resolve_backend(engine: str, backend: Optional[str]) -> str:
    """Apply the ``backend`` knob to an engine selection.

    ``backend=None`` / ``"auto"`` leaves the engine untouched;
    ``"bulk"`` routes synchronous runs through the vectorized frontier
    lane (:mod:`repro.sim.bulk` — algorithms without a kernel still
    fall back to the sync engine per cell, transparently).  Asking for
    the bulk backend on an async sweep is a contradiction, not a
    fallback, and raises.
    """
    if backend is None or backend == "auto":
        return engine
    if backend == "bulk":
        if engine == "async":
            raise ReproError(
                "backend='bulk' implements synchronous semantics; "
                "run with engine='sync' (or drop the backend knob)"
            )
        return "bulk"
    raise ReproError(
        f"unknown backend {backend!r}; known: 'auto', 'bulk'"
    )


@dataclass
class SweepRow:
    """Aggregated measurements for one network size."""

    n: int
    rho_awk: float
    messages: float
    messages_std: float
    time: float
    time_all_awake: float
    bits: float
    advice_max_bits: float
    advice_avg_bits: float
    trials: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "n": self.n,
            "rho": self.rho_awk,
            "messages": self.messages,
            "time": self.time,
            "time_awake": self.time_all_awake,
            "adv_max": self.advice_max_bits,
            "adv_avg": self.advice_avg_bits,
        }


def sweep(
    algorithm_factory: Callable[[], WakeUpAlgorithm],
    workload: Workload,
    sizes: Sequence[int],
    engine: str = "async",
    knowledge: Knowledge = Knowledge.KT1,
    bandwidth: str = "LOCAL",
    trials: int = 3,
    seed: int = 0,
    delays: Optional[DelayStrategy] = None,
    backend: Optional[str] = None,
) -> List[SweepRow]:
    """Run ``algorithm`` across ``sizes``; one SweepRow per size."""
    engine = resolve_backend(engine, backend)
    rows: List[SweepRow] = []
    for n in sizes:
        msgs: List[float] = []
        times: List[float] = []
        awake_times: List[float] = []
        bits: List[float] = []
        adv_max = adv_avg = 0.0
        # Workloads are deterministic in n, so build the topology (and
        # run the awake-distance traversal) once per size, not once per
        # trial — per-trial randomness (IDs, ports, execution) is seeded
        # below and untouched by the hoist.
        graph, awake = workload(n)
        rho = float(awake_distance(graph, awake))
        for t in range(trials):
            run_seed = seed * 10_007 + n * 101 + t
            setup = make_setup(
                graph,
                knowledge=knowledge,
                bandwidth=bandwidth,
                seed=run_seed,
            )
            adversary = Adversary(
                WakeSchedule.all_at_once(awake),
                delays or UnitDelay(),
            )
            result = run_wakeup(
                setup,
                algorithm_factory(),
                adversary,
                engine=engine,
                seed=run_seed + 1,
            )
            msgs.append(result.messages)
            times.append(result.time)
            awake_times.append(result.time_all_awake)
            bits.append(result.bits)
            adv_max = max(adv_max, result.advice_max_bits)
            adv_avg = max(adv_avg, result.advice_avg_bits)
        m = summarize(msgs)
        rows.append(
            SweepRow(
                n=n,
                rho_awk=rho,
                messages=m.mean,
                messages_std=m.std,
                time=summarize(times).mean,
                time_all_awake=summarize(awake_times).mean,
                bits=summarize(bits).mean,
                advice_max_bits=adv_max,
                advice_avg_bits=adv_avg,
                trials=trials,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Standard workloads
# ----------------------------------------------------------------------
def er_single_wake(avg_degree: float = 6.0, seed: int = 0) -> Workload:
    """Connected Erdős–Rényi with one adversary-woken node."""
    from repro.graphs.generators import connected_erdos_renyi

    def build(n: int):
        g = connected_erdos_renyi(n, avg_degree / max(1, n - 1), seed=seed + n)
        return g, [next(iter(g.vertices()))]

    return build


def er_fraction_wake(
    avg_degree: float = 6.0, fraction: float = 0.1, seed: int = 0
) -> Workload:
    """Connected ER; a random ``fraction`` of nodes woken at time 0."""
    from repro.graphs.generators import connected_erdos_renyi

    def build(n: int):
        g = connected_erdos_renyi(n, avg_degree / max(1, n - 1), seed=seed + n)
        rng = random.Random(seed * 31 + n)
        count = max(1, int(fraction * n))
        awake = rng.sample(list(g.vertices()), count)
        return g, awake

    return build


def dense_er_all_awake(p: float = 0.5, seed: int = 0) -> Workload:
    """Dense ER with every node awake — rho_awk = 0 message stress."""
    from repro.graphs.generators import connected_erdos_renyi

    def build(n: int):
        g = connected_erdos_renyi(n, p, seed=seed + n)
        return g, list(g.vertices())

    return build


def grid_corner_wake() -> Workload:
    """Square grid, corner woken — maximal rho_awk."""
    import math

    from repro.graphs.generators import grid_graph

    def build(n: int):
        side = max(2, int(math.isqrt(n)))
        g = grid_graph(side, side)
        return g, [0]

    return build


def tree_random_wake(seed: int = 0) -> Workload:
    """Random tree with one random node woken."""
    from repro.graphs.generators import random_tree

    def build(n: int):
        g = random_tree(n, seed=seed + n)
        rng = random.Random(seed * 17 + n)
        return g, [rng.randrange(n)]

    return build


def dkq_point_wake(k: int = 2) -> Workload:
    """Lazebnik–Ustimenko D(k, q) with the first point woken.

    q is the smallest prime power with ``2 * q**k >= n``, so the graph
    has at least n vertices (``q**k`` points plus ``q**k`` lines) while
    staying as close to n as the construction allows.  The paper's KT1
    lower-bound family — and by far the most expensive workload we
    build (GF(p^m) arithmetic plus q^(k+1) incidence solves), which is
    what makes it the headline case for the compiled-topology cache.
    """
    from repro.graphs.highgirth import (
        dkq_graph,
        smallest_prime_power_at_least,
    )

    if k < 2:
        raise ReproError("dkq_point_wake requires k >= 2")

    def build(n: int):
        q_min = 2
        while 2 * q_min**k < n:
            q_min += 1
        q = smallest_prime_power_at_least(q_min)
        g = dkq_graph(k, q).graph
        return g, [next(iter(g.vertices()))]

    return build


def er_shared_wake(
    avg_degree: float = 8.0, awake_fraction: float = 0.05, seed: int = 0
) -> Workload:
    """Connected ER seeded independently of n, a fraction woken.

    Unlike :func:`er_fraction_wake` the graph seed does not vary with n,
    so every algorithm compared at a fixed n sees the *same* network —
    the Table-1 shared workload."""
    from repro.graphs.generators import connected_erdos_renyi

    def build(n: int):
        g = connected_erdos_renyi(n, avg_degree / max(1, n - 1), seed=seed)
        rng = random.Random(seed + 1)
        awake = rng.sample(
            list(g.vertices()), max(1, int(awake_fraction * n))
        )
        return g, awake

    return build


def check_world(
    graph: str = "cycle",
    awake: int = 1,
    degree: float = 3.0,
    seed: int = 0,
) -> Workload:
    """The named small topologies of :mod:`repro.check.worlds` as a
    spec-able workload: identical graph constructors and the identical
    ordered woken sample, so adversary-optimizer and baseline cells
    evaluate exactly the worlds the checker explores.  A staggered wake
    belongs in the cell's *schedule* spec (``{"kind": "staggered",
    "stagger": s}``) — compiled topologies preserve awake order, so the
    sequential schedule rebuilds the checker's ``{v: i*stagger}`` map.
    """
    from repro.graphs.generators import (
        complete_graph,
        connected_erdos_renyi,
        cycle_graph,
        path_graph,
        star_graph,
    )

    named = {
        "complete": complete_graph,
        "path": path_graph,
        "cycle": cycle_graph,
        "star": star_graph,
    }
    if graph != "er" and graph not in named:
        raise ReproError(
            f"unknown check graph {graph!r}; "
            f"known: {('er', *sorted(named))}"
        )

    def build(n: int):
        if graph == "er":
            g = connected_erdos_renyi(n, degree / max(1, n - 1), seed=seed)
        else:
            g = named[graph](n)
        rng = random.Random(seed + 1)
        woken = rng.sample(
            sorted(g.vertices(), key=repr), max(1, min(awake, n))
        )
        return g, woken

    return build


# ----------------------------------------------------------------------
# Spec-based sweeps (parallel executor path)
# ----------------------------------------------------------------------

# kind -> workload factory; cells reference workloads by kind + kwargs
# so they serialize across process boundaries and hash into cache keys.
WORKLOADS: Dict[str, Callable[..., Workload]] = {
    "er_single_wake": er_single_wake,
    "er_fraction_wake": er_fraction_wake,
    "dense_er_all_awake": dense_er_all_awake,
    "grid_corner_wake": grid_corner_wake,
    "tree_random_wake": tree_random_wake,
    "er_shared_wake": er_shared_wake,
    "dkq_point_wake": dkq_point_wake,
    "check_world": check_world,
}


def register_workload(kind: str, factory: Callable[..., Workload]) -> None:
    """Register an external workload for spec-based sweeps."""
    WORKLOADS[kind] = factory


def build_workload(spec: Dict[str, Any]) -> Workload:
    """Resolve a workload spec ``{"kind": ..., **kwargs}``."""
    params = dict(spec)
    kind = params.pop("kind", None)
    try:
        factory = WORKLOADS[kind]
    except KeyError:
        raise ReproError(
            f"unknown workload kind {kind!r}; known: {sorted(WORKLOADS)}"
        ) from None
    return factory(**params)


def sweep_cells(
    algorithm: str,
    workload: Dict[str, Any],
    sizes: Sequence[int],
    engine: str = "async",
    knowledge: str = "KT1",
    bandwidth: str = "LOCAL",
    trials: int = 3,
    seed: int = 0,
    delay: Optional[Dict[str, Any]] = None,
    algo_params: Optional[Dict[str, Any]] = None,
    flight_recorder: Optional[int] = None,
    backend: Optional[str] = None,
) -> List[CellSpec]:
    """The cell grid of a sweep: ``len(sizes) * trials`` independent
    specs, seeded exactly like :func:`sweep`'s inner loop.
    ``flight_recorder`` arms a bounded crash trace per cell (see
    :class:`~repro.experiments.parallel.CellSpec`); ``backend="bulk"``
    routes the grid through the vectorized frontier lane (the engine
    recorded in each spec — and hence the cache key — becomes
    ``"bulk"``)."""
    engine = resolve_backend(engine, backend)
    return [
        CellSpec(
            algorithm=algorithm,
            n=n,
            trial=t,
            seed=seed,
            engine=engine,
            knowledge=knowledge,
            bandwidth=bandwidth,
            workload=dict(workload),
            delay=dict(delay or {"kind": "unit"}),
            algo_params=dict(algo_params or {}),
            flight_recorder=flight_recorder,
        )
        for n in sizes
        for t in range(trials)
    ]


def rows_from_outcomes(outcomes: Sequence[CellOutcome]) -> List[SweepRow]:
    """Aggregate cell outcomes per size, mirroring :func:`sweep`.

    Failed cells are excluded from the aggregates (their structured
    records stay in ``outcomes``); a size with no successful cell
    produces no row."""
    by_n: Dict[int, List[CellOutcome]] = {}
    order: List[int] = []
    for o in outcomes:
        if o.spec.n not in by_n:
            by_n[o.spec.n] = []
            order.append(o.spec.n)
        by_n[o.spec.n].append(o)
    rows: List[SweepRow] = []
    for n in order:
        good = [o for o in by_n[n] if o.ok and o.result is not None]
        if not good:
            continue
        good.sort(key=lambda o: o.spec.trial)
        results = [o.result for o in good]
        m = summarize([float(r.messages) for r in results])
        rows.append(
            SweepRow(
                n=n,
                rho_awk=good[-1].rho_awk,
                messages=m.mean,
                messages_std=m.std,
                time=summarize([r.time for r in results]).mean,
                time_all_awake=summarize(
                    [r.time_all_awake for r in results]
                ).mean,
                bits=summarize([float(r.bits) for r in results]).mean,
                advice_max_bits=max(r.advice_max_bits for r in results),
                advice_avg_bits=max(r.advice_avg_bits for r in results),
                trials=len(good),
            )
        )
    return rows


def phase_profile_rows(
    outcomes: Sequence[CellOutcome],
) -> List[Dict[str, float]]:
    """Aggregate per-phase profiles across successful outcomes into
    printable rows: one row per (n, phase) with summed wall-time and
    message counts and the share of that size's total phase time.

    This is how benches report where an execution spends its time —
    e.g. DFS-token traversal vs advice decoding — straight from sweep
    outcomes (the profiles survive the lean/IPC path).
    """
    by_n: Dict[int, Dict[str, Dict[str, float]]] = {}
    for o in outcomes:
        if not o.ok or o.result is None:
            continue
        phases = by_n.setdefault(o.spec.n, {})
        for name, prof in o.result.phase_profile().items():
            agg = phases.setdefault(
                name, {"time_s": 0.0, "messages": 0, "entries": 0}
            )
            agg["time_s"] += prof["time_s"]
            agg["messages"] += prof["messages"]
            agg["entries"] += prof["entries"]
    rows: List[Dict[str, float]] = []
    for n in sorted(by_n):
        total = sum(p["time_s"] for p in by_n[n].values()) or 1.0
        for name, agg in sorted(
            by_n[n].items(), key=lambda kv: -kv[1]["time_s"]
        ):
            rows.append(
                {
                    "n": n,
                    "phase": name,
                    "time_s": agg["time_s"],
                    "share": agg["time_s"] / total,
                    "messages": agg["messages"],
                    "entries": agg["entries"],
                }
            )
    return rows


def parallel_sweep(
    algorithm: str,
    workload: Dict[str, Any],
    sizes: Sequence[int],
    executor: Optional[ParallelSweepExecutor] = None,
    engine: str = "async",
    knowledge: str = "KT1",
    bandwidth: str = "LOCAL",
    trials: int = 3,
    seed: int = 0,
    delay: Optional[Dict[str, Any]] = None,
    algo_params: Optional[Dict[str, Any]] = None,
    flight_recorder: Optional[int] = None,
    backend: Optional[str] = None,
) -> Tuple[List[SweepRow], List[CellOutcome]]:
    """Executor-routed sweep: returns the aggregated rows *and* the raw
    per-cell outcomes (summary scalars, cache hits, failure records).

    With no ``executor`` the cells run inline and uncached — the serial
    baseline, bit-identical to what any worker pool produces.
    ``backend="bulk"`` routes every cell through the vectorized
    frontier lane (see :func:`resolve_backend`).
    """
    cells = sweep_cells(
        algorithm,
        workload,
        sizes,
        engine=engine,
        backend=backend,
        knowledge=knowledge,
        bandwidth=bandwidth,
        trials=trials,
        seed=seed,
        delay=delay,
        algo_params=algo_params,
        flight_recorder=flight_recorder,
    )
    if executor is None:
        executor = ParallelSweepExecutor(workers=0, use_cache=False)
    outcomes = executor.run(cells)
    return rows_from_outcomes(outcomes), outcomes
