"""Parallel sweep execution with on-disk result caching.

Every Table-1 experiment decomposes into independent *cells* — one
``(algorithm, n, seed, adversary)`` execution each.  Historically the
sweep drivers ran every cell serially in-process; this module fans the
cells across worker processes and memoizes finished cells on disk so a
re-run only executes what changed.

Design constraints, in order:

1. **Determinism.**  A cell executed in a worker process must produce
   bit-identical summary scalars to the same cell executed inline.
   Cells are therefore *plain data* (:class:`CellSpec`): the worker
   rebuilds the graph, algorithm, and adversary from the spec, so no
   live object state crosses the fork.  (The delay strategies use a
   stable hash for the same reason — see
   :func:`repro.sim.adversary._stable_unit`.)
2. **Robustness.**  A cell that raises
   :class:`~repro.errors.WakeUpFailure`, times out, or takes its worker
   down mid-task becomes a structured failed-cell record in the sweep
   output; it never aborts the sweep.  A crashed worker is retried once
   (in an isolated single-worker pool so a deterministic crasher cannot
   poison its neighbours' retry budget).
3. **Cache safety.**  Cache entries are keyed by a content hash of the
   full cell spec plus the *derived* per-subsystem code salts
   (:mod:`repro.versioning`): the engine salt, the graphs salt, and
   the cell's per-algorithm salt.  A code edit automatically
   invalidates exactly the cells whose execution it can perturb — a
   ``spanner_advice.py`` change recomputes spanner-advice cells and
   leaves flooding rows (and every compiled topology) warm.

The worker payload — and the cache payload, deliberately the same
representation — is the lean form of
:class:`~repro.sim.runner.WakeUpResult` (scalars only; no ``Trace``,
no metric Counters), so a warm cache and a fresh run are
indistinguishable to downstream aggregation.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field
from multiprocessing import get_context
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.deadline import Watchdog
from repro.errors import ReproError, WakeUpFailure
from repro.graphs.compile import (
    DEFAULT_TOPOLOGY_DIR,
    TopologyStore,
    compiled_topology,
    topology_key,
)
from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    set_global_registry,
)
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.sim.runner import WakeUpResult
from repro.sim.trace import DEFAULT_FLIGHT_RECORDER, Trace
from repro.versioning import cell_salt_vector

#: Cell-cache envelope layout version.  v1 envelopes carried the
#: hand-bumped global ``CODE_SALT`` string ("repro-cell-v3" was the
#: last); v2 envelopes carry the per-subsystem salt *vector* the key
#: was derived from (engine + graphs + per-algorithm) plus the
#: algorithm name, so staleness is decidable per envelope without the
#: original spec (``repro cache info`` / ``purge --stale``).
CACHE_SCHEMA = 2

DEFAULT_CACHE_DIR = Path("results") / ".cache"


def __getattr__(name: str) -> Any:
    # Deprecated alias (PEP 562): the old hand-bumped constant now
    # folds every derived subsystem salt, so legacy "did anything
    # change?" consumers keep working without forcing the salt
    # derivation at import time.
    if name == "CODE_SALT":
        from repro.versioning import code_salt

        return code_salt()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# ----------------------------------------------------------------------
# Cell specification
# ----------------------------------------------------------------------
@dataclass
class CellSpec:
    """One independent execution, described entirely by plain data.

    ``workload`` / ``delay`` / ``schedule`` are small dicts with a
    ``"kind"`` discriminator resolved by registries (workloads live in
    :mod:`repro.experiments.sweeps`; delays and schedules below), so a
    spec pickles across processes and hashes canonically for the cache.

    ``algorithm`` is a registry name (``"flooding"``) or a dotted path
    (``"pkg.module:Attr"``) for algorithms not in the registry — the
    latter is how tests inject fault-simulating algorithms.

    The default seeds replicate the serial sweep's derivation
    (``run_seed = seed*10_007 + n*101 + trial``; setup seeded with
    ``run_seed``, execution with ``run_seed + 1``) so spec-based runs
    are conformant with the legacy path; ``setup_seed`` / ``exec_seed``
    override them for drivers with their own seeding (Table 1).
    """

    algorithm: str
    n: int
    trial: int = 0
    seed: int = 0
    engine: str = "async"
    knowledge: str = "KT1"
    bandwidth: str = "LOCAL"
    workload: Dict[str, Any] = field(
        default_factory=lambda: {"kind": "er_single_wake"}
    )
    delay: Dict[str, Any] = field(default_factory=lambda: {"kind": "unit"})
    schedule: Dict[str, Any] = field(
        default_factory=lambda: {"kind": "all_at_once"}
    )
    algo_params: Dict[str, Any] = field(default_factory=dict)
    require_all_awake: bool = True
    max_events: int = 5_000_000
    setup_seed: Optional[int] = None
    exec_seed: Optional[int] = None
    # Flight recorder: keep a bounded ring-buffer trace of the newest
    # N events (repro.sim.trace.Trace(maxlen=N)) and dump its tail into
    # the failure record if the cell fails.  None disables.  Tracing
    # does not perturb the execution, but the knob is part of the cache
    # key like any other spec field.
    flight_recorder: Optional[int] = None
    # Controlled nondeterminism: a controller spec with a "kind"
    # discriminator (currently ``{"kind": "replay", "choices": [...],
    # "laziness": ...}`` -> :class:`repro.check.controller
    # .ReplayController`), resolved by :func:`_build_controller`.
    # Async engine only.  A controlled cell executes the check
    # subsystem's scheduling loop, so its cache key folds the check
    # salt in on top of the usual cell salts (see :func:`_cell_salts`).
    controller: Optional[Dict[str, Any]] = None

    @property
    def run_seed(self) -> int:
        return self.seed * 10_007 + self.n * 101 + self.trial

    @property
    def topology_key(self) -> str:
        """Content hash of this cell's compiled topology — the
        ``(workload kind, params, n, graphs-salt)`` digest shared by
        every trial at the same size.  Deliberately a derived property,
        not a dataclass field: it never enters ``as_dict`` and
        therefore never perturbs :func:`cell_key`."""
        return topology_key(self.workload, self.n)

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


def _cell_salts(spec: CellSpec) -> Dict[str, str]:
    """The salt vector one cell's key and cache envelope carry.

    Plain cells depend on engine + graphs + the algorithm's import
    closure.  Controlled cells additionally execute the check
    subsystem's scheduling loop (:mod:`repro.check.controller`), so
    the check salt joins the key — a controller edit re-executes
    controlled cells and leaves ordinary sweep cells warm."""
    salts = cell_salt_vector(spec.algorithm)
    if spec.controller is not None or spec.delay.get("kind") == "replay":
        from repro.versioning import subsystem_salt

        salts["check"] = subsystem_salt("check")
    return salts


def cell_key(spec: CellSpec) -> str:
    """Content hash identifying a cell: the full spec plus the salts
    its execution depends on (engine + graphs + the algorithm's
    import-closure salt — :func:`repro.versioning.cell_salt_vector` —
    plus the check salt for controlled cells), canonically
    serialized.  Any differing input — seed, size, algorithm
    parameter, adversary knob — yields a different key, and so does
    any code edit that can reach this cell's execution; code edits
    elsewhere leave the key (and the cached row) untouched."""
    blob = json.dumps(
        {"salts": _cell_salts(spec), "spec": spec.as_dict()},
        sort_keys=True,
        separators=(",", ":"),
        default=repr,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Spec -> live objects
# ----------------------------------------------------------------------
def _build_algorithm(name: str, params: Dict[str, Any]):
    if ":" in name:
        module_name, attr = name.split(":", 1)
        factory = getattr(importlib.import_module(module_name), attr)
    else:
        from repro.core.registry import get_factory

        factory = get_factory(name)
    return factory(**params) if params else factory()


def _build_delay(spec: Dict[str, Any]):
    from repro.sim.adversary import (
        PerEdgeDelay,
        UniformRandomDelay,
        UnitDelay,
        VectorDelay,
    )

    kind = spec.get("kind", "unit")
    if kind == "unit":
        return UnitDelay()
    if kind == "uniform":
        return UniformRandomDelay(
            seed=spec.get("seed", 0), lo=spec.get("lo", 0.05)
        )
    if kind == "per_edge":
        return PerEdgeDelay(seed=spec.get("seed", 0), lo=spec.get("lo", 0.1))
    if kind == "vector":
        return VectorDelay(spec["values"])
    if kind == "replay":
        # A controlled run's recorded per-seq delay map, fed back
        # through the plain engine (atlas incumbents replay this way).
        from repro.check.controller import ReplayDelay

        return ReplayDelay(
            {int(k): float(v) for k, v in spec["delays"].items()}
        )
    raise ReproError(f"unknown delay kind {kind!r}")


def _build_schedule(spec: Dict[str, Any], graph, awake):
    from repro.sim.adversary import WakeSchedule

    kind = spec.get("kind", "all_at_once")
    if kind == "all_at_once":
        return WakeSchedule.all_at_once(awake, time=spec.get("time", 0.0))
    if kind == "random_subset":
        return WakeSchedule.random_subset(
            graph,
            spec["count"],
            seed=spec.get("seed", 0),
            time=spec.get("time", 0.0),
        )
    if kind == "staggered":
        # Wake the workload's awake set one at a time, ``stagger``
        # apart, in workload order (compiled topologies preserve it) —
        # the spec form of repro.check.worlds' staggered check worlds.
        return WakeSchedule.sequential(
            list(awake), spec.get("stagger", 0.0)
        )
    raise ReproError(f"unknown schedule kind {kind!r}")


def _build_controller(spec: Dict[str, Any]):
    from repro.check.controller import ReplayController

    kind = spec.get("kind", "replay")
    if kind == "replay":
        return ReplayController(
            spec.get("choices", ()),
            strict=spec.get("strict", False),
            laziness=spec.get("laziness", 0.0),
        )
    raise ReproError(f"unknown controller kind {kind!r}")


class _CellTimeout(Exception):
    pass


def _execute_cell(
    spec: CellSpec,
    scratch: Optional[Dict[str, Any]] = None,
    topology_store: Optional[TopologyStore] = None,
) -> Dict[str, Any]:
    """Run one cell; returns the JSON-able success payload.

    ``scratch`` (when given) receives the live flight-recorder trace
    *before* the execution starts, so :func:`run_cell` can dump its
    tail even when the run raises mid-flight.

    The topology is fetched through the compiled-topology layer
    (:func:`repro.graphs.compile.compiled_topology`) — in-process LRU,
    then the on-disk ``topology_store`` when given — so a multi-trial
    cell batch builds each (workload, n) graph and runs its
    ``awake_distance`` traversal exactly once.  The payload's
    ``"topology"`` stats record whether this cell built or reused it.
    """
    from repro.models.knowledge import Knowledge, make_setup
    from repro.sim.adversary import Adversary
    from repro.sim.runner import run_wakeup

    topo_stats: Dict[str, int] = {}
    topo = compiled_topology(
        spec.workload, spec.n, store=topology_store, stats=topo_stats
    )
    graph = topo.graph()
    awake = topo.awake_vertices()
    setup_seed = (
        spec.setup_seed if spec.setup_seed is not None else spec.run_seed
    )
    exec_seed = (
        spec.exec_seed if spec.exec_seed is not None else spec.run_seed + 1
    )
    setup = make_setup(
        graph,
        knowledge=Knowledge[spec.knowledge],
        bandwidth=spec.bandwidth,
        seed=setup_seed,
        compiled=topo,
    )
    adversary = Adversary(
        _build_schedule(spec.schedule, graph, awake),
        _build_delay(spec.delay),
    )
    trace = None
    if spec.flight_recorder:
        trace = Trace(maxlen=spec.flight_recorder)
        if scratch is not None:
            scratch["trace"] = trace
    controller = (
        _build_controller(spec.controller)
        if spec.controller is not None
        else None
    )
    result = run_wakeup(
        setup,
        _build_algorithm(spec.algorithm, spec.algo_params),
        adversary,
        engine=spec.engine,
        seed=exec_seed,
        require_all_awake=spec.require_all_awake,
        max_events=spec.max_events,
        trace=trace,
        controller=controller,
    )
    return {
        "rho_awk": topo.rho_awk,
        "result": result.to_lean_dict(),
        "topology": topo_stats,
    }


def run_cell(
    spec: CellSpec,
    cell_timeout: Optional[float] = None,
    topology_store: Optional[TopologyStore] = None,
    collect_metrics: bool = False,
) -> Dict[str, Any]:
    """Worker entry point for one cell: never raises.

    Failures come back as structured payloads; the per-cell timeout is
    enforced worker-side with a :class:`repro.deadline.Watchdog` — a
    timer thread that raises into this thread at the next bytecode
    boundary, interrupting even a CPU-bound engine loop — so a slow
    cell costs its budget and nothing more.  Unlike the original
    ``SIGALRM`` implementation this works from *any* thread: the
    :mod:`repro.serve` daemon's job workers run cells off the main
    thread, where an alarm can never be armed (the budget used to be
    silently unenforced there).
    When the spec enables a flight recorder, every failure payload
    carries ``trace_tail`` — the last events before things went wrong.

    ``collect_metrics`` swaps a fresh
    :class:`~repro.obs.metrics.MetricsRegistry` in as the process
    global for the duration of the cell and ships its snapshot back as
    ``payload["metrics_delta"]``, so parent-side aggregation is *exact*
    under fork: everything the engines/stores counted during this cell
    reaches the parent exactly once through the outcome path, whether
    the cell ran inline or in a pooled worker.  It is deliberately a
    function argument, not a :class:`CellSpec` field — metrics are
    observability-only and must not perturb :func:`cell_key`.
    """
    start = time.perf_counter()
    scratch: Dict[str, Any] = {}
    local_registry: Optional[MetricsRegistry] = None
    prev_registry: Optional[MetricsRegistry] = None
    if collect_metrics:
        local_registry = MetricsRegistry()
        prev_registry = set_global_registry(local_registry)
    watchdog = (
        Watchdog(cell_timeout, exc_type=_CellTimeout)
        if cell_timeout is not None
        else None
    )
    timeout_payload = {
        "ok": False,
        "status": "timeout",
        "error": f"cell exceeded {cell_timeout}s budget",
        "error_kind": "Timeout",
    }
    try:
        try:
            # The timer is armed *inside* the try so a very short budget
            # cannot fire in the gap before the except clauses are live.
            if watchdog is not None:
                watchdog.start()
            payload = _execute_cell(
                spec, scratch, topology_store=topology_store
            )
            payload["ok"] = True
            payload["status"] = "ok"
        except _CellTimeout:
            watchdog.mark_caught()
            payload = timeout_payload
        except WakeUpFailure as exc:
            payload = {
                "ok": False,
                "status": "failed",
                "error": str(exc),
                "error_kind": "WakeUpFailure",
                "asleep": sorted(repr(v) for v in exc.asleep),
            }
        except Exception as exc:  # noqa: BLE001 — structured, not swallowed
            payload = {
                "ok": False,
                "status": "failed",
                "error": f"{type(exc).__name__}: {exc}",
                "error_kind": type(exc).__name__,
            }
        finally:
            if watchdog is not None:
                watchdog.cancel()
    except _CellTimeout:
        # The expiry was already in flight when an except/finally clause
        # above ran; the watchdog is one-shot, so just record it.
        watchdog.mark_caught()
        payload = timeout_payload
    finally:
        if local_registry is not None:
            set_global_registry(prev_registry)
    if watchdog is not None and watchdog.absorb():
        # The deadline expired: the verdict is a timeout even when the
        # cell raced it to completion, and absorb() guarantees no
        # in-flight _CellTimeout can detonate in a later frame.
        payload = timeout_payload
    if not payload.get("ok") and scratch.get("trace") is not None:
        payload["trace_tail"] = scratch["trace"].tail()
    if local_registry is not None:
        # Failure payloads keep their delta too — counters incremented
        # before the failure are still real observations.
        payload["metrics_delta"] = local_registry.snapshot()
    payload["duration"] = time.perf_counter() - start
    return payload


def _run_cell_batch(
    specs: List[CellSpec],
    cell_timeout: Optional[float],
    topology_store: Optional[TopologyStore] = None,
    collect_metrics: bool = False,
) -> List[Dict[str, Any]]:
    """Chunked worker task: one IPC round trip for several cells.

    All cells in a batch share the worker's topology caches, so a batch
    of T trials at one size performs at most one topology build (zero
    when another worker, or a previous run, already wrote the
    artifact)."""
    return [
        run_cell(
            spec,
            cell_timeout,
            topology_store=topology_store,
            collect_metrics=collect_metrics,
        )
        for spec in specs
    ]


# ----------------------------------------------------------------------
# Outcomes
# ----------------------------------------------------------------------
@dataclass
class CellOutcome:
    """What happened to one cell: a lean result or a structured failure."""

    spec: CellSpec
    key: str
    status: str  # "ok" | "failed" | "timeout" | "crashed"
    cached: bool = False
    result: Optional[WakeUpResult] = None
    rho_awk: float = 0.0
    error: Optional[str] = None
    duration: float = 0.0
    attempts: int = 1
    # Flight-recorder dump (last trace events before a failure); only
    # present when the spec enabled ``flight_recorder`` and the cell
    # failed in-process.
    trace_tail: Optional[List[str]] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def record(self) -> Dict[str, Any]:
        """Flat dict for JSON artifacts (storage.save_records /
        merge_records): spec identity + outcome + summary scalars."""
        rec: Dict[str, Any] = {
            "key": self.key,
            "algorithm": self.spec.algorithm,
            "n": self.spec.n,
            "trial": self.spec.trial,
            "seed": self.spec.seed,
            "engine": self.spec.engine,
            "status": self.status,
            "cached": self.cached,
            "rho_awk": self.rho_awk,
        }
        if self.result is not None:
            rec.update(self.result.summary())
            rec["time_all_awake"] = self.result.time_all_awake
        if self.error is not None:
            rec["error"] = self.error
        if self.trace_tail is not None:
            rec["trace_tail"] = self.trace_tail
        return rec


def _outcome_from_payload(
    spec: CellSpec, key: str, payload: Dict[str, Any], cached: bool
) -> CellOutcome:
    if payload.get("ok"):
        return CellOutcome(
            spec=spec,
            key=key,
            status="ok",
            cached=cached,
            result=WakeUpResult.from_lean_dict(payload["result"]),
            rho_awk=float(payload.get("rho_awk", 0.0)),
            duration=float(payload.get("duration", 0.0)),
        )
    return CellOutcome(
        spec=spec,
        key=key,
        status=payload.get("status", "failed"),
        cached=cached,
        error=payload.get("error"),
        duration=float(payload.get("duration", 0.0)),
        trace_tail=payload.get("trace_tail"),
    )


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
class ParallelSweepExecutor:
    """Fans independent sweep cells across worker processes.

    Parameters
    ----------
    workers:
        Process count; ``None`` means ``os.cpu_count()``.  ``0`` or
        ``1`` runs cells inline in this process (the serial baseline —
        same code path as the workers, no pool overhead).
    backend:
        Execution backend for the multi-worker path
        (:mod:`repro.experiments.backends`): ``"fork"`` (default) is
        the chunked :class:`~concurrent.futures.ProcessPoolExecutor`
        pool, ``"steal"`` is the shared-queue work-stealing pool
        (largest cells scheduled first), ``"serial"`` forces the
        inline path regardless of ``workers``.  Rows are bit-identical
        across all three — backends only reorder wall-clock work.
    cache_dir / use_cache:
        On-disk memoization of successful cells, keyed by
        :func:`cell_key`.  Failures are never cached.
    topology_dir / use_topology_store:
        The compiled-topology artifact store
        (:class:`repro.graphs.compile.TopologyStore`) workers fetch
        graphs through instead of rebuilding them per trial.
        ``use_topology_store=None`` (the default) follows ``use_cache``,
        so ``--no-cache`` runs are hermetic on disk; the in-process
        compiled-topology LRU is always active either way (rows are
        bit-identical with the store on or off — conformance-tested).
        Worker stats flow back inside cell payloads and aggregate into
        ``stats["topology.build" | "topology.hit_mem" |
        "topology.hit_disk"]`` plus one ``topology_stats`` telemetry
        event per sweep.
    cell_timeout:
        Per-cell wall-clock budget in seconds, enforced inside the
        worker; an overrun becomes a ``"timeout"`` outcome.
    chunk_size:
        Cells per submitted task; ``None`` picks a size that gives each
        worker ~4 chunks, amortizing IPC without starving the pool.
    retries:
        How often a cell whose *worker process died* is retried (in an
        isolated single-worker pool).  Default 1.
    recorder:
        Telemetry sink (:mod:`repro.obs`).  The executor frames the
        sweep with ``sweep_start``/``sweep_end`` and publishes a
        per-cell lifecycle as outcomes land in the parent process:
        ``cell_start``, then the cell's per-phase profile replayed as
        aggregate ``phase_end`` events (the phase data crosses the IPC
        boundary inside the lean result payload), then exactly one
        terminal event — ``cell_end`` (ok/failed/crashed) or
        ``cell_timeout``.  ``cell_retry`` marks isolated re-attempts
        after a worker death.
    progress:
        Live-progress object (duck-typed like
        :class:`repro.obs.progress.SweepProgress`): ``start(total,
        workers)`` before the first cell, ``cell(outcome)`` per
        completion (cache hits included), ``finish(stats)`` at the
        end.
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry` to aggregate
        into; ``None`` (the default) resolves the process-global
        registry at each :meth:`run` — still the zero-overhead
        :data:`~repro.obs.metrics.NULL_REGISTRY` unless the caller
        opted in (``repro ... --metrics``).  When enabled, cells
        execute with ``collect_metrics=True`` and their per-cell
        registry deltas merge here exactly once each; executor-level
        instruments (cells, retries, cache fetches, durations) are
        recorded parent-side against this same registry.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache_dir: Union[str, Path] = DEFAULT_CACHE_DIR,
        use_cache: bool = True,
        cell_timeout: Optional[float] = None,
        chunk_size: Optional[int] = None,
        retries: int = 1,
        recorder: Optional[Recorder] = None,
        progress: Optional[Any] = None,
        topology_dir: Union[str, Path] = DEFAULT_TOPOLOGY_DIR,
        use_topology_store: Optional[bool] = None,
        metrics: Optional[MetricsRegistry] = None,
        backend: str = "fork",
    ):
        from repro.experiments.backends import BACKENDS

        if backend not in BACKENDS:
            raise ReproError(
                f"unknown execution backend {backend!r}; "
                f"known: {sorted(BACKENDS)}"
            )
        self.backend = backend
        self.workers = os.cpu_count() or 1 if workers is None else workers
        self.cache_dir = Path(cache_dir)
        self.use_cache = use_cache
        self.cell_timeout = cell_timeout
        self.chunk_size = chunk_size
        self.retries = retries
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.progress = progress
        self.metrics = metrics
        # Resolved per run(); parent-side instruments go through this
        # direct reference, so the worker-side global-registry swap in
        # run_cell (inline mode) can never double-count into it.
        self._mreg: MetricsRegistry = get_registry()
        self.topology_dir = Path(topology_dir)
        if use_topology_store is None:
            use_topology_store = use_cache
        self.use_topology_store = use_topology_store
        self._topology_store = (
            TopologyStore(self.topology_dir) if use_topology_store else None
        )
        self.stats: Dict[str, float] = {}
        self.topo_stats: Dict[str, int] = {
            "build": 0, "hit_mem": 0, "hit_disk": 0
        }

    # -- public API ------------------------------------------------------
    def run(self, cells: Sequence[CellSpec]) -> List[CellOutcome]:
        """Execute all cells; one :class:`CellOutcome` per cell, in
        input order.  Never raises for per-cell failures."""
        cells = list(cells)
        start = time.perf_counter()
        self.topo_stats = {"build": 0, "hit_mem": 0, "hit_disk": 0}
        mreg = self._mreg = (
            self.metrics if self.metrics is not None else get_registry()
        )
        collect = mreg.enabled
        if self.recorder.enabled:
            self.recorder.emit(
                "sweep_start",
                cells=len(cells),
                workers=self.workers,
                backend=self.backend,
            )
        if self.progress is not None:
            self.progress.start(len(cells), self.workers)
        outcomes: Dict[int, CellOutcome] = {}
        misses: List[Tuple[int, CellSpec, str]] = []
        for idx, spec in enumerate(cells):
            key = cell_key(spec)
            payload = self._cache_load(key) if self.use_cache else None
            if payload is not None:
                outcomes[idx] = _outcome_from_payload(
                    spec, key, payload, cached=True
                )
                self._publish(outcomes[idx])
            else:
                misses.append((idx, spec, key))
        if collect and self.use_cache:
            # One fetch per cell: hits == stats["cached"],
            # misses == stats["executed"], by construction.
            mreg.counter(
                "repro_cellcache_fetch_total", outcome="hit"
            ).inc(len(cells) - len(misses))
            mreg.counter(
                "repro_cellcache_fetch_total", outcome="miss"
            ).inc(len(misses))
        if collect:
            mreg.gauge("repro_executor_workers").set(self.workers)
            mreg.gauge("repro_executor_cells_queued").set(len(misses))

        if misses:
            if self.workers <= 1 or self.backend == "serial":
                for idx, spec, key in misses:
                    payload = run_cell(
                        spec,
                        self.cell_timeout,
                        topology_store=self._topology_store,
                        collect_metrics=collect,
                    )
                    self._absorb_topology(payload)
                    self._absorb_metrics(payload)
                    outcomes[idx] = _outcome_from_payload(
                        spec, key, payload, cached=False
                    )
                    self._maybe_cache(key, payload, spec)
                    self._publish(outcomes[idx])
            else:
                self._run_pool(misses, outcomes, collect)

        ordered = [outcomes[i] for i in range(len(cells))]
        self.stats = {
            "cells": len(cells),
            "executed": sum(1 for o in ordered if not o.cached),
            "cached": sum(1 for o in ordered if o.cached),
            "ok": sum(1 for o in ordered if o.ok),
            "failed": sum(1 for o in ordered if not o.ok),
            "wall_time": time.perf_counter() - start,
        }
        for k, v in self.topo_stats.items():
            self.stats[f"topology.{k}"] = v
        if collect:
            mreg.gauge("repro_executor_wall_seconds").set(
                self.stats["wall_time"]
            )
        if self.recorder.enabled:
            self.recorder.emit("topology_stats", **self.topo_stats)
            if collect:
                snap = mreg.snapshot()
                self.recorder.emit(
                    "metrics_snapshot",
                    counters=snap["counters"],
                    gauges=snap["gauges"],
                    histograms=snap["histograms"],
                )
            self.recorder.emit("sweep_end", **self.stats)
        if self.progress is not None:
            self.progress.finish(self.stats)
        return ordered

    # -- telemetry -------------------------------------------------------
    def _absorb_topology(self, payload: Dict[str, Any]) -> None:
        """Fold a worker's topology-cache stats into the sweep totals
        and strip them from the payload — they describe *this* run's
        cache behavior, so a payload replayed from the cell cache must
        contribute zero."""
        tstats = payload.pop("topology", None)
        if tstats:
            for k, v in tstats.items():
                self.topo_stats[k] = self.topo_stats.get(k, 0) + v

    def _absorb_metrics(self, payload: Dict[str, Any]) -> None:
        """Fold a worker's per-cell registry delta into the sweep
        registry and strip it from the payload.  Same contract as
        :meth:`_absorb_topology`: the delta describes *this* run's
        execution, so a payload replayed from the cell cache must
        contribute zero — popping before :meth:`_maybe_cache` writes
        guarantees that."""
        delta = payload.pop("metrics_delta", None)
        if delta and self._mreg.enabled:
            self._mreg.merge_snapshot(delta)

    def _publish(self, outcome: CellOutcome) -> None:
        """Emit one cell's full telemetry lifecycle and feed the
        progress renderer.  Called exactly once per cell, in the parent
        process, as the outcome lands (so event order within a cell is
        guaranteed even though cells complete out of order)."""
        mreg = self._mreg
        if mreg.enabled:
            mreg.counter(
                "repro_executor_cells_total",
                status=outcome.status,
                cached="yes" if outcome.cached else "no",
            ).inc()
            if not outcome.cached:
                if outcome.duration > 0:
                    mreg.histogram(
                        "repro_executor_cell_seconds"
                    ).observe(outcome.duration)
                # Phase spans only for *executed* cells: a cache hit
                # replays the original run's profile in telemetry, but
                # this run did not spend that wall time.
                if outcome.result is not None:
                    profile = outcome.result.phase_profile()
                    for name, prof in profile.items():
                        mreg.histogram(
                            "repro_phase_seconds", phase=name
                        ).observe(prof["time_s"])
        rec = self.recorder
        if rec.enabled:
            spec = outcome.spec
            rec.emit(
                "cell_start",
                key=outcome.key,
                algorithm=spec.algorithm,
                n=spec.n,
                trial=spec.trial,
                seed=spec.seed,
                engine=spec.engine,
                cached=outcome.cached,
            )
            if outcome.result is not None:
                for name, prof in outcome.result.phase_profile().items():
                    rec.emit(
                        "phase_end",
                        phase=name,
                        elapsed=prof["time_s"],
                        messages=prof["messages"],
                        entries=prof["entries"],
                        key=outcome.key,
                        n=spec.n,
                        aggregate=True,
                    )
            if outcome.status == "timeout":
                rec.emit(
                    "cell_timeout",
                    key=outcome.key,
                    duration=outcome.duration,
                    budget=self.cell_timeout,
                    n=spec.n,
                )
            else:
                rec.emit(
                    "cell_end",
                    key=outcome.key,
                    status=outcome.status,
                    cached=outcome.cached,
                    duration=outcome.duration,
                    n=spec.n,
                    attempts=outcome.attempts,
                    error=outcome.error,
                )
        if self.progress is not None:
            self.progress.cell(outcome)

    # -- pool management -------------------------------------------------
    def _run_pool(
        self,
        misses: List[Tuple[int, CellSpec, str]],
        outcomes: Dict[int, CellOutcome],
        collect: bool = False,
    ) -> None:
        """Fan cache misses across the configured execution backend.

        The executor plans batches (one IPC round trip each — see
        :func:`repro.experiments.backends.plan_batches`), the backend
        runs them; a batch drained as ``None`` lost its worker process
        and falls through to :meth:`_run_isolated` for per-cell retry,
        exactly like the pre-backend ``BrokenProcessPool`` path."""
        from repro.experiments.backends import make_backend, plan_batches

        batches = plan_batches(misses, self.workers, self.chunk_size)
        backend = make_backend(
            self.backend,
            workers=self.workers,
            cell_timeout=self.cell_timeout,
            topology_store=self._topology_store,
            collect_metrics=collect,
        )
        survivors: List[Tuple[int, CellSpec, str]] = []
        try:
            for token, batch in enumerate(batches):
                backend.submit_batch(
                    token, [spec for _, spec, _ in batch]
                )
            for token, payloads in backend.drain():
                batch = batches[token]
                if payloads is None:
                    # This batch's worker died (or the pool broke);
                    # defer to the isolation pass.
                    survivors.extend(batch)
                    continue
                for (idx, spec, key), payload in zip(batch, payloads):
                    self._absorb_topology(payload)
                    self._absorb_metrics(payload)
                    outcomes[idx] = _outcome_from_payload(
                        spec, key, payload, cached=False
                    )
                    self._maybe_cache(key, payload, spec)
                    self._publish(outcomes[idx])
        finally:
            backend.close()
        if survivors:
            self._run_isolated(survivors, outcomes, collect)

    def _run_isolated(
        self,
        cells: List[Tuple[int, CellSpec, str]],
        outcomes: Dict[int, CellOutcome],
        collect: bool = False,
    ) -> None:
        """Post-crash path: one fresh single-worker pool per cell, so a
        deterministically crashing cell cannot consume its neighbours'
        retry budget.  Each cell gets ``retries`` extra attempts."""
        ctx = get_context("fork")
        for idx, spec, key in cells:
            attempts = 0
            while True:
                attempts += 1
                if attempts > 1:
                    if self.recorder.enabled:
                        self.recorder.emit(
                            "cell_retry", key=key, attempt=attempts,
                            n=spec.n,
                        )
                    if self._mreg.enabled:
                        self._mreg.counter(
                            "repro_executor_cell_retries_total"
                        ).inc()
                try:
                    with ProcessPoolExecutor(
                        max_workers=1, mp_context=ctx
                    ) as pool:
                        payload = pool.submit(
                            run_cell,
                            spec,
                            self.cell_timeout,
                            self._topology_store,
                            collect,
                        ).result()
                except BrokenProcessPool:
                    if attempts <= self.retries:
                        continue
                    outcomes[idx] = CellOutcome(
                        spec=spec,
                        key=key,
                        status="crashed",
                        error=(
                            "worker process died "
                            f"({attempts} attempt(s))"
                        ),
                        attempts=attempts,
                    )
                    self._publish(outcomes[idx])
                    break
                self._absorb_topology(payload)
                self._absorb_metrics(payload)
                outcomes[idx] = _outcome_from_payload(
                    spec, key, payload, cached=False
                )
                outcomes[idx].attempts = attempts
                self._maybe_cache(key, payload, spec)
                self._publish(outcomes[idx])
                break

    # -- cache -----------------------------------------------------------
    def _cache_path(self, key: str) -> Path:
        return self.cache_dir / key[:2] / f"{key}.json"

    def _cache_load(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._cache_path(key)
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        # The key already encodes the full salt vector, so a key match
        # implies salt-live; the schema check rejects v1 envelopes that
        # could only collide by accident.
        if data.get("schema") != CACHE_SCHEMA or data.get("key") != key:
            return None
        return data.get("payload")

    def _maybe_cache(
        self, key: str, payload: Dict[str, Any], spec: CellSpec
    ) -> None:
        if not self.use_cache or not payload.get("ok"):
            return
        path = self._cache_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(
                {
                    "schema": CACHE_SCHEMA,
                    "key": key,
                    "algorithm": spec.algorithm,
                    "salts": _cell_salts(spec),
                    "payload": payload,
                },
                sort_keys=True,
            )
        )
        tmp.replace(path)

    def purge_cache(self, stale_only: bool = False) -> int:
        """Delete cached cells; returns the number removed.

        ``stale_only`` keeps every entry whose salt vector still
        matches the current code and removes the rest (superseded
        salts, legacy v1 envelopes, unreadable files) — the surgical
        successor of the old all-or-nothing purge, surfaced as
        ``repro cache purge --stale``."""
        removed = 0
        if self.cache_dir.is_dir():
            for entry in self.cache_dir.rglob("*.json"):
                if stale_only:
                    status, _ = classify_cell_envelope(entry)
                    if status == "live":
                        continue
                entry.unlink()
                removed += 1
        return removed

    def purge_topologies(self, stale_only: bool = False) -> int:
        """Delete stored compiled topologies; returns the number
        removed.  Independent of :meth:`purge_cache` — cached cell
        *results* survive a topology purge and vice versa."""
        return TopologyStore(self.topology_dir).purge(stale_only=stale_only)


def classify_cell_envelope(path: Union[str, Path]) -> Tuple[str, str]:
    """Liveness of one on-disk cell envelope: ``("live", "")`` or
    ``("stale", reason)`` where the reason names what invalidated it —
    ``"legacy"`` (v1 envelope), ``"unreadable"``, or the stale salt
    components (``"engine"``, ``"engine+algorithms"``, ...).  Powers
    the ``repro cache info`` salt report and ``purge --stale``."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError):
        return "stale", "unreadable"
    if not isinstance(data, dict) or data.get("schema") != CACHE_SCHEMA:
        return "stale", "legacy"
    salts = data.get("salts")
    algorithm = data.get("algorithm")
    if not isinstance(salts, dict) or not isinstance(algorithm, str):
        return "stale", "legacy"
    current = cell_salt_vector(algorithm)
    if "check" in salts:
        # Controlled-cell envelope: the key folded the check salt too.
        from repro.versioning import subsystem_salt

        current["check"] = subsystem_salt("check")
    mismatched = sorted(
        name for name, salt in current.items() if salts.get(name) != salt
    )
    if mismatched:
        return "stale", "+".join(mismatched)
    return "live", ""


def cell_cache_report(
    cache_dir: Union[str, Path] = DEFAULT_CACHE_DIR,
) -> Dict[str, Any]:
    """Walk the cell cache and bucket every envelope by liveness:
    ``{"live": n, "stale": m, "stale_by": {reason: count}}``."""
    report: Dict[str, Any] = {"live": 0, "stale": 0, "stale_by": {}}
    cache_dir = Path(cache_dir)
    if cache_dir.is_dir():
        for entry in cache_dir.rglob("*.json"):
            status, reason = classify_cell_envelope(entry)
            if status == "live":
                report["live"] += 1
            else:
                report["stale"] += 1
                report["stale_by"][reason] = (
                    report["stale_by"].get(reason, 0) + 1
                )
    return report
