"""Reproduce Table 1 end to end.

For every row of the paper's Table 1 this module runs the
corresponding implementation on a standard workload, measures the
three complexity columns (time, messages, max advice), and renders a
measured table side by side with the paper's asymptotic claims.  The
EXPERIMENTS.md numbers come from here (and from the per-row benches,
which sweep n and fit exponents).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.analysis.report import render_table
from repro.core.base import WakeUpAlgorithm
from repro.errors import ReproError
from repro.core.child_encoding import ChildEncodingAdvice
from repro.core.dfs_wakeup import DfsWakeUp
from repro.core.fast_wakeup import FastWakeUp
from repro.core.fip06 import Fip06TreeAdvice
from repro.core.flooding import Flooding
from repro.core.spanner_advice import LogSpannerAdvice, SpannerAdvice
from repro.core.sqrt_advice import SqrtThresholdAdvice
from repro.graphs.generators import connected_erdos_renyi
from repro.graphs.traversal import awake_distance, diameter
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UniformRandomDelay, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup


@dataclass
class Table1Row:
    """One measured Table-1 row."""

    row: str
    algorithm: str
    model: str
    paper_time: str
    paper_messages: str
    paper_advice: str
    time: float
    messages: int
    advice_max_bits: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "row": self.row,
            "algorithm": self.algorithm,
            "model": self.model,
            "time": self.time,
            "paper_time": self.paper_time,
            "messages": self.messages,
            "paper_msgs": self.paper_messages,
            "adv_max": self.advice_max_bits,
            "paper_advice": self.paper_advice,
        }


_ROWS = [
    # (label, factory, registry name, algo params, engine, knowledge,
    #  bandwidth, paper bounds) — factory for the in-process path,
    # name+params for the executor cells; both build the same object.
    (
        "Thm 3",
        DfsWakeUp,
        "dfs-rank",
        {},
        "async",
        Knowledge.KT1,
        "LOCAL",
        ("O(n log n)", "O(n log n)", "-"),
    ),
    (
        "Thm 4",
        FastWakeUp,
        "fast-wakeup",
        {},
        "sync",
        Knowledge.KT1,
        "LOCAL",
        ("O(rho)", "O(n^1.5 sqrt(log n))", "-"),
    ),
    (
        "Cor 1",
        Fip06TreeAdvice,
        "fip06-tree-advice",
        {},
        "async",
        Knowledge.KT0,
        "CONGEST",
        ("O(D)", "O(n)", "O(n) max / O(log n) avg"),
    ),
    (
        "Thm 5A",
        SqrtThresholdAdvice,
        "sqrt-threshold-advice",
        {},
        "async",
        Knowledge.KT0,
        "CONGEST",
        ("O(D)", "O(n^1.5)", "O(sqrt(n) log n)"),
    ),
    (
        "Thm 5B",
        ChildEncodingAdvice,
        "child-encoding",
        {},
        "async",
        Knowledge.KT0,
        "CONGEST",
        ("O(D log n)", "O(n)", "O(log n)"),
    ),
    (
        "Thm 6",
        lambda: SpannerAdvice(k=3),
        "spanner-advice",
        {"k": 3},
        "async",
        Knowledge.KT0,
        "CONGEST",
        ("O(k rho log n)", "O(k n^{1+1/k})", "O(n^{1/k} log^2 n)"),
    ),
    (
        "Cor 2",
        LogSpannerAdvice,
        "log-spanner-advice",
        {},
        "async",
        Knowledge.KT0,
        "CONGEST",
        ("O(rho log^2 n)", "O(n log^2 n)", "O(log^2 n)"),
    ),
    (
        "baseline",
        Flooding,
        "flooding",
        {},
        "async",
        Knowledge.KT0,
        "CONGEST",
        ("rho", "Theta(m)", "-"),
    ),
]


def table1_cells(
    n: int = 200,
    avg_degree: float = 8.0,
    awake_fraction: float = 0.05,
    seed: int = 0,
):
    """One :class:`~repro.experiments.parallel.CellSpec` per Table-1
    row, on the shared workload, seeded exactly like the in-process
    :func:`measure_table1` loop."""
    from repro.experiments.parallel import CellSpec

    workload = {
        "kind": "er_shared_wake",
        "avg_degree": avg_degree,
        "awake_fraction": awake_fraction,
        "seed": seed,
    }
    cells = []
    for _, _, name, params, engine, knowledge, bandwidth, _ in _ROWS:
        delay = (
            {"kind": "unit"}
            if engine == "sync"
            else {"kind": "uniform", "seed": seed}
        )
        cells.append(
            CellSpec(
                algorithm=name,
                n=n,
                seed=seed,
                engine=engine,
                knowledge=knowledge.value,
                bandwidth=bandwidth,
                workload=dict(workload),
                delay=delay,
                algo_params=dict(params),
                setup_seed=seed + 2,
                exec_seed=seed + 3,
            )
        )
    return cells


def measure_table1(
    n: int = 200,
    avg_degree: float = 8.0,
    awake_fraction: float = 0.05,
    seed: int = 0,
    executor=None,
) -> List[Table1Row]:
    """Run every Table-1 algorithm on a shared ER workload.

    With an ``executor``
    (:class:`~repro.experiments.parallel.ParallelSweepExecutor`) the
    rows run as independent cells — in parallel, cached on disk — and
    produce the same measurements as the in-process loop.
    """
    import random as _random

    if executor is not None:
        cells = table1_cells(
            n=n,
            avg_degree=avg_degree,
            awake_fraction=awake_fraction,
            seed=seed,
        )
        outcomes = executor.run(cells)
        rows = []
        for (label, _, _, _, engine, knowledge, bandwidth, bounds), o in zip(
            _ROWS, outcomes
        ):
            if not o.ok or o.result is None:
                raise ReproError(
                    f"Table-1 row {label!r} failed: {o.status} ({o.error})"
                )
            rows.append(
                Table1Row(
                    row=label,
                    algorithm=o.result.algorithm,
                    model=f"{engine}/{knowledge.value}/{bandwidth}",
                    paper_time=bounds[0],
                    paper_messages=bounds[1],
                    paper_advice=bounds[2],
                    time=o.result.time,
                    messages=o.result.messages,
                    advice_max_bits=o.result.advice_max_bits,
                )
            )
        return rows

    graph = connected_erdos_renyi(
        n, avg_degree / max(1, n - 1), seed=seed
    )
    rng = _random.Random(seed + 1)
    awake = rng.sample(
        list(graph.vertices()), max(1, int(awake_fraction * n))
    )
    rows: List[Table1Row] = []
    for label, factory, _, _, engine, knowledge, bandwidth, bounds in _ROWS:
        setup = make_setup(
            graph, knowledge=knowledge, bandwidth=bandwidth, seed=seed + 2
        )
        delays = UnitDelay() if engine == "sync" else UniformRandomDelay(seed)
        adversary = Adversary(WakeSchedule.all_at_once(awake), delays)
        result = run_wakeup(
            setup, factory(), adversary, engine=engine, seed=seed + 3
        )
        rows.append(
            Table1Row(
                row=label,
                algorithm=result.algorithm,
                model=f"{engine}/{knowledge.value}/{bandwidth}",
                paper_time=bounds[0],
                paper_messages=bounds[1],
                paper_advice=bounds[2],
                time=result.time,
                messages=result.messages,
                advice_max_bits=result.advice_max_bits,
            )
        )
    return rows


def render_table1(rows: List[Table1Row]) -> str:
    return render_table(
        [r.as_dict() for r in rows],
        title="Table 1 (measured vs paper bounds)",
    )


def workload_context(
    n: int = 200, avg_degree: float = 8.0, awake_fraction: float = 0.05,
    seed: int = 0,
) -> Dict[str, float]:
    """The D / rho / m context values for a measured table."""
    import random as _random

    graph = connected_erdos_renyi(n, avg_degree / max(1, n - 1), seed=seed)
    rng = _random.Random(seed + 1)
    awake = rng.sample(
        list(graph.vertices()), max(1, int(awake_fraction * n))
    )
    return {
        "n": float(n),
        "m": float(graph.num_edges),
        "diameter": float(diameter(graph)),
        "rho_awk": float(awake_distance(graph, awake)),
        "log2n": math.log2(n),
    }
