"""Monte-Carlo success-probability estimation.

The paper distinguishes Las Vegas algorithms (Theorems 3/4: always
correct, randomized cost) from schemes that can *fail* (the Sec-1.3
star sampling; push gossip under a round budget).  For the latter, the
right experimental object is the success probability with a confidence
interval.  This module estimates it with Wilson score intervals —
better behaved than the normal approximation at the extreme rates these
experiments produce (failure probabilities near 0 or 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.experiments.parallel import (
    CellOutcome,
    CellSpec,
    ParallelSweepExecutor,
)


@dataclass
class SuccessEstimate:
    """Estimated success probability with a Wilson confidence interval."""

    successes: int
    trials: int
    confidence: float
    low: float
    high: float

    @property
    def rate(self) -> float:
        return self.successes / self.trials

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"{self.rate:.3f} "
            f"[{self.low:.3f}, {self.high:.3f}] "
            f"@{self.confidence:.0%} ({self.successes}/{self.trials})"
        )


# z-scores for the confidence levels the benches use.
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ReproError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ReproError("successes out of range")
    try:
        z = _Z[confidence]
    except KeyError:
        raise ReproError(
            f"unsupported confidence {confidence}; pick from {sorted(_Z)}"
        ) from None
    p = successes / trials
    denom = 1 + z**2 / trials
    center = (p + z**2 / (2 * trials)) / denom
    spread = (
        z
        * math.sqrt(p * (1 - p) / trials + z**2 / (4 * trials**2))
        / denom
    )
    return max(0.0, center - spread), min(1.0, center + spread)


def estimate_success(
    trial: Callable[[int], bool],
    trials: int,
    confidence: float = 0.95,
    seed: int = 0,
) -> SuccessEstimate:
    """Run ``trial(seed_i)`` for ``trials`` derived seeds and wrap the
    outcome counts in a Wilson interval."""
    if trials <= 0:
        raise ReproError("trials must be positive")
    successes = sum(
        1 for i in range(trials) if trial(seed * 100_003 + i)
    )
    low, high = wilson_interval(successes, trials, confidence)
    return SuccessEstimate(
        successes=successes,
        trials=trials,
        confidence=confidence,
        low=low,
        high=high,
    )


def success_from_outcomes(
    outcomes: Sequence[CellOutcome], confidence: float = 0.95
) -> SuccessEstimate:
    """Wilson estimate over executor cell outcomes.

    A cell counts as a success iff it completed *and* woke the whole
    network; structured failures (``WakeUpFailure``, timeout, worker
    crash) count as failures rather than aborting the estimate.
    """
    trials = len(outcomes)
    successes = sum(
        1
        for o in outcomes
        if o.ok and o.result is not None and o.result.all_awake
    )
    low, high = wilson_interval(successes, trials, confidence)
    return SuccessEstimate(
        successes=successes,
        trials=trials,
        confidence=confidence,
        low=low,
        high=high,
    )


def estimate_success_cells(
    cells: Sequence[CellSpec],
    executor: Optional[ParallelSweepExecutor] = None,
    confidence: float = 0.95,
) -> Tuple[SuccessEstimate, List[CellOutcome]]:
    """Executor-routed Monte-Carlo: each cell is one independent trial
    (vary ``trial``/``seed`` across cells); runs fan out over worker
    processes and warm cells replay from the on-disk cache.

    Cells should set ``require_all_awake=False`` when partial wake-ups
    are the interesting outcome rather than an error; either way a
    failed cell is a failed trial.
    """
    if not cells:
        raise ReproError("trials must be positive")
    if executor is None:
        executor = ParallelSweepExecutor(workers=0, use_cache=False)
    outcomes = executor.run(list(cells))
    return success_from_outcomes(outcomes, confidence), outcomes


def trials_for_separation(p0: float, p1: float, confidence: float = 0.95) -> int:
    """Rough number of trials needed to separate success rates p0 < p1
    (intervals of half-width ~(p1-p0)/2).  Planning helper for benches."""
    if not 0 <= p0 < p1 <= 1:
        raise ReproError("need 0 <= p0 < p1 <= 1")
    z = _Z.get(confidence)
    if z is None:
        raise ReproError(f"unsupported confidence {confidence}")
    gap = (p1 - p0) / 2
    worst_var = 0.25  # p(1-p) maximized at 1/2
    return math.ceil((z**2 * worst_var) / gap**2)
