"""Execution backends: how cell batches reach worker processes.

PR-9 extracted the fork-pool plumbing that lived inline in
``ParallelSweepExecutor._run_pool`` behind a small protocol so the
*scheduling policy* can vary without touching result handling, caching,
or telemetry (all of which stay in the executor, in the parent
process):

* :class:`SerialBackend` — runs every batch inline; the degenerate
  backend the ``--exec-backend serial`` flag forces for debugging and
  the conformance suite's baseline.
* :class:`ForkPoolBackend` — the original design: one
  :class:`~concurrent.futures.ProcessPoolExecutor` (fork context) with
  all batches submitted up front.  Batches complete in an arbitrary
  order but are *assigned* to workers in submission order, so one
  expensive straggler batch near the end of the list serializes the
  tail.
* :class:`WorkStealingBackend` — N worker processes pulling batches
  from one shared queue, with size-aware scheduling: batches are
  enqueued largest-``n`` first, so the expensive cells start
  immediately and the small ones pack the gaps (the classic LPT
  heuristic).  Each worker keeps its own warm in-process topology LRU
  (inherited machinery — the per-process ``_MEM_CACHE`` in
  :mod:`repro.graphs.compile`), and ships per-cell metrics deltas in
  the payloads exactly as the fork pool does, so ``workers=0`` and
  ``workers=N`` stay bit-identical.

The protocol is deliberately batch-shaped, not cell-shaped: a batch is
one IPC round trip and one unit of crash blast-radius.  A drained
``None`` payload list means "this batch's worker died" — the executor
feeds those cells to its isolated-retry path, which is unchanged.

Determinism contract: backends only decide *where and when* a batch
runs.  Every cell still executes via
:func:`repro.experiments.parallel.run_cell` from its plain-data spec,
so rows are bit-identical across serial/fork/steal — enforced by the
cross-backend conformance tests in ``tests/test_backends.py``.
"""

from __future__ import annotations

import os
import queue as queue_mod
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

#: Smallest batch worth one IPC round trip.  Without a floor the
#: chunk heuristic degenerates to one-cell batches on small sweeps
#: (e.g. 8 misses across 4 workers -> ceil(8/16) = 1), paying
#: per-future submit/result overhead per *cell*; with it, small sweeps
#: still give every worker work (the floor is capped by
#: ceil(misses/workers)) but amortize the IPC.
MIN_CHUNK = 4

#: Payloads drained for one submitted batch; ``None`` = worker died.
DrainItem = Tuple[int, Optional[List[Dict[str, Any]]]]


def plan_batches(
    misses: Sequence[Tuple[int, Any, str]],
    workers: int,
    chunk_size: Optional[int] = None,
) -> List[List[Tuple[int, Any, str]]]:
    """Slice the miss list into submission batches.

    An explicit ``chunk_size`` wins; otherwise the chunk targets ~4
    batches per worker (pool balance) but never drops below
    :data:`MIN_CHUNK` cells unless that would leave workers idle.
    Batches are contiguous slices, so multi-trial cells at one size
    land in one batch and share the worker's warm topology cache.
    """
    misses = list(misses)
    if not misses:
        return []
    workers = max(1, workers)
    if chunk_size:
        chunk = chunk_size
    else:
        balanced = -(-len(misses) // (workers * 4))
        floor = min(MIN_CHUNK, -(-len(misses) // workers))
        chunk = max(balanced, floor, 1)
    return [
        misses[i : i + chunk] for i in range(0, len(misses), chunk)
    ]


def batch_weight(specs: Sequence[Any]) -> int:
    """Scheduling weight of one batch: the work is superlinear in
    ``n``, so the largest cell dominates; ties break toward more
    cells."""
    if not specs:
        return 0
    return max(int(getattr(s, "n", 0)) for s in specs) * len(specs)


class ExecutionBackend(Protocol):
    """How the executor talks to any backend.

    ``submit_batch`` is non-blocking enqueue; ``drain`` yields
    ``(token, payloads)`` for every submitted batch exactly once, in
    completion order, with ``payloads=None`` for a batch whose worker
    process died; ``stats`` reports backend-side counters (merged into
    nothing automatically — diagnostics only); ``close`` releases
    worker processes and is idempotent.
    """

    name: str

    def submit_batch(self, token: int, specs: List[Any]) -> None: ...

    def drain(self) -> Iterator[DrainItem]: ...

    def stats(self) -> Dict[str, float]: ...

    def close(self) -> None: ...


# ----------------------------------------------------------------------
# Serial
# ----------------------------------------------------------------------
class SerialBackend:
    """Runs batches inline, in submission order.  Exists so "which
    backend?" is a pure config axis: the conformance suite diffs fork
    and steal rows against this one."""

    name = "serial"

    def __init__(
        self,
        workers: int = 1,
        cell_timeout: Optional[float] = None,
        topology_store: Optional[Any] = None,
        collect_metrics: bool = False,
    ):
        self.cell_timeout = cell_timeout
        self.topology_store = topology_store
        self.collect_metrics = collect_metrics
        self._pending: List[Tuple[int, List[Any]]] = []
        self._batches = 0

    def submit_batch(self, token: int, specs: List[Any]) -> None:
        self._pending.append((token, specs))

    def drain(self) -> Iterator[DrainItem]:
        from repro.experiments.parallel import _run_cell_batch

        while self._pending:
            token, specs = self._pending.pop(0)
            self._batches += 1
            yield token, _run_cell_batch(
                specs,
                self.cell_timeout,
                topology_store=self.topology_store,
                collect_metrics=self.collect_metrics,
            )

    def stats(self) -> Dict[str, float]:
        return {"batches": float(self._batches)}

    def close(self) -> None:
        self._pending.clear()


# ----------------------------------------------------------------------
# Fork pool
# ----------------------------------------------------------------------
class ForkPoolBackend:
    """The original pool: ProcessPoolExecutor over a fork context,
    every batch submitted up front, results in completion order.  A
    ``BrokenProcessPool`` marks every unfinished batch crashed (the
    pool is dead); the executor's isolation pass sorts out which cell
    was the killer."""

    name = "fork"

    def __init__(
        self,
        workers: int,
        cell_timeout: Optional[float] = None,
        topology_store: Optional[Any] = None,
        collect_metrics: bool = False,
    ):
        self.workers = max(1, workers)
        self.cell_timeout = cell_timeout
        self.topology_store = topology_store
        self.collect_metrics = collect_metrics
        self._pending: List[Tuple[int, List[Any]]] = []
        self._batches = 0
        self._crashed = 0

    def submit_batch(self, token: int, specs: List[Any]) -> None:
        self._pending.append((token, specs))

    def drain(self) -> Iterator[DrainItem]:
        from repro.experiments.parallel import _run_cell_batch

        if not self._pending:
            return
        ctx = get_context("fork")
        with ProcessPoolExecutor(
            max_workers=self.workers, mp_context=ctx
        ) as pool:
            futs = {
                pool.submit(
                    _run_cell_batch,
                    specs,
                    self.cell_timeout,
                    self.topology_store,
                    self.collect_metrics,
                ): token
                for token, specs in self._pending
            }
            self._pending.clear()
            for fut in as_completed(futs):
                token = futs[fut]
                self._batches += 1
                try:
                    yield token, fut.result()
                except BrokenProcessPool:
                    # One of this batch's cells (or a neighbour) took
                    # a worker down; every unfinished future fails with
                    # the same error.
                    self._crashed += 1
                    yield token, None

    def stats(self) -> Dict[str, float]:
        return {
            "batches": float(self._batches),
            "crashed_batches": float(self._crashed),
        }

    def close(self) -> None:
        self._pending.clear()


# ----------------------------------------------------------------------
# Work stealing
# ----------------------------------------------------------------------
def _steal_worker(task_q, result_q, cell_timeout, topology_store, collect):
    """Worker-process loop: pull a batch, announce it, run it, ship the
    payloads.  The ``("start", token, pid)`` message is what lets the
    parent attribute a dead worker to the batch it was holding."""
    from repro.experiments.parallel import _run_cell_batch

    pid = os.getpid()
    while True:
        task = task_q.get()
        if task is None:  # shutdown sentinel
            return
        token, specs = task
        result_q.put(("start", token, pid))
        payloads = _run_cell_batch(
            specs,
            cell_timeout,
            topology_store=topology_store,
            collect_metrics=collect,
        )
        result_q.put(("done", token, payloads))


class WorkStealingBackend:
    """N workers stealing batches from one shared queue.

    Scheduling is size-aware: at drain time the buffered batches are
    sorted by :func:`batch_weight` descending before being enqueued,
    so the most expensive cells start first and a single large-``n``
    straggler overlaps the long tail of small cells instead of
    serializing after it.  (The fork pool assigns batches in
    submission order, which is exactly the pathological case the
    skewed-mix bench measures.)

    Crash handling: a worker that dies mid-batch (SIGKILL'd by a cell,
    OOM, ...) is detected by the parent's reaper — the batch it
    announced via ``start`` but never finished drains as ``None`` and
    the remaining workers keep stealing.  If *every* worker dies, all
    still-pending batches drain as ``None``; the executor's isolated
    retry path owns them from there.
    """

    name = "steal"

    #: How long the parent waits on the result queue before checking
    #: for dead workers.
    _POLL_S = 0.1

    def __init__(
        self,
        workers: int,
        cell_timeout: Optional[float] = None,
        topology_store: Optional[Any] = None,
        collect_metrics: bool = False,
    ):
        self.workers = max(1, workers)
        self.cell_timeout = cell_timeout
        self.topology_store = topology_store
        self.collect_metrics = collect_metrics
        self._pending: List[Tuple[int, List[Any]]] = []
        self._procs: List[Any] = []
        self._batches = 0
        self._crashed = 0
        self._ctx = get_context("fork")

    def submit_batch(self, token: int, specs: List[Any]) -> None:
        self._pending.append((token, specs))

    def drain(self) -> Iterator[DrainItem]:
        if not self._pending:
            return
        # Largest work first: LPT scheduling over batch weights.
        ordered = sorted(
            self._pending,
            key=lambda item: batch_weight(item[1]),
            reverse=True,
        )
        self._pending.clear()
        task_q = self._ctx.Queue()
        result_q = self._ctx.Queue()
        for item in ordered:
            task_q.put(item)
        nworkers = min(self.workers, len(ordered))
        for _ in range(nworkers):
            task_q.put(None)
        self._procs = [
            self._ctx.Process(
                target=_steal_worker,
                args=(
                    task_q,
                    result_q,
                    self.cell_timeout,
                    self.topology_store,
                    self.collect_metrics,
                ),
                daemon=True,
            )
            for _ in range(nworkers)
        ]
        for proc in self._procs:
            proc.start()
        pending = {token for token, _ in ordered}
        in_flight: Dict[int, int] = {}  # pid -> token
        while pending:
            msgs: List[Tuple[str, int, Any]] = []
            try:
                msgs.append(result_q.get(timeout=self._POLL_S))
            except queue_mod.Empty:
                pass
            # Opportunistically drain everything already shipped, so a
            # finished batch is never misread as crashed just because
            # its worker exited before the parent got to the message.
            while True:
                try:
                    msgs.append(result_q.get_nowait())
                except queue_mod.Empty:
                    break
            for kind, token, extra in msgs:
                if kind == "start":
                    in_flight[extra] = token
                elif kind == "done":
                    in_flight = {
                        pid: t
                        for pid, t in in_flight.items()
                        if t != token
                    }
                    if token in pending:
                        pending.discard(token)
                        self._batches += 1
                        yield token, extra
            if msgs:
                continue
            # The queue is quiet: reap dead workers.  Anything a dead
            # worker announced but never finished drains as crashed;
            # the survivors keep stealing from the shared queue.
            for proc in [p for p in self._procs if not p.is_alive()]:
                self._procs.remove(proc)
                token = in_flight.pop(proc.pid, None)
                if token is not None and token in pending:
                    pending.discard(token)
                    self._crashed += 1
                    yield token, None
            if not self._procs and pending:
                # Every worker is gone; nothing left can finish.
                for token in sorted(pending):
                    self._crashed += 1
                    yield token, None
                pending.clear()
        self._join()

    def _join(self) -> None:
        for proc in self._procs:
            if proc.is_alive():
                proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
        self._procs = []

    def stats(self) -> Dict[str, float]:
        return {
            "batches": float(self._batches),
            "crashed_batches": float(self._crashed),
        }

    def close(self) -> None:
        self._pending.clear()
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        self._procs = []


#: Backend registry the executor (and CLI flag choices) resolve
#: through.
BACKENDS = {
    "serial": SerialBackend,
    "fork": ForkPoolBackend,
    "steal": WorkStealingBackend,
}


def make_backend(
    name: str,
    workers: int,
    cell_timeout: Optional[float] = None,
    topology_store: Optional[Any] = None,
    collect_metrics: bool = False,
) -> ExecutionBackend:
    """Instantiate a backend by registry name."""
    try:
        cls = BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown execution backend {name!r}; known: {sorted(BACKENDS)}"
        ) from None
    return cls(
        workers=workers,
        cell_timeout=cell_timeout,
        topology_store=topology_store,
        collect_metrics=collect_metrics,
    )
