"""Experiment drivers: Table-1 reproduction, sweeps, persistence, and
advice-corruption robustness."""

from repro.experiments.corruption import (
    CorruptionPoint,
    corruption_curve,
    corruption_trial,
    flip_bits,
)
from repro.experiments.storage import (
    compare_records,
    load_records,
    save_records,
)
from repro.experiments.sweeps import (
    SweepRow,
    dense_er_all_awake,
    er_fraction_wake,
    er_single_wake,
    grid_corner_wake,
    sweep,
    tree_random_wake,
)
from repro.experiments.table1 import (
    Table1Row,
    measure_table1,
    render_table1,
    workload_context,
)

__all__ = [
    "CorruptionPoint",
    "corruption_curve",
    "corruption_trial",
    "flip_bits",
    "compare_records",
    "load_records",
    "save_records",
    "SweepRow",
    "dense_er_all_awake",
    "er_fraction_wake",
    "er_single_wake",
    "grid_corner_wake",
    "sweep",
    "tree_random_wake",
    "Table1Row",
    "measure_table1",
    "render_table1",
    "workload_context",
]
