"""Experiment drivers: Table-1 reproduction, sweeps, parallel cell
execution with on-disk caching, persistence, and advice-corruption
robustness."""

from repro.experiments.corruption import (
    CorruptionPoint,
    corruption_curve,
    corruption_trial,
    flip_bits,
)
from repro.experiments.parallel import (
    CellOutcome,
    CellSpec,
    ParallelSweepExecutor,
    cell_key,
)
from repro.experiments.storage import (
    compare_records,
    load_records,
    merge_records,
    save_records,
)
from repro.experiments.sweeps import (
    SweepRow,
    build_workload,
    dense_er_all_awake,
    er_fraction_wake,
    er_shared_wake,
    er_single_wake,
    grid_corner_wake,
    parallel_sweep,
    register_workload,
    rows_from_outcomes,
    sweep,
    sweep_cells,
    tree_random_wake,
)
from repro.experiments.table1 import (
    Table1Row,
    measure_table1,
    render_table1,
    table1_cells,
    workload_context,
)

__all__ = [
    "CorruptionPoint",
    "corruption_curve",
    "corruption_trial",
    "flip_bits",
    "CellOutcome",
    "CellSpec",
    "ParallelSweepExecutor",
    "cell_key",
    "compare_records",
    "load_records",
    "merge_records",
    "save_records",
    "SweepRow",
    "build_workload",
    "dense_er_all_awake",
    "er_fraction_wake",
    "er_shared_wake",
    "er_single_wake",
    "grid_corner_wake",
    "parallel_sweep",
    "register_workload",
    "rows_from_outcomes",
    "sweep",
    "sweep_cells",
    "tree_random_wake",
    "Table1Row",
    "measure_table1",
    "render_table1",
    "table1_cells",
    "workload_context",
]
