"""Persistence for experiment results.

Benches print tables; long-lived reproductions also want the raw
numbers on disk so EXPERIMENTS.md can be regenerated and diffs between
runs inspected.  This module serializes sweep rows, Table-1 rows, and
generic record dicts to a stable JSON layout with run metadata.
"""

from __future__ import annotations

import json
import platform
import sys
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from repro.errors import ReproError

PathLike = Union[str, Path]

FORMAT_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of result objects to JSON-safe values."""
    if is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonable(v) for k, v in asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, frozenset):
        return sorted(repr(x) for x in value)
    return repr(value)


def save_records(
    path: PathLike,
    records: Sequence[Any],
    experiment: str,
    params: Dict[str, Any] | None = None,
) -> None:
    """Write records (dataclasses or dicts) plus run metadata as JSON."""
    payload = {
        "format_version": FORMAT_VERSION,
        "experiment": experiment,
        "params": _jsonable(params or {}),
        "environment": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "records": [_jsonable(r) for r in records],
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_records(path: PathLike) -> Dict[str, Any]:
    """Load a result file; validates the format version."""
    try:
        payload = json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise ReproError(f"no results file at {path}") from None
    except json.JSONDecodeError as exc:
        raise ReproError(f"corrupt results file {path}: {exc}") from None
    if payload.get("format_version") != FORMAT_VERSION:
        raise ReproError(
            f"results file {path} has format version "
            f"{payload.get('format_version')}, expected {FORMAT_VERSION}"
        )
    return payload


def compare_records(
    old: Dict[str, Any],
    new: Dict[str, Any],
    key: str,
    tolerance: float = 0.25,
) -> List[str]:
    """Report records whose ``key`` drifted by more than ``tolerance``
    (relative).  Records are matched positionally; a length mismatch is
    itself reported.  Used to spot regressions between stored runs."""
    drifts: List[str] = []
    olds, news = old.get("records", []), new.get("records", [])
    if len(olds) != len(news):
        drifts.append(
            f"record count changed: {len(olds)} -> {len(news)}"
        )
    for i, (a, b) in enumerate(zip(olds, news)):
        va, vb = a.get(key), b.get(key)
        if not isinstance(va, (int, float)) or not isinstance(vb, (int, float)):
            continue
        if va == 0:
            continue
        rel = abs(vb - va) / abs(va)
        if rel > tolerance:
            drifts.append(
                f"record {i}: {key} drifted {va} -> {vb} ({rel:.0%})"
            )
    return drifts
