"""Persistence for experiment results.

Benches print tables; long-lived reproductions also want the raw
numbers on disk so EXPERIMENTS.md can be regenerated and diffs between
runs inspected.  This module serializes sweep rows, Table-1 rows, and
generic record dicts to a stable JSON layout with run metadata.
"""

from __future__ import annotations

import json
import platform
import sys
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

from repro.errors import ReproError

PathLike = Union[str, Path]

FORMAT_VERSION = 1


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of result objects to JSON-safe values."""
    if is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonable(v) for k, v in asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, frozenset):
        return sorted(repr(x) for x in value)
    return repr(value)


def save_records(
    path: PathLike,
    records: Sequence[Any],
    experiment: str,
    params: Dict[str, Any] | None = None,
) -> None:
    """Write records (dataclasses or dicts) plus run metadata as JSON."""
    payload = {
        "format_version": FORMAT_VERSION,
        "experiment": experiment,
        "params": _jsonable(params or {}),
        "environment": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
        },
        "records": [_jsonable(r) for r in records],
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_records(path: PathLike) -> Dict[str, Any]:
    """Load a result file; validates the format version."""
    try:
        payload = json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise ReproError(f"no results file at {path}") from None
    except json.JSONDecodeError as exc:
        raise ReproError(f"corrupt results file {path}: {exc}") from None
    if payload.get("format_version") != FORMAT_VERSION:
        raise ReproError(
            f"results file {path} has format version "
            f"{payload.get('format_version')}, expected {FORMAT_VERSION}"
        )
    return payload


def merge_records(
    path: PathLike,
    records: Sequence[Any],
    experiment: str,
    params: Dict[str, Any] | None = None,
    key: str = "key",
) -> List[Dict[str, Any]]:
    """Merge new records into an existing artifact, matching by ``key``.

    This is how cached and fresh executor cells land in one JSON file:
    a warm-cache re-run merges its (identical) records over the stored
    ones, a partial re-run replaces exactly the cells that changed.

    Existing records keep their position; a new record with a matching
    ``key`` replaces the old one in place, unmatched new records are
    appended in input order.  Records lacking ``key`` are always
    appended (no identity to merge on).  A missing file, or one from a
    different ``experiment``, starts fresh.  Returns the merged record
    list (as written).
    """
    existing: List[Dict[str, Any]] = []
    if Path(path).exists():
        try:
            payload = load_records(path)
        except ReproError:
            payload = {}
        if payload.get("experiment") == experiment:
            existing = list(payload.get("records", []))

    merged = [dict(r) for r in existing]
    position = {
        r[key]: i for i, r in enumerate(merged) if isinstance(r, dict) and key in r
    }
    for rec in records:
        rec = _jsonable(rec)
        if isinstance(rec, dict) and key in rec and rec[key] in position:
            merged[position[rec[key]]] = rec
        else:
            if isinstance(rec, dict) and key in rec:
                position[rec[key]] = len(merged)
            merged.append(rec)
    save_records(path, merged, experiment, params)
    return merged


def compare_records(
    old: Dict[str, Any],
    new: Dict[str, Any],
    key: str,
    tolerance: float = 0.25,
) -> List[str]:
    """Report records whose ``key`` drifted by more than ``tolerance``
    (relative).  Records are matched positionally; a length mismatch is
    itself reported.  Used to spot regressions between stored runs."""
    drifts: List[str] = []
    olds, news = old.get("records", []), new.get("records", [])
    if len(olds) != len(news):
        drifts.append(
            f"record count changed: {len(olds)} -> {len(news)}"
        )
    for i, (a, b) in enumerate(zip(olds, news)):
        va, vb = a.get(key), b.get(key)
        if not isinstance(va, (int, float)) or not isinstance(vb, (int, float)):
            continue
        if va == 0:
            continue
        rel = abs(vb - va) / abs(va)
        if rel > tolerance:
            drifts.append(
                f"record {i}: {key} drifted {va} -> {vb} ({rel:.0%})"
            )
    return drifts
