"""Thread-safe wall-clock deadlines for CPU-bound work.

Historically the per-cell budget in
:mod:`repro.experiments.parallel` was enforced with ``SIGALRM`` —
which only the *main* thread may arm (``signal.signal`` raises
``ValueError`` anywhere else), so a ``cell_timeout`` passed from a
worker thread (exactly what the :mod:`repro.serve` daemon's job
workers do) was silently never enforced.  This module replaces the
alarm with a :class:`Watchdog`: a one-shot timer thread that, on
expiry, raises the requested exception *inside the watched thread* via
``PyThreadState_SetAsyncExc``.

Properties and limits:

* Works from any thread (main, daemon worker, forked pool worker) and
  on any platform — no signals involved.
* The exception is delivered at the next bytecode boundary, which
  interrupts pure-Python loops (all the simulation engines) promptly.
  A thread blocked inside a single long C call (``time.sleep(30)``,
  a big BLAS kernel) is only interrupted when the call returns — the
  budget still produces a timeout outcome, just late.  Code that
  wants interruptible waits should sleep in small increments.
* Arm/disarm is race-safe: :meth:`cancel` takes the same lock as the
  expiry callback, so after ``cancel()`` returns either the exception
  was already set (``cancel()`` returns ``True``) or it never will
  be.  Callers use the return value to absorb an in-flight exception
  deterministically (see :meth:`absorb`).
"""

from __future__ import annotations

import ctypes
import threading


class DeadlineExceeded(Exception):
    """Default exception a :class:`Watchdog` raises in the watched
    thread."""


def _async_raise(thread_ident: int, exc_type: type) -> int:
    """Schedule ``exc_type`` in the thread with ``thread_ident``;
    returns the number of thread states modified (0 = thread gone)."""
    res = ctypes.pythonapi.PyThreadState_SetAsyncExc(
        ctypes.c_ulong(thread_ident), ctypes.py_object(exc_type)
    )
    if res > 1:  # pragma: no cover — CPython contract: undo and bail
        ctypes.pythonapi.PyThreadState_SetAsyncExc(
            ctypes.c_ulong(thread_ident), None
        )
    return res


class Watchdog:
    """One-shot deadline for the *calling* thread.

    Usage (mirrors the old two-level ``SIGALRM`` structure — the outer
    ``except`` catches an expiry delivered while the inner handlers
    were already running)::

        dog = Watchdog(budget, exc_type=JobTimeout)
        try:
            try:
                dog.start()
                work()
            except JobTimeout:
                ...  # timed out mid-work
            finally:
                fired = dog.cancel()
        except JobTimeout:
            fired = True  # delivered during an except/finally clause
        if dog.absorb():
            ...  # timed out; any in-flight exception is consumed
    """

    def __init__(self, budget: float, exc_type: type = DeadlineExceeded):
        self.budget = float(budget)
        self.exc_type = exc_type
        self._target = threading.get_ident()
        self._lock = threading.Lock()
        self._fired = False
        self._cancelled = False
        self._caught = False
        self._timer = threading.Timer(self.budget, self._expire)
        self._timer.daemon = True

    # -- timer side ------------------------------------------------------
    def _expire(self) -> None:
        with self._lock:
            if self._cancelled:
                return
            self._fired = True
            _async_raise(self._target, self.exc_type)

    # -- watched-thread side ---------------------------------------------
    def start(self) -> "Watchdog":
        self._timer.start()
        return self

    @property
    def fired(self) -> bool:
        return self._fired

    def cancel(self) -> bool:
        """Disarm; returns True when the deadline already expired.
        After this returns False, the exception will never be raised."""
        with self._lock:
            self._cancelled = True
        self._timer.cancel()
        return self._fired

    def absorb(self, spin: int = 2_000_000) -> bool:
        """Consume a possibly in-flight async exception.

        Call from the watched thread after :meth:`cancel`, *outside*
        the guarded region.  When the deadline fired but the exception
        has not been caught yet (it is pending delivery at the next
        bytecode boundary), spin a bounded pure-Python loop under a
        ``try`` until it lands, so it cannot detonate later in an
        unrelated frame.  Returns True iff the deadline fired —
        callers treat that as the timeout verdict regardless of
        whether the work also happened to finish.
        """
        if not self._fired:
            return False
        if self._caught:
            return True
        try:
            for _ in range(spin):
                if self._caught:  # pragma: no cover — settled elsewhere
                    break
        except self.exc_type:
            pass
        self._caught = True
        return True

    def mark_caught(self) -> None:
        """Record that the expiry exception reached an ``except``
        clause, so :meth:`absorb` returns without spinning."""
        self._caught = True
