"""Per-subsystem code-version salts for incremental cache invalidation.

Until PR-9 one hand-bumped global (``repro.experiments.parallel
.CODE_SALT``) keyed every runtime cache: cached sweep cells, compiled
topology artifacts, and check replays all died together whenever *any*
semantics changed.  That made every engine tweak a cold start — a
one-line edit to ``spanner_advice.py`` purged flooding rows and every
64-693x-warm topology artifact with it.

This module replaces the hand-bumped constant with *derived* salts:

* the ``repro`` package is partitioned into **subsystems** by a
  declared longest-prefix map (:data:`SUBSYSTEMS`); a test asserts the
  partition is total, so a new module cannot silently float outside
  the invalidation story;
* every module's source is **normalized** (parsed to an AST, docstrings
  stripped, then ``ast.dump``-ed — comments and formatting vanish with
  the parse) and digested, so doc-only edits never invalidate anything;
* a subsystem's salt is a stable blake2b fold over its modules'
  ``(name, digest)`` pairs — any *code* edit inside the subsystem moves
  the salt, edits elsewhere do not;
* algorithm cells get finer granularity still:
  :func:`algorithm_salt` digests only the algorithm's *import closure*
  within the algorithms subsystem (plus the registry, which carries
  construction parameters), so a ``spanner_advice.py`` edit re-executes
  spanner-advice cells and leaves flooding cells warm.

Consumers pick the salts they actually depend on:

=====================  =============================================
cache                  salts in the key
=====================  =============================================
sweep cells            ``engine`` + ``graphs`` + per-algorithm
compiled topologies    ``graphs``
check replays          ``engine`` + ``check``
atlas entries          cell salts (+ ``check`` when controlled)
=====================  =============================================

The ``harness`` subsystem (executors, CLI, serve daemon, telemetry) is
deliberately in *no* cache key: orchestration code moves results
around but never changes what a cell computes — the bit-identical-rows
conformance suite is what enforces that claim.

Everything here is memoized per process and deliberately import-light:
salts are computed from *source text on disk*, never by importing the
measured modules, so hashing the world costs one directory walk and a
few milliseconds, once.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

#: Subsystem -> module-name prefixes (longest prefix wins).  Top-level
#: one-file modules are listed explicitly under ``harness`` so the
#: partition is total over the package; the completeness test in
#: ``tests/test_versioning.py`` fails the build when a new module
#: matches nothing.
SUBSYSTEMS: Dict[str, Tuple[str, ...]] = {
    # Event loops, node runtime, adversary, result/trace plumbing, and
    # the model layer (ports, knowledge, advice setup) cells run on.
    "engine": ("repro.sim", "repro.models"),
    # Workload builders, compiled-topology artifacts, spanners.
    "graphs": ("repro.graphs",),
    # Algorithm implementations + the advice oracles they query.
    "algorithms": ("repro.core", "repro.advice"),
    # Schedule-space exploration, worst-case search, replay artifacts;
    # lowerbounds feeds the class-G worlds the checker explores.
    "check": ("repro.check", "repro.lowerbounds"),
    # Stochastic adversary optimizers + the frontier atlas.  Search
    # strategy code *picks* candidates but never executes them, so this
    # salt joins no cell cache key; atlas entries instead fold the
    # salts of what the incumbent actually runs (see
    # :func:`atlas_salt_vector`).
    "opt": ("repro.opt",),
    # Orchestration: executors, CLI, serve daemon, observability,
    # analysis, notebooks.  Never part of a cache key.
    "harness": (
        "repro.experiments",
        "repro.serve",
        "repro.obs",
        "repro.analysis",
        "repro.apps",
        "repro.versioning",
        "repro.errors",
        "repro.deadline",
        "repro.__main__",
    ),
}

#: Modules whose digests join *every* algorithm salt but whose imports
#: are never traversed: the registry imports every algorithm module by
#: design, so expanding through it would collapse per-algorithm
#: granularity back to one subsystem-wide salt.  It still must be
#: digested everywhere — it carries construction parameters (e.g.
#: ``lambda: SpannerAdvice(k=3, method="greedy")``).
ALGORITHM_BARRIER_MODULES: Tuple[str, ...] = (
    "repro.core.registry",
    "repro.core",
    "repro.advice",
)


def subsystem_of(module: str) -> str:
    """Map a module name to its subsystem (longest prefix wins).

    Raises ``KeyError`` for a module no prefix covers — the
    completeness test turns that into a build failure.  The bare
    package ``__init__`` is harness by fiat; there is deliberately no
    ``repro.*`` catch-all, so a brand-new top-level module *fails*
    mapping until someone decides which caches its code can perturb.
    """
    if module == "repro":
        return "harness"
    best: Tuple[int, Optional[str]] = (-1, None)
    for name, prefixes in SUBSYSTEMS.items():
        for prefix in prefixes:
            if module == prefix or module.startswith(prefix + "."):
                if len(prefix) > best[0]:
                    best = (len(prefix), name)
    if best[1] is None:
        raise KeyError(
            f"module {module!r} maps to no subsystem; "
            "extend repro.versioning.SUBSYSTEMS"
        )
    return best[1]


# ----------------------------------------------------------------------
# Source normalization + digests
# ----------------------------------------------------------------------
def normalized_source(text: str) -> str:
    """Source with comments, whitespace, and docstrings erased.

    Parses to an AST (which drops comments and formatting by
    construction), removes every docstring expression, and dumps the
    tree without position attributes — so a doc-only edit yields the
    byte-identical normal form.  Text that does not parse (syntax
    error mid-edit) falls back to the raw text: a conservative digest
    beats an exception while the user is typing.
    """
    try:
        tree = ast.parse(text)
    except SyntaxError:
        return text
    for node in ast.walk(tree):
        if isinstance(
            node,
            (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
        ):
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                del body[0]
    return ast.dump(tree, include_attributes=False)


def source_digest(text: str) -> str:
    """Stable digest of one module's normalized source."""
    norm = normalized_source(text)
    return hashlib.blake2b(
        norm.encode("utf-8"), digest_size=16
    ).hexdigest()


def _fold(parts: Iterable[Tuple[str, str]]) -> str:
    """Fold sorted ``(module, digest)`` pairs into one salt."""
    blob = json.dumps(sorted(parts), separators=(",", ":"))
    return hashlib.blake2b(blob.encode("utf-8"), digest_size=8).hexdigest()


# ----------------------------------------------------------------------
# Package walk (memoized)
# ----------------------------------------------------------------------
def package_root() -> Path:
    """Directory of the installed ``repro`` package."""
    import repro

    return Path(repro.__file__).resolve().parent


def _module_name(root: Path, path: Path) -> str:
    rel = path.relative_to(root).with_suffix("")
    parts = ["repro", *rel.parts]
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


_MODULE_INDEX: Optional[Dict[str, Path]] = None
_DIGESTS: Dict[str, str] = {}
_SUBSYSTEM_SALTS: Dict[str, str] = {}
_ALGORITHM_SALTS: Dict[str, str] = {}


def module_index(root: Optional[Path] = None) -> Dict[str, Path]:
    """Every ``repro.*`` module name -> source path (memoized for the
    default root)."""
    global _MODULE_INDEX
    if root is None:
        if _MODULE_INDEX is None:
            base = package_root()
            _MODULE_INDEX = {
                _module_name(base, p): p for p in sorted(base.rglob("*.py"))
            }
        return _MODULE_INDEX
    return {_module_name(root, p): p for p in sorted(root.rglob("*.py"))}


def module_digest(module: str) -> str:
    """Digest of one module's on-disk source (memoized)."""
    digest = _DIGESTS.get(module)
    if digest is None:
        path = module_index()[module]
        digest = source_digest(path.read_text(encoding="utf-8"))
        _DIGESTS[module] = digest
    return digest


def clear_salt_cache() -> None:
    """Forget every memoized digest/salt (tests edit sources on disk)."""
    global _MODULE_INDEX
    _MODULE_INDEX = None
    _DIGESTS.clear()
    _SUBSYSTEM_SALTS.clear()
    _ALGORITHM_SALTS.clear()


# ----------------------------------------------------------------------
# Subsystem salts
# ----------------------------------------------------------------------
def subsystem_modules(name: str) -> List[str]:
    """All package modules belonging to one subsystem."""
    if name not in SUBSYSTEMS:
        raise KeyError(
            f"unknown subsystem {name!r}; known: {sorted(SUBSYSTEMS)}"
        )
    return [m for m in module_index() if subsystem_of(m) == name]


def subsystem_salt(name: str) -> str:
    """The derived code-version salt for one subsystem (memoized)."""
    salt = _SUBSYSTEM_SALTS.get(name)
    if salt is None:
        salt = _fold(
            (m, module_digest(m)) for m in subsystem_modules(name)
        )
        _SUBSYSTEM_SALTS[name] = salt
    return salt


def salt_vector() -> Dict[str, str]:
    """Every subsystem's current salt — the diagnostics vector
    ``repro cache info`` prints."""
    return {name: subsystem_salt(name) for name in SUBSYSTEMS}


def code_salt() -> str:
    """Deprecated whole-world fold of every subsystem salt.

    The successor of the hand-bumped ``CODE_SALT`` constant, kept so
    anything that wants "did *any* semantics change?" still has one
    string to compare.  New code should depend on the narrowest salts
    that cover it instead.
    """
    return "repro-cells-" + _fold(sorted(salt_vector().items()))


# ----------------------------------------------------------------------
# Per-algorithm salts (import closure within the algorithms subsystem)
# ----------------------------------------------------------------------
def module_imports(source: str, module: str) -> Set[str]:
    """Module names a source text imports (absolute and relative,
    top-level and function-local alike), as candidate names — callers
    intersect with the real module index."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return set()
    package = module.rsplit(".", 1)[0] if "." in module else module
    found: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                found.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                parts = package.split(".")
                if node.level > 1:
                    parts = parts[: len(parts) - (node.level - 1)]
                base = ".".join(parts)
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            else:
                base = node.module or ""
            if base:
                found.add(base)
                # ``from pkg import mod`` names submodules, not attrs;
                # keep both candidates and let the index filter.
                for alias in node.names:
                    found.add(f"{base}.{alias.name}")
    return found


def import_closure(
    start: str,
    sources: Mapping[str, str],
    *,
    barriers: Iterable[str] = (),
) -> Set[str]:
    """Transitive import closure of ``start`` restricted to the modules
    in ``sources``.  ``barriers`` are included when reached but never
    expanded through (the registry pattern).  Pure over the given
    mapping, so tests drive it with synthetic packages."""
    barriers = set(barriers)
    seen: Set[str] = set()
    frontier = [start]
    while frontier:
        mod = frontier.pop()
        if mod in seen or mod not in sources:
            continue
        seen.add(mod)
        if mod in barriers:
            continue
        for cand in module_imports(sources[mod], mod):
            if cand in sources and cand not in seen:
                frontier.append(cand)
    return seen


def _algorithm_module(algorithm: str) -> Optional[str]:
    """The module defining an algorithm, or None when it cannot be
    pinned to one inside the algorithms subsystem."""
    if ":" in algorithm:
        # Dotted-path cells (tests' fault injectors); only repro-internal
        # paths get fine granularity.
        module = algorithm.split(":", 1)[0]
        return module if module in module_index() else None
    try:
        from repro.core.registry import get_factory

        factory = get_factory(algorithm)
    except KeyError:
        return None
    module = getattr(factory, "__module__", None)
    if not isinstance(factory, type):
        # Lambda factories live in the registry module; the instance's
        # class names the real implementation module.
        try:
            module = type(factory()).__module__
        except Exception:  # pragma: no cover - exotic factory
            pass
    return module if module and module in module_index() else None


def algorithm_salt(algorithm: str) -> str:
    """Salt covering exactly the code one algorithm's cells execute
    inside the algorithms subsystem: the defining module's import
    closure (restricted to ``repro.core.* + repro.advice.*``) plus the
    registry barrier modules.  Algorithms that cannot be pinned to a
    module fall back to the whole-subsystem salt — always correct, just
    coarser."""
    salt = _ALGORITHM_SALTS.get(algorithm)
    if salt is not None:
        return salt
    module = _algorithm_module(algorithm)
    if module is None or subsystem_of(module) != "algorithms":
        salt = subsystem_salt("algorithms")
    else:
        index = module_index()
        algo_sources = {
            m: index[m].read_text(encoding="utf-8")
            for m in subsystem_modules("algorithms")
        }
        members = import_closure(
            module, algo_sources, barriers=ALGORITHM_BARRIER_MODULES
        )
        members.update(
            b for b in ALGORITHM_BARRIER_MODULES if b in algo_sources
        )
        salt = _fold((m, module_digest(m)) for m in sorted(members))
    _ALGORITHM_SALTS[algorithm] = salt
    return salt


def cell_salt_vector(algorithm: str) -> Dict[str, str]:
    """The salts one sweep cell's cache key depends on."""
    return {
        "engine": subsystem_salt("engine"),
        "graphs": subsystem_salt("graphs"),
        "algorithms": algorithm_salt(algorithm),
    }


def replay_salt_vector() -> Dict[str, str]:
    """The salts a check replay artifact depends on."""
    return {
        "engine": subsystem_salt("engine"),
        "check": subsystem_salt("check"),
    }


def atlas_salt_vector(algorithm: str, *, controlled: bool = False) -> Dict[str, str]:
    """The salts a frontier-atlas entry depends on.

    An atlas incumbent is a cell result: engine + graphs + the
    algorithm's import closure decide its score.  Choice-prefix
    incumbents additionally execute the controlled loop in
    ``repro.check``, so ``controlled=True`` folds the check salt in.
    The ``opt`` salt is deliberately absent: optimizers choose which
    schedules to *try*, but an entry records only what a schedule
    *scored* — re-tuning the search must never stale a frontier the
    executor can still reproduce bit-identically.
    """
    salts = cell_salt_vector(algorithm)
    if controlled:
        salts["check"] = subsystem_salt("check")
    return salts
