"""Stochastic schedule optimizers behind one ask/tell protocol.

Three search strategies over a :class:`~repro.opt.genomes.GenomeSpace`:

* :class:`CrossEntropyMethod` — sample a population from a parametric
  distribution, fit the distribution to the elite fraction, repeat.
* :class:`SimulatedAnnealing` — independent Metropolis chains with a
  geometric temperature schedule (several chains so one ``tell`` still
  consumes a whole population of evaluations).
* :class:`PopulationSearch` — tournament selection + crossover +
  mutation with elitism.

The ask/tell split keeps evaluation out of the optimizer entirely:
``ask(count)`` proposes genomes, the caller scores them however it
likes (here: as executor cells — :mod:`repro.opt.evaluate`), and
``tell`` feeds the scores back.  Scores are **maximized** (the
adversary wants the objective as high as possible); a ``None`` score
marks a failed evaluation and is treated as ``-inf``.

Every optimizer is deterministic under its ``seed``: all randomness
flows through one ``random.Random``, and ``tell`` breaks score ties by
ask-order so incumbents are stable across backends.
"""

from __future__ import annotations

import math
import random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.opt.genomes import Genome, GenomeSpace

NEG_INF = float("-inf")


class Optimizer:
    """Base ask/tell optimizer over one genome space."""

    name = "?"

    def __init__(self, space: GenomeSpace, seed: int = 0):
        self.space = space
        self.rng = random.Random(seed)
        self.best_genome: Optional[Genome] = None
        self.best_score: float = NEG_INF
        self.generation = 0

    def ask(self, count: int) -> List[Genome]:
        """Propose ``count`` genomes to evaluate."""
        raise NotImplementedError

    def tell(
        self, scored: Sequence[Tuple[Genome, Optional[float]]]
    ) -> None:
        """Feed back ``(genome, score)`` pairs from the last ask."""
        raise NotImplementedError

    # -- shared helpers --------------------------------------------------
    def _ranked(
        self, scored: Sequence[Tuple[Genome, Optional[float]]]
    ) -> List[Tuple[float, int, Genome]]:
        """Scored pairs as ``(score, ask_index, genome)``, best first.
        The ask index breaks ties deterministically."""
        rows = [
            (NEG_INF if s is None else float(s), i, g)
            for i, (g, s) in enumerate(scored)
        ]
        rows.sort(key=lambda r: (-r[0], r[1]))
        return rows

    def _update_best(
        self, ranked: Sequence[Tuple[float, int, Genome]]
    ) -> None:
        if ranked and ranked[0][0] > self.best_score:
            self.best_score = ranked[0][0]
            self.best_genome = ranked[0][2]
        self.generation += 1


class CrossEntropyMethod(Optimizer):
    """CEM: fit the space's parametric model to the elite fraction."""

    name = "cem"

    def __init__(
        self,
        space: GenomeSpace,
        seed: int = 0,
        elite_frac: float = 0.25,
    ):
        super().__init__(space, seed)
        if not 0 < elite_frac <= 1:
            raise ReproError("elite_frac must be in (0, 1]")
        self.elite_frac = elite_frac
        self._params: Any = None

    def ask(self, count: int) -> List[Genome]:
        if self._params is None:
            return [self.space.sample(self.rng) for _ in range(count)]
        out = [
            self.space.sample_fit(self._params, self.rng)
            for _ in range(count - 1)
        ]
        # Keep the incumbent in every generation (elitism).
        out.append(
            self.best_genome
            if self.best_genome is not None
            else self.space.sample(self.rng)
        )
        return out

    def tell(self, scored) -> None:
        ranked = self._ranked(scored)
        self._update_best(ranked)
        survivors = [r for r in ranked if r[0] > NEG_INF]
        if not survivors:
            return  # resample from scratch next ask
        n_elite = max(1, int(len(survivors) * self.elite_frac))
        self._params = self.space.fit(
            [g for _, _, g in survivors[:n_elite]]
        )


class SimulatedAnnealing(Optimizer):
    """Parallel Metropolis chains over the genome space."""

    name = "sa"

    def __init__(
        self,
        space: GenomeSpace,
        seed: int = 0,
        chains: int = 4,
        temperature: float = 1.0,
        cooling: float = 0.9,
    ):
        super().__init__(space, seed)
        if chains < 1:
            raise ReproError("chains must be >= 1")
        self.chains = chains
        self.temperature = temperature
        self.cooling = cooling
        self._current: List[Tuple[Genome, float]] = []
        self._proposal_chain: List[int] = []

    def ask(self, count: int) -> List[Genome]:
        if not self._current:
            self._proposal_chain = list(range(count))
            return [self.space.sample(self.rng) for _ in range(count)]
        proposals: List[Genome] = []
        self._proposal_chain = []
        for i in range(count):
            chain = i % len(self._current)
            self._proposal_chain.append(chain)
            proposals.append(
                self.space.mutate(self._current[chain][0], self.rng)
            )
        return proposals

    def tell(self, scored) -> None:
        ranked = self._ranked(scored)
        self._update_best(ranked)
        scores = [
            NEG_INF if s is None else float(s) for _, s in scored
        ]
        if not self._current or len(self._current) != self.chains:
            # First generation: the best `chains` proposals seed the
            # chains (falling back to resampling for failed slots).
            seeds = [r for r in ranked if r[0] > NEG_INF][: self.chains]
            while len(seeds) < self.chains:
                seeds.append((NEG_INF, -1, self.space.sample(self.rng)))
            self._current = [(g, s) for s, _, g in seeds]
            return
        for i, (genome, _) in enumerate(scored):
            score = scores[i]
            chain = self._proposal_chain[i]
            cur_score = self._current[chain][1]
            delta = score - cur_score
            accept = delta >= 0 or (
                score > NEG_INF
                and self.temperature > 0
                and self.rng.random() < math.exp(
                    delta / self.temperature
                )
            )
            if accept:
                self._current[chain] = (genome, score)
        self.temperature *= self.cooling


class PopulationSearch(Optimizer):
    """Genetic search: tournament parents, crossover, mutation,
    elitism."""

    name = "pop"

    def __init__(
        self,
        space: GenomeSpace,
        seed: int = 0,
        tournament: int = 3,
        crossover_rate: float = 0.7,
        elite: int = 2,
    ):
        super().__init__(space, seed)
        self.tournament = max(2, tournament)
        self.crossover_rate = crossover_rate
        self.elite = elite
        self._pool: List[Tuple[Genome, float]] = []

    def _pick_parent(self) -> Genome:
        contenders = [
            self._pool[self.rng.randrange(len(self._pool))]
            for _ in range(min(self.tournament, len(self._pool)))
        ]
        return max(contenders, key=lambda t: t[1])[0]

    def ask(self, count: int) -> List[Genome]:
        if not self._pool:
            return [self.space.sample(self.rng) for _ in range(count)]
        out: List[Genome] = []
        elites = [g for g, _ in self._pool[: self.elite]]
        out.extend(elites[:count])
        while len(out) < count:
            if self.rng.random() < self.crossover_rate:
                child = self.space.crossover(
                    self._pick_parent(), self._pick_parent(), self.rng
                )
            else:
                child = self._pick_parent()
            out.append(self.space.mutate(child, self.rng))
        return out

    def tell(self, scored) -> None:
        ranked = self._ranked(scored)
        self._update_best(ranked)
        survivors = [
            (g, s) for s, _, g in ranked if s > NEG_INF
        ]
        if survivors:
            self._pool = survivors


#: name -> factory(space, seed, **knobs)
OPTIMIZERS: Dict[str, Callable[..., Optimizer]] = {
    "cem": CrossEntropyMethod,
    "sa": SimulatedAnnealing,
    "pop": PopulationSearch,
}


def make_optimizer(
    name: str, space: GenomeSpace, seed: int = 0, **knobs: Any
) -> Optimizer:
    """Build one optimizer by registry name."""
    try:
        factory = OPTIMIZERS[name]
    except KeyError:
        raise ReproError(
            f"unknown optimizer {name!r}; known: {sorted(OPTIMIZERS)}"
        ) from None
    return factory(space, seed=seed, **knobs)
