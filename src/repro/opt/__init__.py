"""repro.opt — stochastic adversary optimizers + the frontier atlas.

Search over adversarial schedules at sizes the exhaustive checker and
the beam search cannot reach: genome parameterizations
(:mod:`~repro.opt.genomes`), ask/tell optimizers
(:mod:`~repro.opt.optimizers`), executor-cell evaluation
(:mod:`~repro.opt.evaluate`), and the committed best-known-schedule
atlas (:mod:`~repro.opt.atlas`).  See the "Stochastic search & the
frontier atlas" section of ``docs/modelcheck.md``.
"""

from repro.opt.atlas import (
    ATLAS_KIND,
    ATLAS_VERSION,
    DEFAULT_ATLAS_PATH,
    DEFAULT_ATLAS_REPLAY_DIR,
    atlas_artifact_report,
    check_atlas,
    empty_atlas,
    entry_is_stale,
    entry_key,
    improve_atlas,
    load_atlas,
    merge_entry,
    plain_replay_spec,
    purge_atlas_artifacts,
    replay_entry,
    save_atlas,
)
from repro.opt.evaluate import (
    CellEvaluator,
    OptimizeOutcome,
    check_world_spec,
    controlled_log_for,
    optimize,
    workload_spec,
)
from repro.opt.genomes import (
    ChoicePrefixGenome,
    ChoicePrefixSpace,
    DelayVectorGenome,
    DelayVectorSpace,
    Genome,
    GenomeSpace,
    genome_from_dict,
)
from repro.opt.optimizers import (
    OPTIMIZERS,
    CrossEntropyMethod,
    Optimizer,
    PopulationSearch,
    SimulatedAnnealing,
    make_optimizer,
)

__all__ = [
    "ATLAS_KIND",
    "ATLAS_VERSION",
    "DEFAULT_ATLAS_PATH",
    "DEFAULT_ATLAS_REPLAY_DIR",
    "atlas_artifact_report",
    "check_atlas",
    "empty_atlas",
    "entry_is_stale",
    "entry_key",
    "improve_atlas",
    "load_atlas",
    "merge_entry",
    "plain_replay_spec",
    "purge_atlas_artifacts",
    "replay_entry",
    "save_atlas",
    "CellEvaluator",
    "OptimizeOutcome",
    "check_world_spec",
    "controlled_log_for",
    "optimize",
    "workload_spec",
    "ChoicePrefixGenome",
    "ChoicePrefixSpace",
    "DelayVectorGenome",
    "DelayVectorSpace",
    "Genome",
    "GenomeSpace",
    "genome_from_dict",
    "OPTIMIZERS",
    "CrossEntropyMethod",
    "Optimizer",
    "PopulationSearch",
    "SimulatedAnnealing",
    "make_optimizer",
]
