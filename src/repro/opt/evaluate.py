"""Candidate evaluation: genome populations as executor cells.

Each generation's population maps onto
:class:`~repro.experiments.parallel.CellSpec` rows (one per *distinct*
genome — duplicates within a generation are evaluated once and fan
back out) and runs through a
:class:`~repro.experiments.parallel.ParallelSweepExecutor`.  That buys
candidate evaluation everything cells already have: any execution
backend (``serial``/``fork``/``steal``), on-disk result caching (a
re-run of a converged search is all cache hits), crash isolation and
retry, telemetry, and metrics.

The base spec fixes everything the genome does not: workload, schedule,
knowledge, bandwidth, and — critically — the ``(setup_seed,
exec_seed)`` pair, so every candidate and every random-baseline trial
face the *identical* world and differ only in the adversary's delay
choices.  :func:`check_world_spec` builds base specs for the checker's
named small topologies (bit-compatible with
:func:`repro.check.worlds.build_check_world`); :func:`workload_spec`
covers the Table-1 workload registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.check.worstcase import _score as score_of  # noqa: F401
from repro.errors import ReproError
from repro.experiments.parallel import CellSpec, cell_key
from repro.obs.metrics import get_registry
from repro.obs.recorder import NULL_RECORDER
from repro.opt.genomes import Genome
from repro.opt.optimizers import Optimizer


def _algo_instance(algorithm: str):
    from repro.core.registry import get_factory

    return get_factory(algorithm)()


def check_world_spec(
    algorithm: str,
    n: int,
    *,
    graph: str = "star",
    awake: int = 1,
    stagger: float = 0.0,
    degree: float = 3.0,
    seed: int = 0,
) -> CellSpec:
    """A base spec evaluating ``algorithm`` on one checker world.

    Mirrors :func:`repro.check.worlds.build_check_world` exactly —
    same graph constructor, same ordered woken sample
    (``random.Random(seed + 1)`` over repr-sorted vertices), same
    ``setup_seed = seed + 2`` — and pins ``exec_seed = seed`` to match
    the worst-case search's ``run_wakeup(seed=seed)``, so cell scores
    are directly comparable with beam/baseline scores at the same
    seed.
    """
    algo = _algo_instance(algorithm)
    return CellSpec(
        algorithm=algorithm,
        n=n,
        seed=seed,
        engine="async",
        knowledge="KT1" if algo.requires_kt1 else "KT0",
        bandwidth="CONGEST" if algo.congest_safe else "LOCAL",
        workload={
            "kind": "check_world",
            "graph": graph,
            "awake": awake,
            "degree": degree,
            "seed": seed,
        },
        schedule={"kind": "staggered", "stagger": stagger},
        require_all_awake=False,
        setup_seed=seed + 2,
        exec_seed=seed,
    )


def workload_spec(
    algorithm: str,
    workload: Dict[str, Any],
    n: int,
    *,
    seed: int = 0,
) -> CellSpec:
    """A base spec evaluating ``algorithm`` on one registry workload
    (Table-1 rows).  Seeding follows the check-world convention
    (``setup_seed = seed + 2``, ``exec_seed = seed``) so optimizer
    candidates and baseline trials share one world per seed."""
    algo = _algo_instance(algorithm)
    return CellSpec(
        algorithm=algorithm,
        n=n,
        seed=seed,
        engine="async",
        knowledge="KT1" if algo.requires_kt1 else "KT0",
        bandwidth="CONGEST" if algo.congest_safe else "LOCAL",
        workload=dict(workload),
        schedule={"kind": "all_at_once"},
        require_all_awake=False,
        setup_seed=seed + 2,
        exec_seed=seed,
    )


class CellEvaluator:
    """Scores genome populations through the parallel executor.

    Distinct genomes only: within one generation, duplicate genomes
    collapse onto one cell (the executor's on-disk cache already
    dedups *across* generations and runs).  A failed cell scores
    ``None`` — optimizers treat that as ``-inf``.
    """

    def __init__(self, executor, base_spec: CellSpec, objective: str = "time"):
        self.executor = executor
        self.base_spec = base_spec
        self.objective = objective
        self.evaluations = 0  # cells actually dispatched
        self.dedup_hits = 0  # in-generation duplicate genomes

    def spec_for(self, genome: Genome) -> CellSpec:
        return replace(self.base_spec, **genome.cell_overrides())

    def evaluate(
        self, genomes: Sequence[Genome]
    ) -> List[Optional[float]]:
        unique: Dict[str, CellSpec] = {}
        keys: List[str] = []
        for genome in genomes:
            spec = self.spec_for(genome)
            key = cell_key(spec)
            keys.append(key)
            if key in unique:
                self.dedup_hits += 1
            else:
                unique[key] = spec
        order = list(unique)
        outcomes = self.executor.run([unique[k] for k in order])
        self.evaluations += len(order)
        by_key = dict(zip(order, outcomes))
        scores: List[Optional[float]] = []
        for key in keys:
            out = by_key[key]
            scores.append(
                score_of(self.objective, out.result)
                if out.result is not None
                else None
            )
        return scores


@dataclass
class OptimizeOutcome:
    """One optimizer's search result on one (workload, objective, n)."""

    optimizer: str
    objective: str
    best_genome: Optional[Genome]
    best_score: float
    generations: int
    evaluations: int
    dedup_hits: int
    history: List[Dict[str, float]] = field(default_factory=list)


def optimize(
    optimizer: Optimizer,
    evaluator: CellEvaluator,
    *,
    generations: int = 8,
    population: int = 16,
    recorder=None,
) -> OptimizeOutcome:
    """Run one ask/evaluate/tell loop to completion.

    Emits one ``opt_generation`` telemetry event per generation and
    bumps the ``repro_opt_*`` metric families (generation count,
    evaluation count, incumbent score gauge).
    """
    if generations < 1 or population < 1:
        raise ReproError("optimize needs generations, population >= 1")
    rec = recorder if recorder is not None else NULL_RECORDER
    mreg = get_registry()
    history: List[Dict[str, float]] = []
    for gen in range(generations):
        genomes = optimizer.ask(population)
        scores = evaluator.evaluate(genomes)
        optimizer.tell(list(zip(genomes, scores)))
        finite = [s for s in scores if s is not None]
        gen_best = max(finite) if finite else float("-inf")
        history.append(
            {
                "generation": gen,
                "best": gen_best,
                "incumbent": optimizer.best_score,
            }
        )
        if mreg.enabled:
            mreg.counter(
                "repro_opt_generations_total", optimizer=optimizer.name
            ).inc()
            mreg.counter(
                "repro_opt_evaluations_total", optimizer=optimizer.name
            ).inc(len(genomes))
            mreg.gauge(
                "repro_opt_best_score",
                optimizer=optimizer.name,
                objective=evaluator.objective,
            ).set(optimizer.best_score)
        if rec.enabled:
            rec.emit(
                "opt_generation",
                optimizer=optimizer.name,
                generation=gen,
                population=len(genomes),
                best=gen_best,
                incumbent=optimizer.best_score,
            )
    return OptimizeOutcome(
        optimizer=optimizer.name,
        objective=evaluator.objective,
        best_genome=optimizer.best_genome,
        best_score=optimizer.best_score,
        generations=generations,
        evaluations=evaluator.evaluations,
        dedup_hits=evaluator.dedup_hits,
        history=history,
    )


def controlled_log_for(spec: CellSpec) -> Tuple[Any, Any]:
    """Re-run one controlled cell inline, returning ``(result, log)``.

    Executor cells ship back lean scalars only; the atlas needs the
    controlled run's :class:`~repro.check.controller.ScheduleLog` (its
    per-seq delay map is what replays through the plain engine), so
    the incumbent is re-executed here with a live controller.  Builds
    the world through the same spec resolvers as
    :func:`repro.experiments.parallel._execute_cell`, so the run is
    the cell, bit for bit.
    """
    from repro.experiments.parallel import (
        _build_algorithm,
        _build_controller,
        _build_delay,
        _build_schedule,
    )
    from repro.graphs.compile import compiled_topology
    from repro.models.knowledge import Knowledge, make_setup
    from repro.sim.adversary import Adversary
    from repro.sim.runner import run_wakeup

    if spec.controller is None:
        raise ReproError("controlled_log_for needs a controlled spec")
    topo = compiled_topology(spec.workload, spec.n)
    graph = topo.graph()
    awake = topo.awake_vertices()
    setup = make_setup(
        graph,
        knowledge=Knowledge[spec.knowledge],
        bandwidth=spec.bandwidth,
        seed=spec.setup_seed if spec.setup_seed is not None else spec.run_seed,
        compiled=topo,
    )
    adversary = Adversary(
        _build_schedule(spec.schedule, graph, awake),
        _build_delay(spec.delay),
    )
    controller = _build_controller(spec.controller)
    result = run_wakeup(
        setup,
        _build_algorithm(spec.algorithm, spec.algo_params),
        adversary,
        engine=spec.engine,
        seed=(
            spec.exec_seed
            if spec.exec_seed is not None
            else spec.run_seed + 1
        ),
        require_all_awake=spec.require_all_awake,
        max_events=spec.max_events,
        controller=controller,
    )
    return result, controller.log
