"""Schedule genomes: the search spaces the adversary optimizers walk.

A *genome* is a plain-data parameterization of one adversarial
schedule.  Two kinds, one protocol:

* :class:`DelayVectorGenome` — a vector of delays in ``(lo, 1]``
  applied by global send index (:class:`repro.sim.adversary
  .VectorDelay`).  Scales to n in the hundreds: the vector length is a
  search knob, not a function of the run length, and replaying the
  vector through the plain :class:`~repro.sim.async_engine.AsyncEngine`
  reproduces the execution bit-identically with no controller in the
  loop.
* :class:`ChoicePrefixGenome` — an exact choice sequence for the
  controlled scheduler (:class:`repro.check.controller
  .ReplayController`, lenient mode), the same representation the beam
  search emits.  Exhaustive in expressive power but only tractable at
  small n; incumbents replay through the plain engine via the recorded
  per-seq delay map (:class:`~repro.check.controller.ReplayDelay`).

Each genome kind pairs with a *space* that knows how to sample, mutate,
and cross genomes, and how to fit/sample a parametric distribution over
them (the cross-entropy method's model).  Spaces carry every fixed
hyperparameter (vector length, bounds, prefix horizon, laziness), so a
genome serializes to a small dict and rebuilds via
:func:`genome_from_dict`.

Genomes never execute anything themselves: :meth:`Genome
.cell_overrides` maps a genome onto :class:`~repro.experiments
.parallel.CellSpec` fields, and the executor does the rest — which is
why the ``opt`` subsystem salt joins no cache key (see
:func:`repro.versioning.atlas_salt_vector`).
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import ReproError

#: Delay floor for vector genomes; matches UniformRandomDelay's default
#: ``lo`` so optimized schedules search the same legality envelope the
#: random baseline samples.
DEFAULT_LO = 0.05


@dataclass(frozen=True)
class Genome:
    """Base genome: plain data, hashable, executor-ready.

    Subclasses define ``kind`` (the serialization discriminator),
    :meth:`cell_overrides`, and whether their evaluation is
    *controlled* (executes the check subsystem's scheduling loop, which
    decides the salts an atlas entry folds in).
    """

    kind = "?"
    controlled = False

    def cell_overrides(self) -> Dict[str, Any]:
        """CellSpec field overrides that make a cell evaluate this
        genome (``dataclasses.replace(base_spec, **overrides)``)."""
        raise NotImplementedError

    def as_dict(self) -> Dict[str, Any]:
        raise NotImplementedError

    def key(self) -> str:
        """Content digest identifying this genome (dedup, atlas)."""
        blob = json.dumps(
            self.as_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class DelayVectorGenome(Genome):
    """Delays indexed by global send order, cycled past the end."""

    values: Tuple[float, ...]

    kind = "delay_vector"
    controlled = False

    def cell_overrides(self) -> Dict[str, Any]:
        return {
            "delay": {"kind": "vector", "values": list(self.values)},
            "controller": None,
        }

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "values": list(self.values)}


@dataclass(frozen=True)
class ChoicePrefixGenome(Genome):
    """A lenient-replay choice sequence for the controlled scheduler.

    Lenient semantics (out-of-range or exhausted choices fall back to
    the canonical event) make *every* integer sequence a legal genome —
    mutation and crossover never have to repair anything.
    """

    choices: Tuple[int, ...]
    laziness: float = 0.0

    kind = "choice_prefix"
    controlled = True

    def cell_overrides(self) -> Dict[str, Any]:
        return {
            "delay": {"kind": "unit"},
            "controller": {
                "kind": "replay",
                "choices": list(self.choices),
                "laziness": self.laziness,
            },
        }

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "choices": list(self.choices),
            "laziness": self.laziness,
        }


def genome_from_dict(data: Dict[str, Any]) -> Genome:
    """Rebuild a genome from its :meth:`Genome.as_dict` form."""
    kind = data.get("kind")
    if kind == "delay_vector":
        return DelayVectorGenome(tuple(float(v) for v in data["values"]))
    if kind == "choice_prefix":
        return ChoicePrefixGenome(
            tuple(int(c) for c in data["choices"]),
            laziness=float(data.get("laziness", 0.0)),
        )
    raise ReproError(f"unknown genome kind {kind!r}")


# ----------------------------------------------------------------------
# Spaces
# ----------------------------------------------------------------------
class GenomeSpace:
    """Sampling/mutation/crossover over one genome kind, plus the
    fit/sample pair the cross-entropy method models distributions
    with.  All randomness comes through the caller's ``random.Random``
    so optimizers stay deterministic under their seed."""

    def sample(self, rng: random.Random) -> Genome:
        raise NotImplementedError

    def mutate(self, genome: Genome, rng: random.Random) -> Genome:
        raise NotImplementedError

    def crossover(
        self, a: Genome, b: Genome, rng: random.Random
    ) -> Genome:
        raise NotImplementedError

    def fit(self, elites: Sequence[Genome]) -> Any:
        """Distribution parameters fitted to an elite set."""
        raise NotImplementedError

    def sample_fit(self, params: Any, rng: random.Random) -> Genome:
        """Draw one genome from fitted parameters."""
        raise NotImplementedError


class DelayVectorSpace(GenomeSpace):
    """Vectors of ``length`` delays in ``(lo, 1]``.

    The CEM model is an independent truncated Gaussian per coordinate;
    ``min_std`` keeps the search from collapsing before convergence.
    """

    def __init__(
        self,
        length: int = 32,
        lo: float = DEFAULT_LO,
        mutation_scale: float = 0.15,
        min_std: float = 0.02,
    ):
        if length < 1:
            raise ReproError("DelayVectorSpace needs length >= 1")
        if not 0 < lo < 1:
            raise ReproError("lo must be in (0, 1)")
        self.length = length
        self.lo = lo
        self.mutation_scale = mutation_scale
        self.min_std = min_std

    def _clip(self, v: float) -> float:
        return min(1.0, max(self.lo, v))

    def sample(self, rng: random.Random) -> DelayVectorGenome:
        return DelayVectorGenome(
            tuple(
                self._clip(rng.uniform(self.lo, 1.0))
                for _ in range(self.length)
            )
        )

    def mutate(self, genome: Genome, rng: random.Random) -> Genome:
        values = list(genome.values)
        # Perturb a random quarter of the coordinates (at least one).
        k = min(len(values), max(1, len(values) // 4))
        for i in rng.sample(range(len(values)), k):
            values[i] = self._clip(
                values[i] + rng.gauss(0.0, self.mutation_scale)
            )
        return DelayVectorGenome(tuple(values))

    def crossover(
        self, a: Genome, b: Genome, rng: random.Random
    ) -> Genome:
        return DelayVectorGenome(
            tuple(
                av if rng.random() < 0.5 else bv
                for av, bv in zip(a.values, b.values)
            )
        )

    def fit(
        self, elites: Sequence[Genome]
    ) -> List[Tuple[float, float]]:
        params: List[Tuple[float, float]] = []
        for i in range(self.length):
            col = [g.values[i] for g in elites]
            mean = sum(col) / len(col)
            var = sum((v - mean) ** 2 for v in col) / len(col)
            params.append((mean, max(self.min_std, var ** 0.5)))
        return params

    def sample_fit(
        self, params: List[Tuple[float, float]], rng: random.Random
    ) -> DelayVectorGenome:
        return DelayVectorGenome(
            tuple(
                self._clip(rng.gauss(mean, std)) for mean, std in params
            )
        )


class ChoicePrefixSpace(GenomeSpace):
    """Integer sequences of length ``horizon`` with entries in
    ``[0, branch_cap)`` — lenient replay makes every sequence legal.

    The CEM model is an independent categorical per position.
    """

    def __init__(
        self,
        horizon: int = 16,
        branch_cap: int = 4,
        laziness: float = 0.0,
        min_p: float = 0.05,
    ):
        if horizon < 1 or branch_cap < 1:
            raise ReproError(
                "ChoicePrefixSpace needs horizon >= 1, branch_cap >= 1"
            )
        self.horizon = horizon
        self.branch_cap = branch_cap
        self.laziness = laziness
        self.min_p = min_p

    def sample(self, rng: random.Random) -> ChoicePrefixGenome:
        return ChoicePrefixGenome(
            tuple(
                rng.randrange(self.branch_cap)
                for _ in range(self.horizon)
            ),
            laziness=self.laziness,
        )

    def mutate(self, genome: Genome, rng: random.Random) -> Genome:
        choices = list(genome.choices)
        for i in rng.sample(
            range(len(choices)), max(1, len(choices) // 8)
        ):
            choices[i] = rng.randrange(self.branch_cap)
        return ChoicePrefixGenome(
            tuple(choices), laziness=genome.laziness
        )

    def crossover(
        self, a: Genome, b: Genome, rng: random.Random
    ) -> Genome:
        cut = rng.randrange(1, self.horizon) if self.horizon > 1 else 0
        return ChoicePrefixGenome(
            tuple(a.choices[:cut]) + tuple(b.choices[cut:]),
            laziness=a.laziness,
        )

    def fit(self, elites: Sequence[Genome]) -> List[List[float]]:
        params: List[List[float]] = []
        for i in range(self.horizon):
            counts = [self.min_p] * self.branch_cap
            for g in elites:
                counts[g.choices[i] % self.branch_cap] += 1.0
            total = sum(counts)
            params.append([c / total for c in counts])
        return params

    def sample_fit(
        self, params: List[List[float]], rng: random.Random
    ) -> ChoicePrefixGenome:
        choices = []
        for probs in params:
            r = rng.random()
            acc = 0.0
            idx = len(probs) - 1
            for j, p in enumerate(probs):
                acc += p
                if r < acc:
                    idx = j
                    break
            choices.append(idx)
        return ChoicePrefixGenome(
            tuple(choices), laziness=self.laziness
        )
