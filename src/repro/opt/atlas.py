"""The adversarial frontier atlas: committed, content-addressed,
monotone.

``ATLAS.json`` records, per ``(algorithm, workload, objective, n)``,
the worst (highest-objective) adversarial schedule any optimizer run
has ever found: the incumbent score, the genome that produced it, the
random-baseline comparison point, the salt vector the score was
computed under, and everything needed to replay the incumbent through
the *plain* engine bit-identically — the full evaluation
:class:`~repro.experiments.parallel.CellSpec` plus (for controlled
genomes) the recorded per-seq delay map.

Merging is **monotone best-wins**: a re-run can only raise a score,
never lower one, so the committed file is a high-water mark the same
way ``PERF_LEDGER.jsonl`` is for throughput.  Staleness is decided by
the entry's salt vector (:func:`repro.versioning.atlas_salt_vector`)
exactly like cell-cache envelopes: an engine or algorithm edit marks
the affected entries stale without invalidating the rest.

Runtime replay artifacts live under ``results/.atlas`` (one JSON per
entry, same content as the embedded replay data), covered by
``repro cache info`` / ``purge`` alongside cells, topologies, and
check replays.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import ReproError
from repro.experiments.parallel import CellSpec, run_cell
from repro.obs.metrics import get_registry
from repro.opt.genomes import Genome, genome_from_dict
from repro.versioning import atlas_salt_vector

ATLAS_VERSION = 1
ATLAS_KIND = "repro-opt-atlas"
DEFAULT_ATLAS_PATH = Path("ATLAS.json")

#: Runtime replay artifacts (one per entry); a sibling of the check
#: replay dir, reported and purged by ``repro cache``.
DEFAULT_ATLAS_REPLAY_DIR = Path("results") / ".atlas"

ATLAS_REPLAY_KIND = "repro-opt-replay"

#: Absolute time tolerance when comparing replayed makespans; messages
#: and bits must match exactly.  The controlled loop guarantees replay
#: reproduces event order, so this only absorbs float formatting
#: through JSON (repr round-trips, so in practice the diff is 0.0).
TIME_TOL = 1e-12


def entry_key(
    algorithm: str,
    workload: Mapping[str, Any],
    objective: str,
    n: int,
) -> str:
    """Content-addressed entry identity: a readable prefix plus a
    digest of the full (algorithm, workload, objective, n) identity,
    so distinct workload parameterizations of one kind never collide.
    """
    blob = json.dumps(
        {
            "algorithm": algorithm,
            "workload": dict(workload),
            "objective": objective,
            "n": int(n),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]
    kind = workload.get("kind", "?")
    return f"{algorithm}/{kind}/{objective}/n{n}/{digest}"


def empty_atlas() -> Dict[str, Any]:
    return {"version": ATLAS_VERSION, "kind": ATLAS_KIND, "entries": {}}


def load_atlas(
    path: Union[str, Path] = DEFAULT_ATLAS_PATH,
) -> Dict[str, Any]:
    """Read an atlas; a missing file is an empty atlas."""
    path = Path(path)
    if not path.exists():
        return empty_atlas()
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("kind") != ATLAS_KIND:
        raise ReproError(f"{path} is not a {ATLAS_KIND} file")
    if data.get("version") != ATLAS_VERSION:
        raise ReproError(
            f"{path}: unsupported atlas version {data.get('version')!r}"
        )
    return data


def save_atlas(
    atlas: Dict[str, Any],
    path: Union[str, Path] = DEFAULT_ATLAS_PATH,
) -> Path:
    """Write the atlas (pretty, key-sorted — a stable committed file)."""
    path = Path(path)
    if path.parent != Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(atlas, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def make_entry(
    *,
    spec: CellSpec,
    genome: Genome,
    objective: str,
    score: float,
    baseline: float,
    baseline_trials: int,
    optimizer: str,
    expect: Mapping[str, float],
    delays: Optional[Mapping[int, float]] = None,
    replay_path: Optional[str] = None,
) -> Dict[str, Any]:
    """Assemble one atlas entry.

    ``spec`` is the full evaluation cell (genome overrides applied);
    ``expect`` holds the incumbent's exact result scalars
    (``messages``/``bits``/``time``) — the replay contract.  Controlled
    genomes must pass the recorded ``delays`` map; plain delay-vector
    genomes replay from the spec alone.
    """
    if genome.controlled and delays is None:
        raise ReproError(
            "controlled genomes need their recorded delay map"
        )
    entry: Dict[str, Any] = {
        "algorithm": spec.algorithm,
        "workload": dict(spec.workload),
        "objective": objective,
        "n": spec.n,
        "seed": spec.seed,
        "score": float(score),
        "baseline": float(baseline),
        "baseline_trials": int(baseline_trials),
        "optimizer": optimizer,
        "genome": genome.as_dict(),
        "digest": genome.key(),
        "spec": spec.as_dict(),
        "expect": {
            "messages": float(expect["messages"]),
            "bits": float(expect["bits"]),
            "time": float(expect["time"]),
        },
        "salts": atlas_salt_vector(
            spec.algorithm, controlled=genome.controlled
        ),
    }
    if delays is not None:
        entry["delays"] = {
            str(k): float(v) for k, v in sorted(delays.items())
        }
    if replay_path is not None:
        entry["replay"] = str(replay_path)
    return entry


def merge_entry(atlas: Dict[str, Any], entry: Dict[str, Any]) -> str:
    """Best-wins merge of one entry; returns the outcome
    (``"new"`` / ``"improved"`` / ``"kept"``).  Kept means the
    incumbent already in the atlas scores at least as high — merging
    is monotone, a re-run can never lower a committed frontier."""
    key = entry_key(
        entry["algorithm"],
        entry["workload"],
        entry["objective"],
        entry["n"],
    )
    entries = atlas.setdefault("entries", {})
    existing = entries.get(key)
    if existing is None:
        outcome = "new"
        entries[key] = entry
    elif float(entry["score"]) > float(existing["score"]):
        outcome = "improved"
        entries[key] = entry
    else:
        outcome = "kept"
    mreg = get_registry()
    if mreg.enabled:
        mreg.counter(
            "repro_opt_atlas_merges_total", outcome=outcome
        ).inc()
    return outcome


def entry_is_stale(entry: Mapping[str, Any]) -> bool:
    """Whether an entry's recorded salts are superseded by the current
    code (replay bit-exactness no longer guaranteed)."""
    salts = entry.get("salts")
    if not isinstance(salts, dict):
        return True
    controlled = entry.get("genome", {}).get("kind") == "choice_prefix"
    return dict(salts) != atlas_salt_vector(
        entry["algorithm"], controlled=controlled
    )


# ----------------------------------------------------------------------
# Replay verification
# ----------------------------------------------------------------------
def plain_replay_spec(entry: Mapping[str, Any]) -> CellSpec:
    """The *plain-engine* cell that replays one entry: the evaluation
    spec with the controller stripped — controlled genomes swap in
    their recorded delay map (:class:`~repro.check.controller
    .ReplayDelay` as a spec), delay-vector genomes already are plain.
    """
    spec = CellSpec(**dict(entry["spec"]))
    if spec.controller is None:
        return spec
    delays = entry.get("delays")
    if not delays:
        raise ReproError(
            "entry has a controlled spec but no recorded delays"
        )
    return replace(
        spec,
        controller=None,
        delay={"kind": "replay", "delays": dict(delays)},
    )


def replay_entry(entry: Mapping[str, Any]) -> Tuple[bool, str]:
    """Re-execute one entry through the plain engine and compare
    against its recorded scalars.  Returns ``(ok, detail)``; bit
    identity means exact message/bit counts and makespan within
    :data:`TIME_TOL`."""
    payload = run_cell(plain_replay_spec(entry))
    if not payload.get("ok"):
        return False, f"replay failed: {payload.get('error')}"
    got = payload["result"]
    expect = entry["expect"]
    checks = [
        ("messages", float(got["messages"]), float(expect["messages"])),
        ("bits", float(got["bits"]), float(expect["bits"])),
    ]
    for name, g, e in checks:
        if g != e:
            return False, f"{name} diverged: got {g}, recorded {e}"
    dt = abs(float(got["time"]) - float(expect["time"]))
    if dt > TIME_TOL:
        return False, (
            f"time diverged by {dt}: got {got['time']}, "
            f"recorded {expect['time']}"
        )
    return True, ""


def check_atlas(
    atlas: Mapping[str, Any],
) -> Tuple[List[str], List[str]]:
    """Validate an atlas: returns ``(errors, stale_keys)``.

    Errors are structural — wrong kind/version, malformed entries,
    keys that do not match their content, non-monotone scores (an
    entry scoring below its own recorded baseline when it claims to
    beat it), unparseable genomes.  Stale keys are entries whose salt
    vector no longer matches the current code; they are reported
    separately because the committed file remains *valid* history —
    ``repro atlas check --strict`` escalates them to failures.
    """
    errors: List[str] = []
    stale: List[str] = []
    if atlas.get("kind") != ATLAS_KIND:
        errors.append(f"kind is {atlas.get('kind')!r}, not {ATLAS_KIND}")
    if atlas.get("version") != ATLAS_VERSION:
        errors.append(f"unsupported version {atlas.get('version')!r}")
    entries = atlas.get("entries", {})
    if not isinstance(entries, dict):
        return errors + ["entries is not an object"], stale
    required = (
        "algorithm", "workload", "objective", "n", "score",
        "baseline", "genome", "spec", "expect", "salts", "digest",
    )
    for key, entry in sorted(entries.items()):
        missing = [f for f in required if f not in entry]
        if missing:
            errors.append(f"{key}: missing fields {missing}")
            continue
        want = entry_key(
            entry["algorithm"],
            entry["workload"],
            entry["objective"],
            entry["n"],
        )
        if key != want:
            errors.append(f"{key}: key does not match content ({want})")
        try:
            genome = genome_from_dict(entry["genome"])
        except Exception as exc:  # noqa: BLE001 — reported, not raised
            errors.append(f"{key}: bad genome ({exc})")
            continue
        if genome.key() != entry["digest"]:
            errors.append(f"{key}: genome digest mismatch")
        if genome.controlled and not entry.get("delays"):
            errors.append(
                f"{key}: controlled genome without recorded delays"
            )
        try:
            plain_replay_spec(entry)
        except Exception as exc:  # noqa: BLE001
            errors.append(f"{key}: spec does not rebuild ({exc})")
        if entry_is_stale(entry):
            stale.append(key)
    return errors, stale


# ----------------------------------------------------------------------
# Runtime replay artifacts (results/.atlas)
# ----------------------------------------------------------------------
def artifact_from_entry(entry: Mapping[str, Any]) -> Dict[str, Any]:
    """The standalone replay artifact mirroring one entry."""
    out = {
        "version": ATLAS_VERSION,
        "kind": ATLAS_REPLAY_KIND,
        "salts": dict(entry["salts"]),
        "algorithm": entry["algorithm"],
        "objective": entry["objective"],
        "n": entry["n"],
        "score": entry["score"],
        "genome": dict(entry["genome"]),
        "spec": dict(entry["spec"]),
        "expect": dict(entry["expect"]),
    }
    if "delays" in entry:
        out["delays"] = dict(entry["delays"])
    return out


def save_artifact(
    entry: Mapping[str, Any],
    replay_dir: Union[str, Path] = DEFAULT_ATLAS_REPLAY_DIR,
) -> Path:
    """Write one entry's runtime replay artifact; the filename is the
    entry's content digest, so re-runs overwrite in place."""
    key = entry_key(
        entry["algorithm"],
        entry["workload"],
        entry["objective"],
        entry["n"],
    )
    name = key.rsplit("/", 1)[-1]
    path = Path(replay_dir) / f"{name}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(artifact_from_entry(entry), indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    return path


def artifact_is_stale(data: Mapping[str, Any]) -> bool:
    """Staleness of one runtime artifact, by its stamped salts."""
    salts = data.get("salts")
    if not isinstance(salts, dict) or "algorithm" not in data:
        return True
    controlled = data.get("genome", {}).get("kind") == "choice_prefix"
    try:
        current = atlas_salt_vector(
            data["algorithm"], controlled=controlled
        )
    except Exception:  # noqa: BLE001 — unknown algorithm etc.
        return True
    return dict(salts) != current


def atlas_artifact_report(
    replay_dir: Union[str, Path] = DEFAULT_ATLAS_REPLAY_DIR,
) -> Dict[str, int]:
    """Count live vs stale artifacts under ``replay_dir``."""
    report = {"count": 0, "stale": 0}
    replay_dir = Path(replay_dir)
    if replay_dir.is_dir():
        for path in sorted(replay_dir.glob("*.json")):
            report["count"] += 1
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                report["stale"] += 1
                continue
            if (
                data.get("kind") != ATLAS_REPLAY_KIND
                or artifact_is_stale(data)
            ):
                report["stale"] += 1
    return report


def improve_atlas(
    atlas: Dict[str, Any],
    *,
    base_spec: CellSpec,
    objective: str = "time",
    executor=None,
    optimizers: Tuple[str, ...] = ("cem", "sa"),
    generations: int = 8,
    population: int = 16,
    space=None,
    baseline_trials: int = 32,
    recorder=None,
    replay_dir: Union[str, Path] = DEFAULT_ATLAS_REPLAY_DIR,
) -> Dict[str, Any]:
    """One full atlas improvement pass for one (workload, objective, n).

    Runs the random baseline and every named optimizer through the
    executor, verifies the overall incumbent replays bit-identically
    through the plain engine, writes the runtime replay artifact, and
    merges the entry monotonically into ``atlas`` (in place).  Returns
    a summary row (entry key, scores, merge outcome, per-optimizer
    history) for CLI/bench reporting.

    ``space`` defaults to a
    :class:`~repro.opt.genomes.DelayVectorSpace` sized to the spec —
    the scalable parameterization; pass a
    :class:`~repro.opt.genomes.ChoicePrefixSpace` for exact small-n
    search.
    """
    from repro.check.worstcase import random_baseline
    from repro.opt.evaluate import (
        CellEvaluator,
        controlled_log_for,
        optimize,
        score_of,
    )
    from repro.opt.genomes import DelayVectorSpace
    from repro.opt.optimizers import make_optimizer

    if executor is None:
        raise ReproError("improve_atlas needs an executor")
    if space is None:
        space = DelayVectorSpace(length=min(128, max(16, base_spec.n)))

    baseline = random_baseline(
        None,
        objective,
        trials=baseline_trials,
        seed=base_spec.seed,
        executor=executor,
        base_spec=base_spec,
    )

    best_genome = None
    best_score = float("-inf")
    best_name = "?"
    runs: List[Dict[str, Any]] = []
    for i, name in enumerate(optimizers):
        optimizer = make_optimizer(
            name, space, seed=base_spec.seed * 7919 + i
        )
        evaluator = CellEvaluator(executor, base_spec, objective)
        outcome = optimize(
            optimizer,
            evaluator,
            generations=generations,
            population=population,
            recorder=recorder,
        )
        runs.append(
            {
                "optimizer": name,
                "best_score": outcome.best_score,
                "evaluations": outcome.evaluations,
                "dedup_hits": outcome.dedup_hits,
                "history": outcome.history,
            }
        )
        if outcome.best_score > best_score and (
            outcome.best_genome is not None
        ):
            best_score = outcome.best_score
            best_genome = outcome.best_genome
            best_name = name

    if best_genome is None:
        raise ReproError(
            "no optimizer produced a successful evaluation; "
            "every candidate cell failed"
        )

    # Recover the incumbent's exact result scalars (a warm cache hit),
    # and for controlled genomes the recorded delay map.
    spec = replace(base_spec, **best_genome.cell_overrides())
    outcome = executor.run([spec])[0]
    if outcome.result is None:
        raise ReproError(
            f"incumbent re-evaluation failed: {outcome.error}"
        )
    expect = {
        "messages": outcome.result.messages,
        "bits": outcome.result.bits,
        "time": outcome.result.time,
    }
    delays = None
    if best_genome.controlled:
        inline_result, log = controlled_log_for(spec)
        if score_of(objective, inline_result) != best_score:
            raise ReproError(
                "controlled incumbent re-run diverged from its cell "
                f"score ({score_of(objective, inline_result)} != "
                f"{best_score})"
            )
        delays = dict(log.delays)

    entry = make_entry(
        spec=spec,
        genome=best_genome,
        objective=objective,
        score=best_score,
        baseline=baseline,
        baseline_trials=baseline_trials,
        optimizer=best_name,
        expect=expect,
        delays=delays,
    )
    artifact_path = save_artifact(entry, replay_dir)
    entry["replay"] = str(artifact_path)
    ok, detail = replay_entry(entry)
    if not ok:
        raise ReproError(
            f"incumbent does not replay through the plain engine: "
            f"{detail}"
        )
    merged = merge_entry(atlas, entry)
    return {
        "key": entry_key(
            entry["algorithm"],
            entry["workload"],
            entry["objective"],
            entry["n"],
        ),
        "n": base_spec.n,
        "objective": objective,
        "score": best_score,
        "baseline": baseline,
        "beat_baseline": best_score > baseline,
        "optimizer": best_name,
        "genome_kind": best_genome.kind,
        "merge": merged,
        "replay_ok": ok,
        "runs": runs,
    }


def purge_atlas_artifacts(
    replay_dir: Union[str, Path] = DEFAULT_ATLAS_REPLAY_DIR,
    stale_only: bool = False,
) -> int:
    """Delete runtime atlas artifacts; returns the number removed."""
    removed = 0
    replay_dir = Path(replay_dir)
    if replay_dir.is_dir():
        for path in sorted(replay_dir.glob("*.json")):
            if stale_only:
                try:
                    data = json.loads(path.read_text(encoding="utf-8"))
                except (OSError, json.JSONDecodeError):
                    data = {}
                if (
                    data.get("kind") == ATLAS_REPLAY_KIND
                    and not artifact_is_stale(data)
                ):
                    continue
            path.unlink()
            removed += 1
    return removed
