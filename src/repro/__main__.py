"""Command-line interface: ``python -m repro``.

Subcommands:

* ``run``     — run one algorithm on a generated network and print the
  Table-1 measures (optionally a wake-wave timeline);
* ``table1``  — print the measured Table-1 reproduction;
* ``list``    — list registered algorithms;
* ``sweep``   — sweep an algorithm over network sizes and print the
  fitted message-growth exponent;
* ``lowerbounds`` — run the Theorem-1 and Theorem-2 harnesses and print
  their frontier/shape tables.

Examples::

    python -m repro list
    python -m repro run dfs-rank --n 300 --awake 10 --seed 1 --wave
    python -m repro table1 --n 200
    python -m repro sweep child-encoding --sizes 64 128 256 512
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from repro.analysis.fitting import fit_power_law
from repro.analysis.report import render_table
from repro.core import algorithm_names, get_algorithm
from repro.experiments.sweeps import er_single_wake, sweep
from repro.experiments.table1 import (
    measure_table1,
    render_table1,
    workload_context,
)
from repro.graphs.generators import connected_erdos_renyi
from repro.graphs.traversal import awake_distance
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup
from repro.sim.trace_view import render_wake_wave


def _cmd_list(_args) -> int:
    for name in algorithm_names():
        algo = get_algorithm(name)
        model = (
            f"{'KT1' if algo.requires_kt1 else 'KT0'}/"
            f"{'CONGEST' if algo.congest_safe else 'LOCAL'}/"
            f"{algo.synchrony}"
        )
        advice = "advice" if algo.uses_advice else "no advice"
        print(f"{name:24s} {model:22s} {advice}")
    return 0


def _cmd_run(args) -> int:
    algo = get_algorithm(args.algorithm)
    graph = connected_erdos_renyi(
        args.n, args.degree / max(1, args.n - 1), seed=args.seed
    )
    rng = random.Random(args.seed + 1)
    awake = rng.sample(list(graph.vertices()), max(1, args.awake))
    knowledge = Knowledge.KT1 if algo.requires_kt1 else Knowledge.KT0
    bandwidth = "CONGEST" if algo.congest_safe else "LOCAL"
    engine = algo.synchrony if algo.synchrony in ("sync", "async") else "async"
    setup = make_setup(
        graph, knowledge=knowledge, bandwidth=bandwidth, seed=args.seed + 2
    )
    adversary = Adversary(WakeSchedule.all_at_once(awake), UnitDelay())
    result = run_wakeup(
        setup, algo, adversary, engine=engine, seed=args.seed + 3,
        record_trace=args.wave,
    )
    rho = awake_distance(graph, awake)
    print(
        render_table(
            [
                {
                    "algorithm": result.algorithm,
                    "n": result.n,
                    "m": graph.num_edges,
                    "rho_awk": rho,
                    "messages": result.messages,
                    "bits": result.bits,
                    "time": result.time,
                    "time_all_awake": result.time_all_awake,
                    "advice_max_bits": result.advice_max_bits,
                    "all_awake": result.all_awake,
                }
            ]
        )
    )
    if args.wave and result.trace is not None:
        print()
        print(render_wake_wave(result.trace))
    return 0


def _cmd_table1(args) -> int:
    ctx = workload_context(n=args.n, seed=args.seed)
    print(
        f"workload: n={ctx['n']:.0f} m={ctx['m']:.0f} "
        f"D={ctx['diameter']:.0f} rho_awk={ctx['rho_awk']:.0f}"
    )
    print(render_table1(measure_table1(n=args.n, seed=args.seed)))
    return 0


def _cmd_lowerbounds(args) -> int:
    from repro.lowerbounds.theorem1 import run_prefix_tradeoff
    from repro.lowerbounds.theorem2 import OneShotProbe, run_time_restricted

    points = run_prefix_tradeoff(
        n=args.n, betas=list(range(args.betas + 1)), trials=2, seed=args.seed
    )
    print(
        render_table(
            [
                {
                    "beta": p.beta,
                    "messages": int(p.messages),
                    "msgs*2^b": int(p.product),
                    "adv_avg_bits": round(p.advice_avg_bits, 2),
                    "thm1_threshold": round(p.lb_message_bound, 1),
                }
                for p in points
            ],
            title=f"Theorem 1 frontier on class G(n={args.n})",
        )
    )
    print()
    rows = []
    for q in (3, 4, 5):
        pt = run_time_restricted(3, q, OneShotProbe(), seed=args.seed)
        rows.append(
            {
                "k": pt.k,
                "q": pt.q,
                "n_side": pt.n,
                "messages": pt.messages,
                "n^(1+1/k)": round(pt.lb_bound),
                "ratio": round(pt.messages / pt.lb_bound, 2),
            }
        )
    print(
        render_table(
            rows, title="Theorem 2 matching upper bound on class Gk (k=3)"
        )
    )
    return 0


def _cmd_sweep(args) -> int:
    algo_factory = lambda: get_algorithm(args.algorithm)  # noqa: E731
    probe = get_algorithm(args.algorithm)
    knowledge = Knowledge.KT1 if probe.requires_kt1 else Knowledge.KT0
    bandwidth = "CONGEST" if probe.congest_safe else "LOCAL"
    engine = probe.synchrony if probe.synchrony in ("sync", "async") else "async"
    rows = sweep(
        algo_factory,
        er_single_wake(avg_degree=args.degree, seed=args.seed),
        sizes=args.sizes,
        engine=engine,
        knowledge=knowledge,
        bandwidth=bandwidth,
        trials=args.trials,
        seed=args.seed,
    )
    print(render_table([r.as_dict() for r in rows]))
    fit = fit_power_law([r.n for r in rows], [r.messages for r in rows])
    print(
        f"\nmessages ~ {fit.constant:.2f} * n^{fit.exponent:.3f} "
        f"(r^2 = {fit.r_squared:.3f})"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Adversarial wake-up reproduction (Robinson & Tan, PODC 2025)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered algorithms")

    p_run = sub.add_parser("run", help="run one algorithm")
    p_run.add_argument("algorithm", choices=algorithm_names())
    p_run.add_argument("--n", type=int, default=200)
    p_run.add_argument("--degree", type=float, default=6.0)
    p_run.add_argument("--awake", type=int, default=1)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument(
        "--wave", action="store_true", help="print the wake-up wave"
    )

    p_t1 = sub.add_parser("table1", help="measured Table-1 reproduction")
    p_t1.add_argument("--n", type=int, default=200)
    p_t1.add_argument("--seed", type=int, default=0)

    p_lb = sub.add_parser(
        "lowerbounds", help="Theorem 1/2 lower-bound harness tables"
    )
    p_lb.add_argument("--n", type=int, default=48)
    p_lb.add_argument("--betas", type=int, default=5)
    p_lb.add_argument("--seed", type=int, default=0)

    p_sweep = sub.add_parser("sweep", help="size sweep + exponent fit")
    p_sweep.add_argument("algorithm", choices=algorithm_names())
    p_sweep.add_argument(
        "--sizes", type=int, nargs="+", default=[64, 128, 256]
    )
    p_sweep.add_argument("--degree", type=float, default=6.0)
    p_sweep.add_argument("--trials", type=int, default=2)
    p_sweep.add_argument("--seed", type=int, default=0)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "table1": _cmd_table1,
        "sweep": _cmd_sweep,
        "lowerbounds": _cmd_lowerbounds,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
