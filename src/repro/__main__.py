"""Command-line interface: ``python -m repro``.

Subcommands:

* ``run``     — run one algorithm on a generated network and print the
  Table-1 measures (optionally a wake-wave timeline);
* ``table1``  — print the measured Table-1 reproduction;
* ``list``    — list registered algorithms;
* ``sweep``   — sweep an algorithm over network sizes and print the
  fitted message-growth exponent;
* ``lowerbounds`` — run the Theorem-1 and Theorem-2 harnesses and print
  their frontier/shape tables;
* ``report``  — aggregate a ``--telemetry`` JSONL file into per-phase /
  per-n profile tables and flag runtime outliers;
* ``check``   — bounded model checking: exhaustively explore the
  adversary's schedule space at small n, check invariants, shrink any
  counterexample to a replayable artifact;
* ``worstcase`` — greedy + beam search for the worst schedule at sizes
  exhaustion cannot reach; reports the empirical adversarial frontier
  against a random-delay baseline and saves a replay artifact;
* ``atlas``   — stochastic adversary optimizers (CEM / simulated
  annealing / population search) over executor cells, merged
  best-wins into the committed adversarial frontier ``ATLAS.json``:
  ``run`` / ``show`` / ``check`` (structure + salts + plain-engine
  replayability);
* ``cache``   — inspect or purge the on-disk runtime caches (the cell
  result cache, the compiled-topology artifact store, the
  schedule-replay artifacts, and the atlas replay artifacts);
* ``metrics`` — render a metrics snapshot file (written by
  ``--metrics``) as JSON or Prometheus text exposition format;
* ``top``     — the metrics dashboard (executor throughput, cache
  hit-rates, per-phase p50/p99) rendered from a snapshot file;
* ``perf``    — the append-only perf ledger over the ``BENCH_*.json``
  outputs: ``record`` / ``show`` / ``check`` (the unified regression
  gate);
* ``serve``   — long-lived job daemon: accepts sweep/check/worstcase
  specs over a unix socket, streams ``repro.obs`` events back, and
  deduplicates repeat submissions against the warm caches;
* ``submit``  — client for ``serve``: send one job spec and stream its
  events until the final summary line;
* ``jobs``    — client for ``serve``: list jobs, show one job's
  status, or dump daemon stats.

Cell-based commands (``table1``, ``sweep``) accept ``--telemetry PATH``
to stream structured events (:mod:`repro.obs`) to a JSONL file and
``--progress {auto,on,off,top}`` for a live stderr progress line
(``top`` renders the full metrics dashboard instead of one line).
Instrumented commands (``table1``, ``sweep``, ``check``,
``worstcase``) accept ``--metrics [PATH]`` to enable the
:mod:`repro.obs.metrics` registry and write its JSON snapshot on exit
(default: ``results/metrics.json``).

Examples::

    python -m repro list
    python -m repro run dfs-rank --n 300 --awake 10 --seed 1 --wave
    python -m repro table1 --n 200
    python -m repro sweep child-encoding --sizes 64 128 256 512
    python -m repro sweep flooding --telemetry runs.jsonl
    python -m repro report --telemetry runs.jsonl
    python -m repro sweep flooding --metrics && python -m repro top
    python -m repro metrics dump --format prometheus
    python -m repro perf check --candidate engine=BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.fitting import fit_power_law
from repro.analysis.report import render_table
from repro.core import algorithm_names, get_algorithm
from repro.experiments.parallel import DEFAULT_CACHE_DIR, ParallelSweepExecutor
from repro.graphs.compile import DEFAULT_TOPOLOGY_DIR, TopologyStore
from repro.experiments.storage import merge_records
from repro.experiments.sweeps import parallel_sweep
from repro.experiments.table1 import (
    measure_table1,
    render_table1,
    workload_context,
)
from repro.graphs.generators import connected_erdos_renyi
from repro.graphs.traversal import awake_distance
from repro.models.knowledge import Knowledge, make_setup
from repro.obs import NULL_RECORDER, JsonlRecorder, SweepProgress
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup
from repro.sim.trace_view import render_wake_wave


def _cmd_list(_args) -> int:
    for name in algorithm_names():
        algo = get_algorithm(name)
        model = (
            f"{'KT1' if algo.requires_kt1 else 'KT0'}/"
            f"{'CONGEST' if algo.congest_safe else 'LOCAL'}/"
            f"{algo.synchrony}"
        )
        advice = "advice" if algo.uses_advice else "no advice"
        print(f"{name:24s} {model:22s} {advice}")
    return 0


def _cmd_run(args) -> int:
    algo = get_algorithm(args.algorithm)
    graph = connected_erdos_renyi(
        args.n, args.degree / max(1, args.n - 1), seed=args.seed
    )
    rng = random.Random(args.seed + 1)
    awake = rng.sample(list(graph.vertices()), max(1, args.awake))
    knowledge = Knowledge.KT1 if algo.requires_kt1 else Knowledge.KT0
    bandwidth = "CONGEST" if algo.congest_safe else "LOCAL"
    engine = algo.synchrony if algo.synchrony in ("sync", "async") else "async"
    setup = make_setup(
        graph, knowledge=knowledge, bandwidth=bandwidth, seed=args.seed + 2
    )
    adversary = Adversary(WakeSchedule.all_at_once(awake), UnitDelay())
    recorder = _make_recorder(args)
    try:
        result = run_wakeup(
            setup, algo, adversary, engine=engine, seed=args.seed + 3,
            record_trace=args.wave, recorder=recorder,
        )
    finally:
        recorder.close()
    rho = awake_distance(graph, awake)
    print(
        render_table(
            [
                {
                    "algorithm": result.algorithm,
                    "n": result.n,
                    "m": graph.num_edges,
                    "rho_awk": rho,
                    "messages": result.messages,
                    "bits": result.bits,
                    "time": result.time,
                    "time_all_awake": result.time_all_awake,
                    "advice_max_bits": result.advice_max_bits,
                    "all_awake": result.all_awake,
                }
            ]
        )
    )
    if args.wave and result.trace is not None:
        print()
        print(render_wake_wave(result.trace))
    return 0


def _cmd_table1(args) -> int:
    ctx = workload_context(n=args.n, seed=args.seed)
    print(
        f"workload: n={ctx['n']:.0f} m={ctx['m']:.0f} "
        f"D={ctx['diameter']:.0f} rho_awk={ctx['rho_awk']:.0f}"
    )
    executor = _make_executor(args)
    try:
        print(
            render_table1(
                measure_table1(n=args.n, seed=args.seed, executor=executor)
            )
        )
    finally:
        executor.recorder.close()
    s = executor.stats
    print(
        f"cells: {s['cells']:.0f} "
        f"(executed {s['executed']:.0f}, cached {s['cached']:.0f}) "
        f"in {s['wall_time']:.2f}s [workers={executor.workers}]"
    )
    return 0


def _cmd_lowerbounds(args) -> int:
    from repro.lowerbounds.theorem1 import run_prefix_tradeoff
    from repro.lowerbounds.theorem2 import OneShotProbe, run_time_restricted

    points = run_prefix_tradeoff(
        n=args.n, betas=list(range(args.betas + 1)), trials=2, seed=args.seed
    )
    print(
        render_table(
            [
                {
                    "beta": p.beta,
                    "messages": int(p.messages),
                    "msgs*2^b": int(p.product),
                    "adv_avg_bits": round(p.advice_avg_bits, 2),
                    "thm1_threshold": round(p.lb_message_bound, 1),
                }
                for p in points
            ],
            title=f"Theorem 1 frontier on class G(n={args.n})",
        )
    )
    print()
    rows = []
    for q in (3, 4, 5):
        pt = run_time_restricted(3, q, OneShotProbe(), seed=args.seed)
        rows.append(
            {
                "k": pt.k,
                "q": pt.q,
                "n_side": pt.n,
                "messages": pt.messages,
                "n^(1+1/k)": round(pt.lb_bound),
                "ratio": round(pt.messages / pt.lb_bound, 2),
            }
        )
    print(
        render_table(
            rows, title="Theorem 2 matching upper bound on class Gk (k=3)"
        )
    )
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.telemetry import (
        DEFAULT_OUTLIER_FACTOR,
        render_telemetry_report,
    )

    factor = (
        args.outlier_factor
        if args.outlier_factor is not None
        else DEFAULT_OUTLIER_FACTOR
    )
    try:
        report = render_telemetry_report(
            args.telemetry, outlier_factor=factor
        )
    except OSError as exc:
        print(f"cannot read telemetry file: {exc}", file=sys.stderr)
        return 2
    print(report)
    return 0


def _replay_staleness(replay_dir) -> Dict[str, int]:
    """Live/stale split of the replay directory against the current
    engine+check salts."""
    import json as _json

    from repro.check.controller import replay_is_stale

    counts = {"live": 0, "stale": 0}
    if replay_dir.is_dir():
        for p in sorted(replay_dir.rglob("*.json")):
            try:
                data = _json.loads(p.read_text(encoding="utf-8"))
                counts["stale" if replay_is_stale(data) else "live"] += 1
            except (OSError, ValueError):
                counts["stale"] += 1
    return counts


def _cmd_cache(args) -> int:
    from pathlib import Path

    from repro.experiments.parallel import cell_cache_report
    from repro.opt import atlas_artifact_report, purge_atlas_artifacts
    from repro.versioning import salt_vector

    cache_dir = Path(args.cache_dir)
    store = TopologyStore(args.topology_dir)
    replay_dir = Path(args.replay_dir)
    atlas_dir = Path(args.atlas_dir)
    if args.action == "info":
        cell_bytes = (
            sum(p.stat().st_size for p in cache_dir.rglob("*.json"))
            if cache_dir.is_dir()
            else 0
        )
        cell_report = cell_cache_report(cache_dir)
        topo_report = store.report()
        replays = (
            sorted(replay_dir.rglob("*.json"))
            if replay_dir.is_dir()
            else []
        )
        replay_report = _replay_staleness(replay_dir)
        atlas_files = (
            sorted(atlas_dir.glob("*.json"))
            if atlas_dir.is_dir()
            else []
        )
        atlas_report = atlas_artifact_report(atlas_dir)
        print(
            render_table(
                [
                    {
                        "cache": "cells",
                        "location": str(cache_dir),
                        "entries": cell_report["live"]
                        + cell_report["stale"],
                        "live": cell_report["live"],
                        "stale": cell_report["stale"],
                        "bytes": cell_bytes,
                    },
                    {
                        "cache": "topologies",
                        "location": str(store.root),
                        "entries": store.artifact_count(),
                        "live": topo_report["live"],
                        "stale": topo_report["stale"],
                        "bytes": store.size_bytes(),
                    },
                    {
                        "cache": "replays",
                        "location": str(replay_dir),
                        "entries": len(replays),
                        "live": replay_report["live"],
                        "stale": replay_report["stale"],
                        "bytes": sum(p.stat().st_size for p in replays),
                    },
                    {
                        "cache": "atlas",
                        "location": str(atlas_dir),
                        "entries": atlas_report["count"],
                        "live": atlas_report["count"]
                        - atlas_report["stale"],
                        "stale": atlas_report["stale"],
                        "bytes": sum(
                            p.stat().st_size for p in atlas_files
                        ),
                    },
                ],
                title="On-disk runtime caches",
            )
        )
        salts = salt_vector()
        print(
            render_table(
                [
                    {"subsystem": name, "salt": salt}
                    for name, salt in salts.items()
                ],
                title="Subsystem code salts (repro.versioning)",
            )
        )
        if cell_report["stale_by"]:
            breakdown = ", ".join(
                f"{reason}: {count}"
                for reason, count in sorted(
                    cell_report["stale_by"].items()
                )
            )
            print(f"stale cells by cause: {breakdown}")
            print("hint: `repro cache purge --stale` removes only these")
        return 0
    # action == "purge"
    stale_only = bool(getattr(args, "stale", False))
    removed_cells = removed_topos = removed_replays = 0
    removed_atlas = 0
    if args.what in ("cells", "all"):
        removed_cells = ParallelSweepExecutor(
            workers=0, cache_dir=cache_dir
        ).purge_cache(stale_only=stale_only)
    if args.what in ("topologies", "all"):
        removed_topos = store.purge(stale_only=stale_only)
    if args.what in ("replays", "all") and replay_dir.is_dir():
        import json as _json

        from repro.check.controller import replay_is_stale

        for p in sorted(replay_dir.rglob("*.json")):
            if stale_only:
                try:
                    data = _json.loads(p.read_text(encoding="utf-8"))
                    if not replay_is_stale(data):
                        continue
                except (OSError, ValueError):
                    pass  # unreadable counts as stale
            p.unlink()
            removed_replays += 1
    if args.what in ("atlas", "all"):
        removed_atlas = purge_atlas_artifacts(
            atlas_dir, stale_only=stale_only
        )
    what = "stale " if stale_only else ""
    print(
        f"purged {removed_cells} {what}cached cell(s), "
        f"{removed_topos} compiled topolog(y/ies), "
        f"{removed_replays} replay artifact(s), "
        f"{removed_atlas} atlas replay artifact(s)"
    )
    return 0


#: Where ``--metrics`` (bare, no PATH) writes its JSON snapshot, and
#: where ``metrics dump`` / ``top`` look by default.
DEFAULT_METRICS_PATH = "results/metrics.json"


def _load_snapshot(path: str) -> Optional[dict]:
    """Read + schema-check a snapshot file; None (with stderr) on error."""
    import json

    from repro.obs.metrics import validate_snapshot

    try:
        with open(path, "r", encoding="utf-8") as fh:
            snap = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"cannot read metrics snapshot {path}: {exc}",
              file=sys.stderr)
        return None
    problems = validate_snapshot(snap)
    if problems:
        for p in problems:
            print(f"invalid snapshot {path}: {p}", file=sys.stderr)
        return None
    return snap


def _cmd_metrics(args) -> int:
    import json

    from repro.obs.metrics import render_prometheus

    snap = _load_snapshot(args.snapshot)
    if snap is None:
        return 2
    if args.format == "prometheus":
        sys.stdout.write(render_prometheus(snap))
    else:
        print(json.dumps(snap, indent=2, sort_keys=True))
    return 0


def _cmd_top(args) -> int:
    import time as _time

    from repro.obs.top import render_top

    snap = _load_snapshot(args.snapshot)
    if snap is None:
        return 2
    print(render_top(snap))
    if not args.watch:
        return 0
    # Poll the snapshot file; redraw whenever it changes (a concurrent
    # sweep with --metrics rewrites it on exit).
    prev, prev_t = snap, _time.perf_counter()
    try:
        while True:
            _time.sleep(args.watch)
            snap = _load_snapshot(args.snapshot)
            if snap is None or snap == prev:
                continue
            now = _time.perf_counter()
            print()
            print(render_top(snap, prev=prev, dt=now - prev_t))
            prev, prev_t = snap, now
    except KeyboardInterrupt:
        return 0


def _cmd_perf(args) -> int:
    from pathlib import Path

    from repro.analysis.perf import PerfError, check, record, show
    from repro.analysis.perf import PROFILES as _PROFILES

    ledger = Path(args.ledger)
    try:
        if args.perf_command == "record":
            benches = [Path(b) for b in args.benches]
            if not benches:
                benches = [
                    Path(prof["baseline"])
                    for prof in _PROFILES.values()
                    if Path(prof["baseline"]).exists()
                ]
                if not benches:
                    print("error: no BENCH_*.json files found",
                          file=sys.stderr)
                    return 1
            for bench in benches:
                entry = record(bench, ledger, profile=args.profile)
                print(
                    f"recorded [{entry['profile']}] {bench} "
                    f"({len(entry['cases'])} cases) -> {ledger}"
                )
            return 0
        if args.perf_command == "show":
            show(ledger)
            return 0
    except PerfError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    # check
    candidates = {}
    for pair in args.candidate:
        profile, sep, path = pair.partition("=")
        if not sep or not path:
            print(f"--candidate wants PROFILE=PATH, got {pair!r}",
                  file=sys.stderr)
            return 2
        candidates[profile] = Path(path)
    if not candidates:
        print("error: check wants at least one --candidate PROFILE=PATH",
              file=sys.stderr)
        return 2
    errors = check(
        candidates, ledger, max_regression=args.max_regression
    )
    if errors:
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        return 1
    print(f"{len(candidates)} profile(s) within tolerance of the ledger")
    return 0


from repro.check.worlds import CHECK_GRAPHS as _CHECK_GRAPHS


def _check_world(args, algo):
    """Deterministic world factory for ``check``/``worstcase`` —
    delegates to :func:`repro.check.worlds.build_check_world`, the
    construction path shared with :mod:`repro.serve` job specs."""
    from repro.check.worlds import build_check_world

    return build_check_world(
        algo,
        n=args.n,
        graph=args.graph,
        awake=args.awake,
        stagger=args.stagger,
        degree=args.degree,
        seed=args.seed,
    )


def _cmd_check(args) -> int:
    from pathlib import Path

    from repro.check import (
        default_invariants,
        explore,
        make_replay,
        save_replay,
        shrink_violation,
    )

    algo = get_algorithm(args.algorithm)
    world, times = _check_world(args, algo)
    recorder = _make_recorder(args)
    try:
        result = explore(
            world,
            max_schedules=args.max_schedules,
            max_states=args.max_states,
            max_depth=args.max_depth,
            por=not args.no_por,
            dedup=not args.no_dedup,
            seed=args.seed + 3,
            laziness=args.laziness,
            mutation=args.mutation,
            recorder=recorder,
        )
        s = result.stats
        print(
            render_table(
                [
                    {
                        "algorithm": args.algorithm,
                        "n": args.n,
                        "graph": args.graph,
                        "schedules": s.schedules,
                        "states": s.states,
                        "pruned": s.pruned_sleep + s.pruned_state,
                        "violations": s.violations,
                        "coverage": "complete"
                        if result.completed
                        else "budget hit",
                    }
                ],
                title="Schedule-space exploration",
            )
        )
        if not result.violations:
            if s.violations:
                # Counted but not retained (max_violations overflow).
                return 1
            return 0
        v = result.violations[0]
        print(f"\nviolation: {v.invariant}: {v.detail}")
        outcome = shrink_violation(
            world,
            v.choices,
            v.invariant,
            invariants=default_invariants(algo.name),
            seed=args.seed + 3,
            laziness=args.laziness,
            mutation=args.mutation,
            recorder=recorder,
        )
        print(
            f"shrunk witness {outcome.initial_length} -> "
            f"{outcome.final_length} choice(s) in {outcome.tests} runs: "
            f"{list(outcome.choices)}"
        )
        replay = make_replay(
            algorithm=algo.name,
            n=args.n,
            log=_witness_log(world, outcome.choices, args),
            schedule_times=times,
            laziness=args.laziness,
            mutation=args.mutation,
            seed=args.seed + 3,
            invariant=v.invariant,
            workload={"graph": args.graph, "degree": args.degree,
                      "awake": args.awake, "stagger": args.stagger,
                      "seed": args.seed},
        )
        path = save_replay(
            replay,
            Path(args.replay_dir)
            / f"check-{algo.name}-n{args.n}-{v.invariant}.json",
        )
        print(f"replay artifact: {path}")
        return 1
    finally:
        recorder.close()


def _witness_log(world, choices, args):
    """Re-run a shrunk witness once to capture its full ScheduleLog."""
    from repro.check import ReplayController

    setup, algo, adversary = world()
    ctl = ReplayController(
        list(choices),
        strict=False,
        laziness=args.laziness,
        mutation=args.mutation,
    )
    run_wakeup(
        setup, algo, adversary, engine="async", seed=args.seed + 3,
        require_all_awake=False, controller=ctl,
    )
    return ctl.log


def _cmd_worstcase(args) -> int:
    from pathlib import Path

    from repro.check import (
        ReplayDelay,
        make_replay,
        random_baseline,
        save_replay,
        worstcase_search,
    )

    algo = get_algorithm(args.algorithm)
    if args.workload == "class-g":
        from repro.check.worlds import build_class_g_world

        world, times = build_class_g_world(algo, args.n, seed=args.seed)
    else:
        world, times = _check_world(args, algo)
    recorder = _make_recorder(args)
    try:
        wc = worstcase_search(
            world,
            args.objective,
            beam_width=args.beam,
            horizon=args.horizon,
            branch_cap=args.branch_cap,
            laziness=args.laziness,
            seed=args.seed + 3,
            recorder=recorder,
        )
        baseline = random_baseline(
            world, args.objective, trials=args.trials, seed=args.seed + 4
        )
        rows = [
            {"adversary": f"random best of {args.trials}",
             args.objective: round(baseline, 6)}
        ]
        rows += [
            {"adversary": f"greedy {name}",
             args.objective: round(score, 6)}
            for name, score in sorted(wc.greedy_scores.items())
        ]
        rows.append(
            {"adversary": f"beam ({wc.evaluations} evals)",
             args.objective: round(wc.score, 6)}
        )
        print(
            render_table(
                rows,
                title=(
                    f"Worst-case search: {algo.name} on "
                    f"{args.workload} n={args.n}"
                ),
            )
        )
        # The found schedule must replay bit-identically through the
        # plain engine — the artifact is only worth saving if it does.
        setup, _, adversary = world()
        replayed = run_wakeup(
            setup,
            algo,
            Adversary(adversary.schedule, ReplayDelay(wc.delays)),
            engine="async",
            seed=args.seed + 3,
            require_all_awake=False,
        )
        identical = (
            replayed.messages == wc.result.messages
            and replayed.bits == wc.result.bits
            and abs(replayed.time - wc.result.time) < 1e-12
        )
        if not identical:
            print("replay check FAILED: plain engine diverged",
                  file=sys.stderr)
            return 1
        print(
            f"replay check: plain engine reproduces "
            f"{args.objective}={wc.score:g} bit-identically"
        )
        replay = make_replay(
            algorithm=algo.name,
            n=args.n,
            log=wc.log,
            schedule_times=times,
            laziness=wc.laziness,
            seed=args.seed + 3,
            objective=args.objective,
            score=wc.score,
            workload={"workload": args.workload, "graph":
                      getattr(args, "graph", None),
                      "seed": args.seed},
        )
        out = args.out or (
            Path(args.replay_dir)
            / f"worstcase-{algo.name}-{args.workload}-n{args.n}-"
            f"{args.objective}.json"
        )
        path = save_replay(replay, out)
        print(f"replay artifact: {path}")
        return 0
    finally:
        recorder.close()


def _cmd_atlas(args) -> int:
    if args.atlas_command == "run":
        return _cmd_atlas_run(args)
    if args.atlas_command == "show":
        return _cmd_atlas_show(args)
    return _cmd_atlas_check(args)


def _cmd_atlas_run(args) -> int:
    from repro.opt import (
        OPTIMIZERS,
        ChoicePrefixSpace,
        DelayVectorSpace,
        check_world_spec,
        improve_atlas,
        load_atlas,
        save_atlas,
    )

    optimizers = tuple(
        name for name in args.optimizers.split(",") if name
    )
    unknown = sorted(set(optimizers) - set(OPTIMIZERS))
    if unknown:
        print(
            f"unknown optimizer(s) {unknown}; pick from "
            f"{sorted(OPTIMIZERS)}",
            file=sys.stderr,
        )
        return 2
    atlas = load_atlas(args.atlas)
    executor = _make_executor(args)
    rows = []
    try:
        for n in args.sizes:
            base_spec = check_world_spec(
                args.algorithm,
                n,
                graph=args.graph,
                awake=args.awake,
                stagger=args.stagger,
                degree=args.degree,
                seed=args.seed,
            )
            if args.genome == "choice-prefix":
                space = ChoicePrefixSpace(
                    horizon=args.horizon,
                    branch_cap=args.branch_cap,
                    laziness=args.laziness,
                )
            elif args.vector_length is not None:
                space = DelayVectorSpace(length=args.vector_length)
            else:
                space = None  # improve_atlas sizes one to the spec
            summary = improve_atlas(
                atlas,
                base_spec=base_spec,
                objective=args.objective,
                executor=executor,
                optimizers=optimizers,
                generations=args.generations,
                population=args.population,
                space=space,
                baseline_trials=args.baseline_trials,
                recorder=executor.recorder,
                replay_dir=args.atlas_dir,
            )
            rows.append(summary)
    finally:
        executor.recorder.close()
    path = save_atlas(atlas, args.atlas)
    print(
        render_table(
            [
                {
                    "n": row["n"],
                    "optimizer": row["optimizer"],
                    "genome": row["genome_kind"],
                    args.objective: round(row["score"], 6),
                    "baseline": round(row["baseline"], 6),
                    "beat": "yes" if row["beat_baseline"] else "no",
                    "merge": row["merge"],
                }
                for row in rows
            ],
            title=(
                f"Atlas run: {args.algorithm} on {args.graph} "
                f"(objective {args.objective})"
            ),
        )
    )
    print(f"atlas: {path} ({len(atlas.get('entries', {}))} entries)")
    if args.require_beat_baseline and not all(
        row["beat_baseline"] for row in rows
    ):
        print(
            "FAIL: an incumbent did not beat its random baseline",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_atlas_show(args) -> int:
    from repro.opt import entry_is_stale, load_atlas

    atlas = load_atlas(args.atlas)
    entries = atlas.get("entries", {})
    if not entries:
        print(f"atlas {args.atlas} is empty")
        return 0
    print(
        render_table(
            [
                {
                    "key": key,
                    "optimizer": entry["optimizer"],
                    "genome": entry["genome"]["kind"],
                    "score": round(float(entry["score"]), 6),
                    "baseline": round(float(entry["baseline"]), 6),
                    "beat": (
                        "yes"
                        if float(entry["score"])
                        > float(entry["baseline"])
                        else "no"
                    ),
                    "salts": (
                        "stale" if entry_is_stale(entry) else "live"
                    ),
                }
                for key, entry in sorted(entries.items())
            ],
            title=f"Adversarial frontier atlas ({args.atlas})",
        )
    )
    return 0


def _cmd_atlas_check(args) -> int:
    from repro.errors import ReproError
    from repro.opt import (
        check_atlas,
        entry_is_stale,
        load_atlas,
        replay_entry,
    )

    try:
        atlas = load_atlas(args.atlas)
    except (ReproError, ValueError) as exc:
        print(f"cannot load atlas {args.atlas}: {exc}", file=sys.stderr)
        return 1
    errors, stale = check_atlas(atlas)
    for err in errors:
        print(f"ERROR: {err}", file=sys.stderr)
    replay_failures = 0
    replayed = 0
    if args.replay and not errors:
        # Replay only live entries: a stale salt vector means the code
        # changed under the entry, so bit-identity is not promised.
        for key, entry in sorted(atlas.get("entries", {}).items()):
            if entry_is_stale(entry):
                continue
            ok, detail = replay_entry(entry)
            replayed += 1
            if not ok:
                replay_failures += 1
                print(f"REPLAY FAILED: {key}: {detail}",
                      file=sys.stderr)
    total = len(atlas.get("entries", {}))
    stale_note = f", {len(stale)} stale" if stale else ""
    replay_note = (
        f", {replayed} replayed bit-identically"
        if args.replay and not replay_failures and not errors
        else ""
    )
    if stale and not args.strict:
        for key in stale:
            print(f"stale (salts superseded): {key}")
        print("hint: `repro atlas run` refreshes stale entries; "
              "--strict turns stale into failure")
    failed = bool(errors) or replay_failures > 0 or (
        args.strict and bool(stale)
    )
    status = "FAIL" if failed else "OK"
    print(
        f"atlas check: {status} — {total} entr(y/ies)"
        f"{stale_note}{replay_note}"
    )
    return 1 if failed else 0


def _make_recorder(args):
    """Telemetry sink from ``--telemetry`` (NULL_RECORDER when unset)."""
    path = getattr(args, "telemetry", None)
    if not path:
        return NULL_RECORDER
    return JsonlRecorder(path)


def _make_progress(args):
    """Live progress display per ``--progress`` (auto: only on a TTY).

    ``top`` swaps the one-line tracker for the multi-line metrics
    dashboard (:class:`~repro.obs.top.TopView`); it reads the global
    registry, so it pairs with ``--metrics`` (without it the panel
    shows zeros).
    """
    mode = getattr(args, "progress", "off")
    if mode == "off":
        return None
    if mode == "top":
        from repro.obs.top import TopView

        return TopView()
    if mode == "auto" and not sys.stderr.isatty():
        return None
    return SweepProgress()


def _make_executor(args) -> ParallelSweepExecutor:
    """Build the executor plus its telemetry sink.

    The recorder is reachable as ``executor.recorder`` so command
    handlers can ``close()`` it (flushing the JSONL file) in a
    ``finally`` block; closing the default NULL_RECORDER is a no-op.
    """
    return ParallelSweepExecutor(
        workers=args.workers,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        cell_timeout=args.cell_timeout,
        recorder=_make_recorder(args),
        progress=_make_progress(args),
        topology_dir=args.topology_dir,
        use_topology_store=(False if args.no_topology_store else None),
        backend=getattr(args, "exec_backend", "fork"),
    )


def _cmd_sweep(args) -> int:
    probe = get_algorithm(args.algorithm)
    knowledge = "KT1" if probe.requires_kt1 else "KT0"
    bandwidth = "CONGEST" if probe.congest_safe else "LOCAL"
    engine = probe.synchrony if probe.synchrony in ("sync", "async") else "async"
    if args.backend == "bulk" and probe.synchrony == "both":
        # The bulk lane implements sync semantics; a both-synchrony
        # algorithm (which would default to async) runs sync rounds.
        engine = "sync"
    sizes = args.sizes
    if args.max_n is not None:
        sizes = [n for n in (16 << i for i in range(30)) if n <= args.max_n]
        if not sizes:
            sizes = [args.max_n]
    executor = _make_executor(args)
    try:
        rows, outcomes = parallel_sweep(
            args.algorithm,
            {
                "kind": "er_single_wake",
                "avg_degree": args.degree,
                "seed": args.seed,
            },
            sizes=sizes,
            executor=executor,
            engine=engine,
            knowledge=knowledge,
            bandwidth=bandwidth,
            trials=args.trials,
            seed=args.seed,
            flight_recorder=args.flight_recorder,
            backend=args.backend,
        )
    finally:
        executor.recorder.close()
    print(render_table([r.as_dict() for r in rows]))
    failed = [o for o in outcomes if not o.ok]
    for o in failed:
        print(
            f"cell failed: n={o.spec.n} trial={o.spec.trial} "
            f"[{o.status}] {o.error}"
        )
        for line in o.trace_tail or []:
            print(f"    {line}")
    if len(rows) >= 2:
        fit = fit_power_law([r.n for r in rows], [r.messages for r in rows])
        print(
            f"\nmessages ~ {fit.constant:.2f} * n^{fit.exponent:.3f} "
            f"(r^2 = {fit.r_squared:.3f})"
        )
    s = executor.stats
    print(
        f"cells: {s['cells']:.0f} "
        f"(executed {s['executed']:.0f}, cached {s['cached']:.0f}, "
        f"failed {s['failed']:.0f}) in {s['wall_time']:.2f}s "
        f"[workers={executor.workers}]"
    )
    print(
        f"topologies: built {s.get('topology.build', 0):.0f}, "
        f"reused {s.get('topology.hit_mem', 0):.0f} in-process + "
        f"{s.get('topology.hit_disk', 0):.0f} from store"
    )
    if args.out:
        merge_records(
            args.out,
            [o.record() for o in outcomes],
            experiment=f"sweep/{args.algorithm}",
            params={
                "degree": args.degree,
                "trials": args.trials,
                "seed": args.seed,
            },
        )
        print(f"merged {len(outcomes)} cell records into {args.out}")
    return 1 if failed else 0


def _cmd_serve(args) -> int:
    from repro.obs.metrics import get_registry
    from repro.serve import ServeConfig, SweepServer

    config = ServeConfig(
        socket_path=args.socket,
        max_queue=args.max_queue,
        max_cells=args.max_cells,
        job_timeout=args.job_timeout if args.job_timeout > 0 else None,
        cell_timeout=args.cell_timeout if args.cell_timeout > 0 else None,
        workers=args.workers or 0,
        cache_dir=args.cache_dir,
        topology_dir=args.topology_dir,
        use_cache=not args.no_cache,
        backend=args.backend,
    )
    # Under --metrics the wrapper in main() installed a live global
    # registry whose snapshot lands on disk at exit; route the serve
    # instruments into it.  Without it the daemon keeps a private live
    # registry, readable over the socket via `repro jobs --stats`.
    registry = get_registry()
    server = SweepServer(
        config,
        recorder=_make_recorder(args),
        metrics=registry if registry.enabled else None,
    )
    try:
        server.start()
    except OSError as exc:
        print(f"error: cannot bind {config.socket_path}: {exc}",
              file=sys.stderr)
        return 1
    print(
        f"serving on {config.socket_path} "
        f"(queue<={config.max_queue}, cells/job<={config.max_cells}, "
        f"job budget {_fmt_budget(config.job_timeout)}, "
        f"cell cap {_fmt_budget(config.cell_timeout)})",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    finally:
        server.log.close()
    print("daemon stopped", file=sys.stderr)
    return 0


def _fmt_budget(budget) -> str:
    return "unbounded" if budget is None else f"{budget:g}s"


def _load_job_spec(arg: str):
    """Job spec from a JSON literal, ``@file``, or ``-`` (stdin)."""
    if arg == "-":
        text = sys.stdin.read()
    elif arg.startswith("@"):
        text = Path(arg[1:]).read_text(encoding="utf-8")
    else:
        text = arg
    spec = json.loads(text)
    if not isinstance(spec, dict):
        raise ValueError("job spec must be a JSON object")
    return spec


def _cmd_submit(args) -> int:
    from repro.serve import ServeClient, ServeError, is_event

    try:
        spec = _load_job_spec(args.spec)
    except (OSError, ValueError) as exc:
        print(f"error: bad job spec: {exc}", file=sys.stderr)
        return 1
    client = ServeClient(args.socket, timeout=args.timeout)
    try:
        if args.no_watch:
            ack = client.submit(spec)
            print(json.dumps(ack, sort_keys=True))
            return 0 if ack.get("ok") else 1
        final = None
        for obj in client.submit_watch(spec):
            if is_event(obj):
                print(json.dumps(obj, sort_keys=True))
            else:
                final = obj
        print(json.dumps(final, sort_keys=True))
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if final is None or not final.get("ok", True):
        return 1
    job = final.get("job", {})
    return 0 if job.get("state", "done") == "done" else 1


def _cmd_jobs(args) -> int:
    from repro.serve import ServeClient, ServeError

    client = ServeClient(args.socket, timeout=args.timeout)
    try:
        if args.stats:
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if args.job:
            print(json.dumps(
                client.status(args.job), indent=2, sort_keys=True
            ))
            return 0
        jobs = client.jobs()
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not jobs:
        print("no jobs")
        return 0
    rows = [
        {
            "id": j.get("id", "?"),
            "kind": j.get("kind", "?"),
            "algorithm": j.get("algorithm", "?"),
            "state": j.get("state", "?"),
            "clients": j.get("clients", 0),
            "duration": round(float(j.get("duration") or 0.0), 3),
        }
        for j in jobs
    ]
    print(render_table(rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Adversarial wake-up reproduction (Robinson & Tan, PODC 2025)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered algorithms")

    p_run = sub.add_parser("run", help="run one algorithm")
    p_run.add_argument("algorithm", choices=algorithm_names())
    p_run.add_argument("--n", type=int, default=200)
    p_run.add_argument("--degree", type=float, default=6.0)
    p_run.add_argument("--awake", type=int, default=1)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument(
        "--wave", action="store_true", help="print the wake-up wave"
    )
    p_run.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="stream structured JSONL run events to this file",
    )

    p_t1 = sub.add_parser("table1", help="measured Table-1 reproduction")
    p_t1.add_argument("--n", type=int, default=200)
    p_t1.add_argument("--seed", type=int, default=0)
    _add_executor_flags(p_t1)

    p_lb = sub.add_parser(
        "lowerbounds", help="Theorem 1/2 lower-bound harness tables"
    )
    p_lb.add_argument("--n", type=int, default=48)
    p_lb.add_argument("--betas", type=int, default=5)
    p_lb.add_argument("--seed", type=int, default=0)

    p_sweep = sub.add_parser("sweep", help="size sweep + exponent fit")
    p_sweep.add_argument(
        "algorithm",
        nargs="?",
        default="flooding",
        choices=algorithm_names(),
    )
    p_sweep.add_argument(
        "--sizes", type=int, nargs="+", default=[64, 128, 256]
    )
    p_sweep.add_argument(
        "--max-n",
        type=int,
        default=None,
        help="replace --sizes by doubling sizes 16, 32, ... up to N",
    )
    p_sweep.add_argument("--degree", type=float, default=6.0)
    p_sweep.add_argument("--trials", type=int, default=2)
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument(
        "--backend",
        choices=("auto", "bulk"),
        default="auto",
        help="bulk: vectorized frontier lane for synchronous runs "
        "(needs repro[bulk]; algorithms without a frontier kernel "
        "fall back to the sync engine)",
    )
    p_sweep.add_argument(
        "--out",
        default=None,
        help="merge per-cell records into this JSON artifact",
    )
    _add_executor_flags(p_sweep)

    p_rep = sub.add_parser(
        "report", help="aggregate a telemetry JSONL file into profiles"
    )
    p_rep.add_argument(
        "--telemetry",
        required=True,
        metavar="PATH",
        help="telemetry JSONL file produced by --telemetry",
    )
    p_rep.add_argument(
        "--outlier-factor",
        type=float,
        default=None,
        help="flag cells slower than FACTOR x their size-class median",
    )

    p_check = sub.add_parser(
        "check",
        help="bounded model checking over the adversarial schedule space",
    )
    p_check.add_argument("algorithm", choices=algorithm_names())
    p_check.add_argument("--n", type=int, default=4)
    p_check.add_argument(
        "--graph", choices=_CHECK_GRAPHS, default="cycle"
    )
    p_check.add_argument("--awake", type=int, default=1)
    p_check.add_argument(
        "--stagger",
        type=float,
        default=0.0,
        help="wake vertex i at i*STAGGER instead of all at once",
    )
    p_check.add_argument("--degree", type=float, default=3.0)
    p_check.add_argument("--seed", type=int, default=0)
    p_check.add_argument("--max-schedules", type=int, default=20_000)
    p_check.add_argument("--max-states", type=int, default=500_000)
    p_check.add_argument("--max-depth", type=int, default=256)
    p_check.add_argument(
        "--laziness",
        type=float,
        default=0.0,
        help="0.0 = eager delivery times, 1.0 = maximal legal delays",
    )
    p_check.add_argument(
        "--no-por",
        action="store_true",
        help="disable the sleep-set partial-order reduction",
    )
    p_check.add_argument(
        "--no-dedup",
        action="store_true",
        help="disable state-fingerprint deduplication",
    )
    p_check.add_argument(
        "--mutation",
        choices=("skip-fifo",),
        default=None,
        help="plant a known engine bug (mutation smoke testing)",
    )
    _add_replay_dir_flag(p_check)
    _add_telemetry_flags(p_check)

    p_wc = sub.add_parser(
        "worstcase",
        help="search for the worst adversarial schedule at larger n",
    )
    p_wc.add_argument(
        "algorithm", nargs="?", default="flooding",
        choices=algorithm_names(),
    )
    p_wc.add_argument(
        "--workload",
        choices=("er", "class-g"),
        default="class-g",
        help="er: random graph (uses --graph flags); class-g: the "
        "Theorem-1 lower-bound topology",
    )
    p_wc.add_argument("--n", type=int, default=8)
    p_wc.add_argument(
        "--graph", choices=_CHECK_GRAPHS, default="er"
    )
    p_wc.add_argument("--awake", type=int, default=1)
    p_wc.add_argument("--stagger", type=float, default=0.0)
    p_wc.add_argument("--degree", type=float, default=3.0)
    p_wc.add_argument(
        "--objective",
        choices=("time", "messages", "bits"),
        default="time",
    )
    p_wc.add_argument("--beam", type=int, default=4)
    p_wc.add_argument("--horizon", type=int, default=12)
    p_wc.add_argument("--branch-cap", type=int, default=3)
    p_wc.add_argument(
        "--trials",
        type=int,
        default=32,
        help="random-delay baseline sample count",
    )
    p_wc.add_argument(
        "--laziness",
        type=float,
        default=None,
        help="override delivery-time laziness (default: 1.0 for the "
        "time objective, else 0.0)",
    )
    p_wc.add_argument("--seed", type=int, default=0)
    p_wc.add_argument(
        "--out",
        default=None,
        help="replay artifact path (default: under --replay-dir)",
    )
    _add_replay_dir_flag(p_wc)
    _add_telemetry_flags(p_wc)

    p_atlas = sub.add_parser(
        "atlas",
        help="stochastic adversary search + the committed frontier "
        "atlas (ATLAS.json)",
        description=(
            "Maintain the adversarial frontier atlas: run the "
            "stochastic optimizers (repro.opt) against one workload "
            "across sizes and merge the incumbents best-wins into "
            "ATLAS.json; show the committed frontier; check the file's "
            "structure, salts, and plain-engine replayability."
        ),
    )
    atlas_sub = p_atlas.add_subparsers(
        dest="atlas_command", required=True
    )
    p_atlas_run = atlas_sub.add_parser(
        "run", help="search one workload and merge incumbents"
    )
    p_atlas_run.add_argument(
        "algorithm", nargs="?", default="flooding",
        choices=algorithm_names(),
    )
    p_atlas_run.add_argument(
        "--graph", choices=_CHECK_GRAPHS, default="star",
        help="check-world graph family (default: %(default)s)",
    )
    p_atlas_run.add_argument("--awake", type=int, default=1)
    p_atlas_run.add_argument("--stagger", type=float, default=0.0)
    p_atlas_run.add_argument("--degree", type=float, default=3.0)
    p_atlas_run.add_argument(
        "--sizes", type=int, nargs="+", default=[64],
        help="network sizes to improve (default: %(default)s)",
    )
    p_atlas_run.add_argument(
        "--objective",
        choices=("time", "messages", "bits"),
        default="time",
    )
    p_atlas_run.add_argument(
        "--optimizers", default="cem,sa",
        help="comma list of optimizers: cem, sa, pop "
        "(default: %(default)s)",
    )
    p_atlas_run.add_argument("--generations", type=int, default=8)
    p_atlas_run.add_argument("--population", type=int, default=16)
    p_atlas_run.add_argument(
        "--baseline-trials", type=int, default=32,
        help="random-delay baseline sample count (default: 32)",
    )
    p_atlas_run.add_argument(
        "--genome",
        choices=("delay-vector", "choice-prefix"),
        default="delay-vector",
        help="genome parameterization: delay-vector scales to "
        "hundreds of vertices, choice-prefix drives the controlled "
        "scheduler exactly at small n (default: %(default)s)",
    )
    p_atlas_run.add_argument(
        "--vector-length", type=int, default=None,
        help="delay-vector genome length (default: sized to n)",
    )
    p_atlas_run.add_argument(
        "--horizon", type=int, default=16,
        help="choice-prefix genome length (default: %(default)s)",
    )
    p_atlas_run.add_argument("--branch-cap", type=int, default=4)
    p_atlas_run.add_argument(
        "--laziness", type=float, default=0.0,
        help="choice-prefix delivery-time laziness (default: 0.0)",
    )
    p_atlas_run.add_argument("--seed", type=int, default=0)
    p_atlas_run.add_argument(
        "--atlas", default="ATLAS.json",
        help="atlas file to merge into (default: %(default)s)",
    )
    p_atlas_run.add_argument(
        "--require-beat-baseline",
        action="store_true",
        help="exit 1 unless every incumbent strictly beats its "
        "random-delay baseline (CI gate)",
    )
    _add_atlas_dir_flag(p_atlas_run)
    _add_executor_flags(p_atlas_run)
    p_atlas_show = atlas_sub.add_parser(
        "show", help="print the committed frontier"
    )
    p_atlas_show.add_argument(
        "--atlas", default="ATLAS.json",
        help="atlas file (default: %(default)s)",
    )
    p_atlas_check = atlas_sub.add_parser(
        "check", help="validate structure, salts, and replayability"
    )
    p_atlas_check.add_argument(
        "--atlas", default="ATLAS.json",
        help="atlas file (default: %(default)s)",
    )
    p_atlas_check.add_argument(
        "--replay",
        action="store_true",
        help="re-execute every live entry through the plain engine "
        "and require bit-identical scalars",
    )
    p_atlas_check.add_argument(
        "--strict",
        action="store_true",
        help="treat stale entries (salt vector superseded by code "
        "edits) as failures instead of warnings",
    )

    p_cache = sub.add_parser(
        "cache", help="inspect / purge the on-disk runtime caches"
    )
    p_cache.add_argument(
        "action",
        choices=("info", "purge"),
        help="info: show entry counts and sizes; purge: delete entries",
    )
    p_cache.add_argument(
        "what",
        nargs="?",
        choices=("cells", "topologies", "replays", "atlas", "all"),
        default="all",
        help="which cache to purge (default: all; ignored by info)",
    )
    p_cache.add_argument(
        "--cache-dir",
        default=str(DEFAULT_CACHE_DIR),
        help="cell cache location (default: results/.cache)",
    )
    p_cache.add_argument(
        "--topology-dir",
        default=str(DEFAULT_TOPOLOGY_DIR),
        help="topology store location (default: results/.topologies)",
    )
    p_cache.add_argument(
        "--stale",
        action="store_true",
        help=(
            "purge only entries whose per-subsystem salt vector no "
            "longer matches the current code (superseded or legacy "
            "envelopes); live entries survive"
        ),
    )
    _add_replay_dir_flag(p_cache)
    _add_atlas_dir_flag(p_cache)

    p_metrics = sub.add_parser(
        "metrics", help="render a metrics snapshot file"
    )
    p_metrics.add_argument(
        "action", choices=("dump",),
        help="dump: print the snapshot in the chosen format",
    )
    p_metrics.add_argument(
        "snapshot",
        nargs="?",
        default=DEFAULT_METRICS_PATH,
        help="snapshot file written by --metrics "
        "(default: %(default)s)",
    )
    p_metrics.add_argument(
        "--format",
        choices=("json", "prometheus"),
        default="json",
        help="output format (default: json)",
    )

    p_top = sub.add_parser(
        "top", help="metrics dashboard from a snapshot file"
    )
    p_top.add_argument(
        "snapshot",
        nargs="?",
        default=DEFAULT_METRICS_PATH,
        help="snapshot file written by --metrics "
        "(default: %(default)s)",
    )
    p_top.add_argument(
        "--watch",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="re-read the snapshot every SECONDS and redraw on change "
        "(0 = render once and exit)",
    )

    p_perf = sub.add_parser(
        "perf", help="append-only perf ledger over BENCH_*.json"
    )
    p_perf.add_argument(
        "--ledger",
        default="PERF_LEDGER.jsonl",
        help="ledger path (default: %(default)s)",
    )
    perf_sub = p_perf.add_subparsers(dest="perf_command", required=True)
    p_perf_rec = perf_sub.add_parser(
        "record", help="append bench runs to the ledger"
    )
    p_perf_rec.add_argument(
        "benches", nargs="*",
        help="bench JSON files (default: every committed BENCH_*.json)",
    )
    p_perf_rec.add_argument(
        "--profile", default=None,
        help="force the profile (required for ambiguous schema-1 files)",
    )
    perf_sub.add_parser("show", help="print the per-profile history")
    p_perf_chk = perf_sub.add_parser(
        "check", help="unified regression gate against the ledger"
    )
    p_perf_chk.add_argument(
        "--candidate", action="append", default=[],
        metavar="PROFILE=PATH",
        help="fresh bench output to gate (repeatable)",
    )
    p_perf_chk.add_argument(
        "--max-regression", type=float, default=0.30,
        help="tolerated fractional metric drop (default 0.30)",
    )

    from repro.serve.protocol import DEFAULT_SOCKET

    p_serve = sub.add_parser(
        "serve",
        help="long-lived job daemon over a unix socket",
        description=(
            "Run the sweep/check/worstcase job daemon. Clients submit "
            "JSON job specs over the unix socket (repro submit) and "
            "stream schema-versioned repro.obs events back. Admission "
            "is bounded (queue + per-job cell/wall budgets) and "
            "duplicate submissions attach to the in-flight or cached "
            "job instead of re-running it."
        ),
    )
    p_serve.add_argument(
        "--socket", default=DEFAULT_SOCKET,
        help="unix socket path (default: %(default)s)",
    )
    p_serve.add_argument(
        "--max-queue", type=int, default=64,
        help="admission queue bound; a full queue rejects "
        "(default: %(default)s)",
    )
    p_serve.add_argument(
        "--max-cells", type=int, default=512,
        help="largest per-job cell budget (default: %(default)s)",
    )
    p_serve.add_argument(
        "--job-timeout", type=float, default=120.0,
        help="per-job wall budget in seconds, 0 = unbounded "
        "(default: %(default)s)",
    )
    p_serve.add_argument(
        "--cell-timeout", type=float, default=30.0,
        help="per-cell budget cap in seconds, 0 = unbounded "
        "(default: %(default)s)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=0,
        help="executor worker processes (default: in-process cells)",
    )
    p_serve.add_argument(
        "--backend",
        choices=("serial", "fork", "steal"),
        default="steal",
        help=(
            "execution backend for multi-worker jobs; the default "
            "work-stealing pool interleaves queued jobs' cells "
            "(largest first) instead of running head-of-line "
            "(default: %(default)s)"
        ),
    )
    p_serve.add_argument(
        "--no-cache", action="store_true",
        help="skip the on-disk cell result cache",
    )
    p_serve.add_argument(
        "--cache-dir", default=str(DEFAULT_CACHE_DIR),
        help="cell cache location (default: %(default)s)",
    )
    p_serve.add_argument(
        "--topology-dir", default=str(DEFAULT_TOPOLOGY_DIR),
        help="compiled-topology store (default: %(default)s)",
    )
    _add_telemetry_flags(p_serve)

    p_submit = sub.add_parser(
        "submit", help="submit a job to the serve daemon"
    )
    p_submit.add_argument(
        "spec",
        help="job spec: a JSON object, @FILE, or - for stdin "
        '(e.g. \'{"kind": "sweep", "algorithm": "flooding"}\')',
    )
    p_submit.add_argument(
        "--socket", default=DEFAULT_SOCKET,
        help="daemon socket path (default: %(default)s)",
    )
    p_submit.add_argument(
        "--timeout", type=float, default=300.0,
        help="client-side socket timeout in seconds "
        "(default: %(default)s)",
    )
    p_submit.add_argument(
        "--no-watch", action="store_true",
        help="submit and print the ack instead of streaming events "
        "until the job finishes",
    )

    p_jobs = sub.add_parser(
        "jobs", help="list the serve daemon's jobs"
    )
    p_jobs.add_argument(
        "job", nargs="?", default=None,
        help="job id: print that job's full status instead of the list",
    )
    p_jobs.add_argument(
        "--socket", default=DEFAULT_SOCKET,
        help="daemon socket path (default: %(default)s)",
    )
    p_jobs.add_argument(
        "--timeout", type=float, default=30.0,
        help="client-side socket timeout (default: %(default)s)",
    )
    p_jobs.add_argument(
        "--stats", action="store_true",
        help="print daemon stats (queue depth, uptime, metrics) "
        "instead of the job list",
    )

    return parser


def _add_replay_dir_flag(parser: argparse.ArgumentParser) -> None:
    from repro.check.controller import DEFAULT_REPLAY_DIR

    parser.add_argument(
        "--replay-dir",
        default=str(DEFAULT_REPLAY_DIR),
        help="schedule replay artifact dir (default: results/.replays)",
    )


def _add_atlas_dir_flag(parser: argparse.ArgumentParser) -> None:
    from repro.opt.atlas import DEFAULT_ATLAS_REPLAY_DIR

    parser.add_argument(
        "--atlas-dir",
        default=str(DEFAULT_ATLAS_REPLAY_DIR),
        help="atlas replay artifact dir (default: results/.atlas)",
    )


def _add_executor_flags(parser: argparse.ArgumentParser) -> None:
    """The ParallelSweepExecutor knobs, shared by cell-based commands."""
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: cpu count; 0/1 = in-process)",
    )
    parser.add_argument(
        "--exec-backend",
        choices=("serial", "fork", "steal"),
        default="fork",
        help=(
            "execution backend for the multi-worker path "
            "(repro.experiments.backends): fork = chunked process "
            "pool, steal = shared-queue work stealing (largest cells "
            "first), serial = force inline. Rows are bit-identical "
            "across all three (default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the on-disk result cache (force recompute)",
    )
    parser.add_argument(
        "--cache-dir",
        default=str(DEFAULT_CACHE_DIR),
        help="cell cache location (default: results/.cache)",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        help="per-cell wall-clock budget in seconds",
    )
    parser.add_argument(
        "--topology-dir",
        default=str(DEFAULT_TOPOLOGY_DIR),
        help=(
            "compiled-topology artifact store location "
            "(default: results/.topologies)"
        ),
    )
    parser.add_argument(
        "--no-topology-store",
        action="store_true",
        help=(
            "skip the on-disk topology store (the in-process "
            "compiled-topology cache stays active)"
        ),
    )
    parser.add_argument(
        "--flight-recorder",
        type=int,
        default=None,
        metavar="N",
        help=(
            "keep the last N trace events per cell and dump them into "
            "failure records (bounded memory)"
        ),
    )
    _add_telemetry_flags(parser)


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    """Telemetry/progress knobs (also used by the single-run command)."""
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="stream structured JSONL run events to this file",
    )
    parser.add_argument(
        "--progress",
        choices=("auto", "on", "off", "top"),
        default="auto",
        help="live progress line on stderr (auto: only on a TTY; "
        "top: the multi-line metrics dashboard, pair with --metrics)",
    )
    parser.add_argument(
        "--metrics",
        nargs="?",
        const=DEFAULT_METRICS_PATH,
        default=None,
        metavar="PATH",
        help="enable the metrics registry and write its JSON snapshot "
        f"on exit (default PATH: {DEFAULT_METRICS_PATH})",
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "table1": _cmd_table1,
        "sweep": _cmd_sweep,
        "lowerbounds": _cmd_lowerbounds,
        "report": _cmd_report,
        "check": _cmd_check,
        "worstcase": _cmd_worstcase,
        "atlas": _cmd_atlas,
        "cache": _cmd_cache,
        "metrics": _cmd_metrics,
        "top": _cmd_top,
        "perf": _cmd_perf,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "jobs": _cmd_jobs,
    }
    metrics_path = getattr(args, "metrics", None)
    if not metrics_path:
        return handlers[args.command](args)

    # --metrics: install a live registry for the duration of the
    # command, then persist its snapshot (even when the command fails —
    # the partial snapshot is what you debug with).
    import json
    from pathlib import Path

    from repro.obs.metrics import MetricsRegistry, set_global_registry

    registry = MetricsRegistry()
    previous = set_global_registry(registry)
    try:
        return handlers[args.command](args)
    finally:
        set_global_registry(previous)
        out = Path(metrics_path)
        if out.parent != Path(""):
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            json.dumps(registry.snapshot(), indent=2, sort_keys=True)
            + "\n"
        )
        print(f"metrics snapshot: {out}", file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
