"""The KT1 lower-bound graph class 𝒢ₖ (Sec 2.2, Figure 2).

Start from the Lazebnik–Ustimenko bipartite graph D(k, q) with n = q^k
vertices per side (girth >= k + 5 for odd k, Fact 1), call the point
side V (*centers*, initially awake) and the line side U; then attach a
pendant w_i to every center v_i.  Every center has degree
d = n^{1/k} + 1, the graph has Omega(n^{1+1/k}) edges, and — because of
the girth — no information about a center's neighborhood can take a
shortcut around any single incident edge within k + 2 rounds (the
engine of Lemmas 5 and 6).

The input distribution fixes the center IDs (v_j gets 2n + j) and
assigns the IDs of U ∪ W by a uniformly random permutation of [2n]
(opposite to class 𝒢, where ports were random and IDs fixed — under
KT1 ports are irrelevant and IDs carry the hidden information).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.highgirth import DkqGraph, dkq_graph
from repro.models.congest import congest_model, local_model
from repro.models.knowledge import Knowledge, NetworkSetup
from repro.models.ports import PortAssignment


@dataclass
class ClassGk:
    """One instance of the class-𝒢ₖ topology (IDs sampled separately)."""

    k: int
    q: int
    n: int  # nodes per original side (= q^k)
    graph: Graph
    centers: List  # the point side + their labels
    padding: List  # the line side (U)
    pendants: List
    matching: Dict
    dkq: DkqGraph

    @property
    def center_degree(self) -> int:
        """d = n^{1/k} + 1 (Fact 1.1)."""
        return self.q + 1

    def crucial_neighbor(self, center):
        return self.matching[center]

    def core_edge_count(self) -> int:
        """|E(D(k,q))| = q * q^k = n^{1 + 1/k} (Fact 1.2)."""
        return self.q ** (self.k + 1)

    # ------------------------------------------------------------------
    def make_setup(
        self,
        seed: random.Random | int | None = None,
        bandwidth: str = "LOCAL",
        id_swap: Optional[Tuple] = None,
    ) -> NetworkSetup:
        """Sample an ID assignment: centers fixed at 2n + j, U ∪ W
        uniformly permuted over [2n].

        ``id_swap=(a, b)`` additionally swaps the sampled IDs of
        vertices a and b — the configuration-surgery primitive of the
        Lemma 5/6 experiments (Figure 3).
        """
        rng = seed if isinstance(seed, random.Random) else random.Random(seed)
        ids: Dict = {}
        for j, v in enumerate(self.centers, start=1):
            ids[v] = 2 * self.n + j
        pool = list(range(1, 2 * self.n + 1))
        rng.shuffle(pool)
        others = self.padding + self.pendants
        for vertex, nid in zip(others, pool):
            ids[vertex] = nid
        if id_swap is not None:
            a, b = id_swap
            ids[a], ids[b] = ids[b], ids[a]
        ports = PortAssignment.canonical(self.graph)
        bw = (
            local_model()
            if bandwidth == "LOCAL"
            else congest_model(self.graph.num_vertices)
        )
        return NetworkSetup(
            graph=self.graph,
            ids=ids,
            ports=ports,
            knowledge=Knowledge.KT1,
            bandwidth=bw,
        )


def build_class_gk(k: int, q: int) -> ClassGk:
    """Construct 𝒢ₖ from D(k, q) plus the pendant matching.

    ``k`` should be odd and >= 3 for the girth >= k + 5 guarantee; even
    k still yields girth >= k + 4 and is accepted for experiments.
    """
    if k < 2:
        raise GraphError("class 𝒢ₖ requires k >= 2")
    dkq = dkq_graph(k, q)
    g = dkq.graph.copy()
    centers = list(dkq.points)
    padding = list(dkq.lines)
    pendants = []
    matching: Dict = {}
    for i, v in enumerate(centers):
        w = ("W", i)
        g.add_vertex(w)
        g.add_edge(v, w)
        pendants.append(w)
        matching[v] = w
    return ClassGk(
        k=k,
        q=q,
        n=q**k,
        graph=g,
        centers=centers,
        padding=padding,
        pendants=pendants,
        matching=matching,
        dkq=dkq,
    )


def verify_fact1(inst: ClassGk) -> Dict[str, bool]:
    """Check the three structural claims of Fact 1 on an instance."""
    from repro.graphs.traversal import girth as graph_girth

    d = inst.center_degree
    degrees_ok = all(
        inst.graph.degree(v) == d for v in inst.centers
    )
    # Fact 1.2: core has Omega(n^{1+1/k}) edges; exactly q^{k+1} plus
    # the n pendant edges.
    edges_ok = inst.graph.num_edges == inst.core_edge_count() + inst.n
    # Pendant edges cannot create cycles, so the girth of 𝒢ₖ equals the
    # girth of D(k, q).
    girth_ok = graph_girth(inst.graph) >= inst.dkq.guaranteed_girth
    return {
        "center_degree": degrees_ok,
        "edge_count": edges_ok,
        "girth": girth_ok,
    }
