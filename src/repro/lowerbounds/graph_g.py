"""The KT0 lower-bound graph class 𝒢 (Sec 2, Figure 1).

A graph of 3n nodes over three sets:

* U = {u_1, ..., u_n} — padding nodes;
* V = {v_1, ..., v_n} — the *center* nodes, all initially awake;
* W = {w_1, ..., w_n} — sleeping pendant nodes.

Edges: a complete bipartite graph between U and V (every center has
degree n + 1), plus the perfect matching {v_i, w_i}.  w_i is v_i's
*crucial neighbor*: the only way w_i ever wakes is a message straight
from v_i, and under KT0 v_i has no idea which of its n + 1 ports leads
there.  Node IDs follow a fixed permutation of [3n]; the randomness of
the input distribution lives entirely in the *port mappings*, sampled
uniformly and independently per node (Theorem 1's input distribution).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.models.knowledge import Knowledge, NetworkSetup
from repro.models.congest import local_model, congest_model
from repro.models.ports import PortAssignment

# Vertex labels: ("U", i), ("V", i), ("W", i) for i in range(n).


@dataclass
class ClassG:
    """One instance of the class-𝒢 construction.

    ``centers`` (V) is the canonical initially-awake set; ``matching``
    records each center's crucial pendant.
    """

    n: int
    graph: Graph
    centers: List[Tuple[str, int]]
    padding: List[Tuple[str, int]]
    pendants: List[Tuple[str, int]]
    matching: Dict[Tuple[str, int], Tuple[str, int]]  # v_i -> w_i

    def crucial_neighbor(self, center) -> Tuple[str, int]:
        return self.matching[center]

    def make_setup(
        self,
        seed: random.Random | int | None = None,
        bandwidth: str = "LOCAL",
        knowledge: Knowledge = Knowledge.KT0,
    ) -> NetworkSetup:
        """Sample G ~ 𝒢: fixed IDs, uniformly random port mappings.

        The default KT0 LOCAL matches Theorem 1's setting; tests also
        use KT1 for cross-checks.
        """
        rng = seed if isinstance(seed, random.Random) else random.Random(seed)
        ids = fixed_ids(self)
        ports = PortAssignment.random(self.graph, rng)
        bw = (
            local_model()
            if bandwidth == "LOCAL"
            else congest_model(self.graph.num_vertices)
        )
        return NetworkSetup(
            graph=self.graph,
            ids=ids,
            ports=ports,
            knowledge=knowledge,
            bandwidth=bw,
        )


def fixed_ids(inst: "ClassG") -> Dict:
    """The fixed ID permutation of Sec 2: u_i -> i+1, w_i -> n+i+1,
    v_i -> 2n+i+1 (an arbitrary but fixed bijection onto [3n])."""
    ids: Dict = {}
    for i in range(inst.n):
        ids[("U", i)] = i + 1
        ids[("W", i)] = inst.n + i + 1
        ids[("V", i)] = 2 * inst.n + i + 1
    return ids


def build_class_g(n: int) -> ClassG:
    """Construct the (deterministic) topology of 𝒢 with parameter n."""
    if n < 1:
        raise GraphError("class 𝒢 requires n >= 1")
    g = Graph()
    centers = [("V", i) for i in range(n)]
    padding = [("U", i) for i in range(n)]
    pendants = [("W", i) for i in range(n)]
    for v in padding + centers + pendants:
        g.add_vertex(v)
    for i in range(n):
        for j in range(n):
            g.add_edge(("U", i), ("V", j))
    matching = {}
    for i in range(n):
        g.add_edge(("V", i), ("W", i))
        matching[("V", i)] = ("W", i)
    return ClassG(
        n=n,
        graph=g,
        centers=centers,
        padding=padding,
        pendants=pendants,
        matching=matching,
    )
