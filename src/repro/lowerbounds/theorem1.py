"""Theorem 1 harness — the advice/message trade-off on class 𝒢.

Theorem 1 (KT0 LOCAL with advice): if a scheme's expected message
complexity on 𝒢 is at most n^2 / (2^{beta+4} log2 n), its average
advice length is Omega(beta) bits.  A lower bound cannot be executed,
so this harness validates it in the two ways available to a
reproduction:

1. **frontier tracing** — run the matching upper bound
   (:class:`~repro.core.prefix_advice.PrefixAdvice`) for a sweep of
   beta and confirm that measured messages scale as n^2 / 2^beta while
   measured advice is beta + O(1) bits per center: every point of the
   theorem's trade-off curve is realizable, and the product
   messages * 2^{advice} stays ~n^2;

2. **information accounting** — estimate the mutual information between
   a center's advice string and the hidden pendant port X_i across
   resampled port mappings, confirming the proof's core claim that
   reducing the port-support (Lemma 3) requires the advice to actually
   *carry* ~beta bits about X_i.

It also measures the Lemma-2 quantity: the fraction of centers whose
executions touch at most n/2^beta of their ports (event Sml_i).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.advice.bits import Bits
from repro.core.prefix_advice import PrefixAdvice
from repro.lowerbounds.graph_g import ClassG, build_class_g
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup


@dataclass
class TradeoffPoint:
    """One measured point of the Theorem-1 frontier."""

    n: int
    beta: int
    messages: float
    advice_avg_bits: float
    advice_max_bits: float
    lb_message_bound: float
    product: float  # messages * 2^beta — should be ~n^2 (constant in beta)


def theorem1_message_bound(n: int, beta: int) -> float:
    """The Theorem-1 threshold: n^2 / (2^{beta+4} log2 n)."""
    return n**2 / (2 ** (beta + 4) * math.log2(max(2, n)))


def run_prefix_tradeoff(
    n: int,
    betas: Sequence[int],
    trials: int = 3,
    seed: int = 0,
) -> List[TradeoffPoint]:
    """Measure the advice/message frontier on 𝒢(n) for each beta."""
    inst = build_class_g(n)
    points = []
    for beta in betas:
        msgs: List[float] = []
        adv_avg = adv_max = 0.0
        for t in range(trials):
            setup = inst.make_setup(seed=seed * 1_000 + 31 * beta + t)
            adversary = Adversary(
                WakeSchedule.all_at_once(inst.centers), UnitDelay()
            )
            result = run_wakeup(
                setup, PrefixAdvice(beta=beta), adversary, engine="async",
                seed=seed + t,
            )
            msgs.append(result.messages)
            adv_avg = result.advice_avg_bits
            adv_max = result.advice_max_bits
        mean_msgs = sum(msgs) / len(msgs)
        points.append(
            TradeoffPoint(
                n=n,
                beta=beta,
                messages=mean_msgs,
                advice_avg_bits=adv_avg,
                advice_max_bits=adv_max,
                lb_message_bound=theorem1_message_bound(n, beta),
                product=mean_msgs * 2**beta,
            )
        )
    return points


# ----------------------------------------------------------------------
# Lemma 2 statistics: the Sml_i events
# ----------------------------------------------------------------------
def small_port_usage_fraction(
    n: int, beta: int, seed: int = 0
) -> float:
    """Fraction of centers that touch at most n / 2^beta ports in a
    prefix-advice execution (the event Sml_i of Sec 2.1)."""
    inst = build_class_g(n)
    setup = inst.make_setup(seed=seed)
    adversary = Adversary(WakeSchedule.all_at_once(inst.centers), UnitDelay())
    result = run_wakeup(
        setup, PrefixAdvice(beta=beta), adversary, engine="async",
        seed=seed, record_trace=True,
    )
    threshold = n / 2**beta
    used_ports: Dict = {v: set() for v in inst.centers}
    assert result.trace is not None
    for msg in result.trace.sends():
        if msg.src in used_ports:
            used_ports[msg.src].add(msg.src_port)
        if msg.dst in used_ports:
            used_ports[msg.dst].add(msg.dst_port)
    small = sum(
        1 for v in inst.centers if len(used_ports[v]) <= threshold
    )
    return small / len(inst.centers)


# ----------------------------------------------------------------------
# Information accounting
# ----------------------------------------------------------------------
def advice_port_samples(
    n: int, beta: int, samples: int, seed: int = 0,
    center_index: int = 0,
) -> List[Tuple[int, Tuple[int, ...]]]:
    """Draw (X_i, advice_i) pairs for one fixed center across freshly
    sampled port mappings of 𝒢(n).

    X_i is the hidden pendant port at center i; advice_i is the bit
    string the PrefixAdvice oracle assigns it.  Feeding these pairs to
    :func:`repro.analysis.information.mutual_information` estimates
    I[X_i : Y_i], the quantity Theorem 1's proof bounds from below.
    """
    inst = build_class_g(n)
    scheme = PrefixAdvice(beta=beta)
    center = inst.centers[center_index]
    pendant = inst.matching[center]
    rng = random.Random(seed)
    out = []
    for _ in range(samples):
        setup = inst.make_setup(seed=rng.randrange(2**60))
        advice = scheme.compute_advice(setup)
        x = setup.ports.port(center, pendant)
        y = tuple(advice[center])
        out.append((x, y))
    return out
