"""Theorem 2 harness — time-restricted message complexity on class 𝒢ₖ.

Theorem 2: any (k+1)-time KT1 LOCAL algorithm for executions with
rho_awk = 1 sends Omega(n^{1+1/k}) messages in expectation.  The
harness validates the bound's shape from both sides:

* **matching upper bound** — :class:`OneShotProbe` (every
  adversary-woken center broadcasts once) solves wake-up on 𝒢ₖ in a
  single time unit with exactly n * (n^{1/k} + 1) = Theta(n^{1+1/k})
  messages: the lower bound is tight for constant-time algorithms;
* **necessity of the time restriction** — the unrestricted Theorem-3
  DFS algorithm beats the bound with O(n log n) messages, at the cost
  of Theta(n) time (the paper's remark after Theorem 3);
* **ID-swap indistinguishability** (Lemmas 5/6, Figure 3) —
  :func:`id_swap_transcript_check` runs a deterministic
  transcript-flooding algorithm on two configurations that differ only
  by swapping the IDs of a center's pendant w* and a non-neighbor-
  visible node u, and verifies that, thanks to girth >= k + 5, the
  center's received transcript over all *other* edges is identical for
  the first k + 2 rounds — i.e. within the time limit, only the edge
  {u, v*} itself can tell the center which neighbor is its needle.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.base import BOTH, WakeUpAlgorithm
from repro.lowerbounds.graph_gk import ClassGk, build_class_gk
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.node import NodeAlgorithm, NodeContext
from repro.sim.runner import WakeUpResult, run_wakeup


class OneShotProbe(WakeUpAlgorithm):
    """Adversary-woken nodes broadcast once; everyone else stays quiet.

    On 𝒢ₖ with all centers awake this is a correct 1-time-unit wake-up
    algorithm (the centers dominate the graph) with message complexity
    exactly sum of center degrees = n * (n^{1/k} + 1)."""

    name = "one-shot-probe"
    synchrony = BOTH
    requires_kt1 = True
    uses_advice = False
    congest_safe = True

    class _Node(NodeAlgorithm):
        def on_wake(self, ctx: NodeContext) -> None:
            if ctx.wake_cause == "adversary":
                ctx.broadcast(("probe",))

    def make_node(self, vertex, setup) -> NodeAlgorithm:
        return self._Node()


@dataclass
class Theorem2Point:
    k: int
    q: int
    n: int
    algorithm: str
    messages: int
    time: float
    lb_bound: float  # n^{1 + 1/k}


def run_time_restricted(
    k: int, q: int, algorithm: WakeUpAlgorithm, seed: int = 0
) -> Theorem2Point:
    """Run one algorithm on 𝒢ₖ with all centers awake (rho_awk = 1)."""
    inst = build_class_gk(k, q)
    setup = inst.make_setup(seed=seed)
    adversary = Adversary(
        WakeSchedule.all_at_once(inst.centers), UnitDelay()
    )
    result = run_wakeup(setup, algorithm, adversary, engine="async", seed=seed)
    return Theorem2Point(
        k=k,
        q=q,
        n=inst.n,
        algorithm=algorithm.name,
        messages=result.messages,
        time=result.time,
        lb_bound=inst.n ** (1 + 1 / k),
    )


# ----------------------------------------------------------------------
# The Lemma 5/6 indistinguishability experiment
# ----------------------------------------------------------------------
class TranscriptFlooding(WakeUpAlgorithm):
    """Deterministic full-information protocol, depth-limited.

    Every adversary-woken node broadcasts a digest of its KT1 knowledge
    (its own ID and its sorted neighbor-ID list); every node forwards
    each *new* payload it sees to all neighbors while the payload's hop
    count is below ``depth``.  Within r rounds, a node has received
    exactly the depth-<= r information cone that any r-round LOCAL
    algorithm could possibly gather — making it the canonical witness
    for "what can v* know after k + 2 rounds"."""

    name = "transcript-flooding"
    synchrony = BOTH
    requires_kt1 = True
    uses_advice = False
    congest_safe = False

    def __init__(self, depth: int):
        self.depth = depth

    class _Node(NodeAlgorithm):
        def __init__(self, depth: int):
            self._depth = depth
            self._seen: Set = set()

        def on_wake(self, ctx: NodeContext) -> None:
            if ctx.wake_cause != "adversary":
                return
            digest = (ctx.node_id, tuple(sorted(ctx.neighbor_ids())))
            self._seen.add(digest)
            ctx.broadcast(("tf", 1, digest))

        def on_message(self, ctx: NodeContext, port: int, payload: Any) -> None:
            _, hops, digest = payload
            if digest in self._seen:
                return
            self._seen.add(digest)
            # On first contact, also inject our own digest into the flood.
            own = (ctx.node_id, tuple(sorted(ctx.neighbor_ids())))
            if own not in self._seen:
                self._seen.add(own)
                if 1 <= self._depth:
                    ctx.broadcast(("tf", 1, own))
            if hops < self._depth:
                ctx.broadcast(("tf", hops + 1, digest))

    def make_node(self, vertex, setup) -> NodeAlgorithm:
        return self._Node(self.depth)


def _center_transcript(
    result: WakeUpResult, center, exclude, horizon: float
) -> List[Tuple[float, Any]]:
    """Messages received by ``center`` up to ``horizon``, excluding
    those arriving from ``exclude``, normalized for comparison."""
    assert result.trace is not None
    out = []
    for ev in result.trace.events:
        if ev.kind != "deliver":
            continue
        msg = ev.detail
        if msg.dst != center or msg.src == exclude:
            continue
        if ev.time > horizon + 1e-9:
            continue
        out.append((round(ev.time, 6), msg.src, msg.payload))
    return sorted(out, key=repr)


@dataclass
class SwapExperiment:
    """Outcome of one Lemma-5/6 indistinguishability check."""

    center: Any
    swapped_u: Any
    transcripts_match: bool
    echoes_only: bool
    direct_edge_differs: bool
    horizon: float


def _distinguishing_digests(r1: WakeUpResult, r2: WakeUpResult) -> Set[Any]:
    """Digests that differ between the two executions.

    A digest (origin_id, neighbor_ids) *distinguishes* the runs iff the
    node with that origin ID reports a different neighborhood in the
    other run (or exists in only one).  Digests that merely mention a
    swapped ID inside an unchanged neighbor *set* (e.g. the center's
    own digest) carry no distinguishing information and are exempt.
    """

    def origin_map(result: WakeUpResult) -> Dict[int, Any]:
        out: Dict[int, Any] = {}
        assert result.trace is not None
        for msg in result.trace.sends():
            digest = msg.payload[2]
            out[digest[0]] = digest
        return out

    m1, m2 = origin_map(r1), origin_map(r2)
    diff: Set[Any] = set()
    for origin in set(m1) | set(m2):
        if m1.get(origin) != m2.get(origin):
            if origin in m1:
                diff.add(m1[origin])
            if origin in m2:
                diff.add(m2[origin])
    return diff


def id_swap_transcript_check(
    k: int,
    q: int,
    seed: int = 0,
    center_index: int = 0,
    u_index: int = 0,
) -> SwapExperiment:
    """Run TranscriptFlooding on G[rho] and on G[rho'] (IDs of w* and a
    chosen core neighbor u swapped) and compare the center's view.

    Girth >= k + 5 implies that, within k + 2 time units, no *new*
    information about the swap can reach v* except over the direct
    edges {u, v*} and {w*, v*} (Lemmas 5/6).  Concretely we verify:

    * ``transcripts_match`` — deliveries whose content does not involve
      the swapped IDs are identical in both executions;
    * ``echoes_only`` — every delivery that *does* involve a swapped ID
      and arrives over a non-direct edge is an echo: the same digest
      already reached v* strictly earlier over a direct edge (v* spread
      it itself; no independent path exists at this horizon).
    """
    inst = build_class_gk(k, q)
    center = inst.centers[center_index]
    w_star = inst.matching[center]
    core_nbrs = [
        u for u in inst.graph.neighbors(center) if u != w_star
    ]
    u = core_nbrs[u_index]
    horizon = float(k + 2)
    direct = {u, w_star}

    adversary = Adversary(
        WakeSchedule.all_at_once(inst.centers), UnitDelay()
    )
    base_setup = inst.make_setup(seed=seed)
    swap_setup = inst.make_setup(seed=seed, id_swap=(u, w_star))

    r1 = run_wakeup(
        base_setup, TranscriptFlooding(depth=k + 2), adversary,
        engine="async", seed=1, record_trace=True,
    )
    r2 = run_wakeup(
        swap_setup, TranscriptFlooding(depth=k + 2), adversary,
        engine="async", seed=1, record_trace=True,
    )

    distinguishing = _distinguishing_digests(r1, r2)
    views = []
    echoes_only = True
    for result in (r1, r2):
        full = _center_transcript(result, center, exclude=None, horizon=horizon)
        clean = []
        direct_digests_seen: Dict[Any, float] = {}
        for time, src, payload in sorted(full):
            digest = payload[2]
            if src in direct:
                direct_digests_seen.setdefault(digest, time)
            if digest not in distinguishing:
                clean.append((time, src, payload))
            elif src not in direct:
                first_direct = direct_digests_seen.get(digest)
                if first_direct is None or first_direct >= time:
                    echoes_only = False
        views.append(sorted(clean, key=repr))
    match = views[0] == views[1]

    # Meanwhile the *direct* information (digests of u / w*) genuinely
    # differs between the two configurations.
    d1 = _center_transcript(r1, center, exclude=None, horizon=horizon)
    d2 = _center_transcript(r2, center, exclude=None, horizon=horizon)
    direct_differs = d1 != d2

    return SwapExperiment(
        center=center,
        swapped_u=u,
        transcripts_match=match,
        echoes_only=echoes_only,
        direct_edge_differs=direct_differs,
        horizon=horizon,
    )
