"""The Needles-in-Haystack (NIH) problem and the Lemma-1 reduction.

NIH (Sec 2): on a pendant-matching lower-bound graph, every center v_i
must *output* how to reach its crucial pendant w_i — the connecting
port under KT0, or w_i's ID under KT1.  Lemma 1 turns any wake-up
algorithm A into an NIH algorithm B at the cost of +n messages and +1
time: each pendant, upon being woken, sends a special response message
back over its single edge, telling the center that it succeeded (and,
implicitly, which port/ID is the crucial one).

:class:`NIHWrapper` implements exactly that reduction as an algorithm
transformer, so every wake-up algorithm in the repository can be
evaluated as an NIH solver on 𝒢 and 𝒢ₖ.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional

from repro.core.base import WakeUpAlgorithm
from repro.models.knowledge import Knowledge, NetworkSetup
from repro.sim.node import NodeAlgorithm, NodeContext

RESPONSE = "nih-response"

Vertex = Hashable


class _PendantNode(NodeAlgorithm):
    """Wraps the inner node at a pendant: first contact triggers the
    special response message (Lemma 1), then behaves as the inner
    algorithm would."""

    def __init__(self, inner: NodeAlgorithm):
        self._inner = inner
        self._responded = False

    def on_wake(self, ctx: NodeContext) -> None:
        self._inner.on_wake(ctx)

    def on_message(self, ctx: NodeContext, port: int, payload: Any) -> None:
        if not self._responded:
            self._responded = True
            ctx.send(port, (RESPONSE,))
        self._inner.on_message(ctx, port, payload)

    def on_round(self, ctx: NodeContext) -> None:
        self._inner.on_round(ctx)

    def wants_round(self) -> bool:
        return self._inner.wants_round()


class _CenterNode(NodeAlgorithm):
    """Wraps the inner node at a center: captures the response message
    and records the NIH output (port or neighbor ID)."""

    def __init__(self, inner: NodeAlgorithm, sink: Dict, vertex: Vertex, kt1: bool):
        self._inner = inner
        self._sink = sink
        self._vertex = vertex
        self._kt1 = kt1

    def on_wake(self, ctx: NodeContext) -> None:
        self._inner.on_wake(ctx)

    def on_message(self, ctx: NodeContext, port: int, payload: Any) -> None:
        if isinstance(payload, tuple) and payload[:1] == (RESPONSE,):
            if self._vertex not in self._sink:
                if self._kt1:
                    self._sink[self._vertex] = ctx.neighbor_id(port)
                else:
                    self._sink[self._vertex] = port
            return  # the response is consumed by the reduction layer
        self._inner.on_message(ctx, port, payload)

    def on_round(self, ctx: NodeContext) -> None:
        self._inner.on_round(ctx)

    def wants_round(self) -> bool:
        return self._inner.wants_round()


class NIHWrapper(WakeUpAlgorithm):
    """Lemma 1: wake-up algorithm -> NIH algorithm.

    ``instance`` must expose ``centers``, ``pendants`` and
    ``matching`` (both :class:`~repro.lowerbounds.graph_g.ClassG` and
    :class:`~repro.lowerbounds.graph_gk.ClassGk` do).  After a run,
    :attr:`outputs` maps each center to its recorded output and
    :meth:`correctness` scores it.
    """

    def __init__(self, inner: WakeUpAlgorithm, instance):
        self.inner = inner
        self.instance = instance
        self.outputs: Dict[Vertex, int] = {}
        self.name = f"nih({inner.name})"
        self.synchrony = inner.synchrony
        self.requires_kt1 = inner.requires_kt1
        self.uses_advice = inner.uses_advice
        self.congest_safe = inner.congest_safe
        self._pendant_set = set(instance.pendants)
        self._center_set = set(instance.centers)

    def compute_advice(self, setup: NetworkSetup):
        return self.inner.compute_advice(setup)

    def make_node(self, vertex, setup) -> NodeAlgorithm:
        inner_node = self.inner.make_node(vertex, setup)
        if vertex in self._pendant_set:
            return _PendantNode(inner_node)
        if vertex in self._center_set:
            return _CenterNode(
                inner_node,
                self.outputs,
                vertex,
                kt1=setup.knowledge is Knowledge.KT1,
            )
        return inner_node

    # ------------------------------------------------------------------
    def correctness(self, setup: NetworkSetup) -> float:
        """Fraction of centers whose recorded output identifies their
        crucial pendant."""
        if not self.instance.centers:
            return 1.0
        good = 0
        for v in self.instance.centers:
            w = self.instance.matching[v]
            out = self.outputs.get(v)
            if out is None:
                continue
            if setup.knowledge is Knowledge.KT1:
                expected = setup.id_of(w)
            else:
                expected = setup.ports.port(v, w)
            if out == expected:
                good += 1
        return good / len(self.instance.centers)
