"""Lower-bound constructions and empirical harnesses (Sec 2)."""

from repro.lowerbounds.graph_g import ClassG, build_class_g
from repro.lowerbounds.graph_gk import ClassGk, build_class_gk, verify_fact1
from repro.lowerbounds.nih import NIHWrapper
from repro.lowerbounds.theorem1 import (
    TradeoffPoint,
    advice_port_samples,
    run_prefix_tradeoff,
    small_port_usage_fraction,
    theorem1_message_bound,
)
from repro.lowerbounds.theorem2 import (
    OneShotProbe,
    SwapExperiment,
    Theorem2Point,
    TranscriptFlooding,
    id_swap_transcript_check,
    run_time_restricted,
)

__all__ = [
    "ClassG",
    "build_class_g",
    "ClassGk",
    "build_class_gk",
    "verify_fact1",
    "NIHWrapper",
    "TradeoffPoint",
    "advice_port_samples",
    "run_prefix_tradeoff",
    "small_port_usage_fraction",
    "theorem1_message_bound",
    "OneShotProbe",
    "SwapExperiment",
    "Theorem2Point",
    "TranscriptFlooding",
    "id_swap_transcript_check",
    "run_time_restricted",
]
