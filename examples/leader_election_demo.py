#!/usr/bin/env python3
"""Leader election and configuration broadcast — the library as a
downstream dependency.

Sec 1.3 of the paper motivates wake-up through leader election and MST
under adversarial wake-up.  This example plays the adopter: a cluster
of machines is partially woken by external events at different times;
the cluster must elect a coordinator, agree on a spanning tree for
future control traffic, and distribute a configuration blob — all built
on the repro library's public API.

Run:  python examples/leader_election_demo.py
"""

from __future__ import annotations

from repro.analysis.report import print_table
from repro.apps import FloodingBroadcast, LeaderElection, TreeBroadcast
from repro.graphs.generators import connected_erdos_renyi
from repro.graphs.traversal import diameter, is_tree
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UniformRandomDelay, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup


def main() -> None:
    n = 150
    g = connected_erdos_renyi(n, 8.0 / n, seed=21)
    print(f"cluster: {n} machines, {g.num_edges} links, diameter {diameter(g)}")

    print()
    print("=" * 72)
    print("1. Leader election under staggered adversarial wake-ups")
    print("=" * 72)
    verts = list(g.vertices())
    schedule = WakeSchedule.staggered(
        [(0.0, verts[:3]), (25.0, verts[50:52]), (75.0, verts[100:101])]
    )
    setup = make_setup(g, knowledge=Knowledge.KT1, bandwidth="LOCAL", seed=2)
    algo = LeaderElection()
    result = run_wakeup(
        setup, algo,
        Adversary(schedule, UniformRandomDelay(seed=5)),
        engine="async", seed=7,
    )
    leader = algo.agreed_leader()
    tree = algo.spanning_tree()
    print(
        f"woken in 3 waves; elected leader id {leader}; "
        f"spanning tree valid: {tree is not None and is_tree(tree)}; "
        f"{result.messages} messages, time {result.time:.1f}"
    )

    print()
    print("=" * 72)
    print("2. Configuration broadcast: flooding vs tree advice")
    print("=" * 72)
    setup0 = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=2)
    rows = []
    flood = FloodingBroadcast(payload=0xC0FFEE % 65536)
    r1 = run_wakeup(
        setup0, flood,
        Adversary(WakeSchedule.singleton(verts[0]), UnitDelay()),
        engine="async", seed=3,
    )
    rows.append(
        {
            "strategy": "flooding-broadcast",
            "messages": r1.messages,
            "time": round(r1.time_all_awake, 1),
            "complete": flood.everyone_holds_payload(setup0),
            "advice_bits": 0,
        }
    )
    tb = TreeBroadcast(payload=0xC0FFEE % 65536)
    tb.mark_source(verts[0])
    r2 = run_wakeup(
        setup0, tb,
        Adversary(WakeSchedule.singleton(verts[0]), UnitDelay()),
        engine="async", seed=3,
    )
    rows.append(
        {
            "strategy": "tree-broadcast (Thm 5B)",
            "messages": r2.messages,
            "time": round(r2.time_all_awake, 1),
            "complete": tb.everyone_holds_payload(setup0),
            "advice_bits": r2.advice_max_bits,
        }
    )
    print_table(rows)
    print(
        f"\nthe Theorem-5B backbone distributes the config in "
        f"{r2.messages} messages ({r1.messages / r2.messages:.1f}x fewer), "
        "for a few bytes of provisioned advice per machine."
    )


if __name__ == "__main__":
    main()
