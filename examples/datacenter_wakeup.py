#!/usr/bin/env python3
"""Datacenter Wake-on-LAN scenario — the paper's motivating setting.

Section 1 motivates the wake-up problem with Wake-on-LAN: sleeping
servers listen only for "magic packets", and a message-efficient wake-up
protocol translates directly into fewer packets on the management
network (and, with per-message energy cost, lower energy to resume a
sleeping cluster).

This example models a 3-tier fat-tree-ish datacenter topology (core /
aggregation / rack switches with servers as leaves), lets a maintenance
controller wake a few machines, and compares the wake-up strategies:

* naive flooding (every woken device re-broadcasts);
* the DFS token algorithm (Theorem 3) over the management network;
* the child-encoding advice scheme (Theorem 5B), where the "oracle" is
  the network controller that knows the topology and provisions each
  device with a few bytes of boot-ROM configuration.

Run:  python examples/datacenter_wakeup.py
"""

from __future__ import annotations

from repro.analysis.report import print_table
from repro.core import ChildEncodingAdvice, DfsWakeUp, Flooding
from repro.graphs.graph import Graph
from repro.graphs.traversal import awake_distance, diameter
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UniformRandomDelay, WakeSchedule
from repro.sim.runner import run_wakeup

# Energy model: rough nJ-per-packet figures for a NIC in listen mode.
ENERGY_PER_MESSAGE_NJ = 650.0


def build_datacenter(
    cores: int = 4, aggs_per_core: int = 4, racks_per_agg: int = 4,
    servers_per_rack: int = 8,
) -> Graph:
    """Three switching tiers plus servers, with fat-tree-style
    redundancy: cores fully meshed, every aggregation switch uplinked
    to every core, every rack dual-homed to the aggregation switches of
    its pod, and every server dual-homed to two racks of its pod."""
    g = Graph()
    core_sw = [("core", i) for i in range(cores)]
    for i, c in enumerate(core_sw):
        g.add_vertex(c)
        for c2 in core_sw[:i]:
            g.add_edge(c, c2)
    pods = []
    for ci in range(cores):
        pod = [("agg", ci, a) for a in range(aggs_per_core)]
        pods.append(pod)
        for sw in pod:
            for c in core_sw:
                g.add_edge_safe(sw, c)
    rack_pods = []
    for ci, pod in enumerate(pods):
        racks = [("rack", ci, rk) for rk in range(aggs_per_core * racks_per_agg)]
        rack_pods.append(racks)
        for rk, rack in enumerate(racks):
            # dual-homed: two aggregation uplinks per rack
            g.add_edge(rack, pod[rk % len(pod)])
            g.add_edge(rack, pod[(rk + 1) % len(pod)])
    for ci, racks in enumerate(rack_pods):
        for rk, rack in enumerate(racks):
            buddy = racks[(rk + 1) % len(racks)]
            for s in range(servers_per_rack):
                srv = ("srv", ci, rk, s)
                g.add_edge(srv, rack)
                g.add_edge(srv, buddy)  # dual-homed NIC
    return g


def main() -> None:
    g = build_datacenter()
    controller = ("core", 0)
    print(
        f"datacenter: {g.num_vertices} devices, {g.num_edges} links, "
        f"diameter {diameter(g)}"
    )
    awake = [controller]
    rho = awake_distance(g, awake)
    print(f"controller wake-up: rho_awk = {rho}\n")

    adversary = Adversary(
        WakeSchedule.all_at_once(awake), UniformRandomDelay(seed=7)
    )
    rows = []
    for algo, knowledge, bandwidth in (
        (Flooding(), Knowledge.KT0, "CONGEST"),
        (DfsWakeUp(), Knowledge.KT1, "LOCAL"),
        (ChildEncodingAdvice(), Knowledge.KT0, "CONGEST"),
    ):
        setup = make_setup(g, knowledge=knowledge, bandwidth=bandwidth, seed=3)
        r = run_wakeup(setup, algo, adversary, engine="async", seed=5)
        rows.append(
            {
                "strategy": algo.name,
                "packets": r.messages,
                "time (tau)": round(r.time_all_awake, 1),
                "energy (uJ)": round(
                    r.messages * ENERGY_PER_MESSAGE_NJ / 1000.0, 1
                ),
                "advice/node (bits)": r.advice_max_bits,
            }
        )
        assert r.all_awake
    print_table(rows, title="Waking the whole datacenter from the controller")

    flood, dfs, cen = (row["packets"] for row in rows)
    print(
        f"\nchild-encoding advice cuts wake-up traffic {flood / cen:.1f}x vs "
        f"flooding, using only {rows[2]['advice/node (bits)']} bits of "
        "provisioned configuration per device."
    )


if __name__ == "__main__":
    main()
