#!/usr/bin/env python3
"""The information-sensitivity landscape — advice vs messages vs time.

Walks the three trade-off axes the paper maps out for KT0 CONGEST
advising schemes:

1. the Theorem-1 frontier on the lower-bound class 𝒢: beta bits of
   advice buy a 2^beta reduction in messages, and no scheme can do
   asymptotically better;
2. the Table-1 ladder (Cor 1 / Thm 5A / Thm 5B / Cor 2) on a realistic
   network: four points trading maximum advice against messages/time;
3. the Theorem-6 k-dial: one scheme whose knob slides between
   "tree-like" (few messages, slow) and "dense spanner" (many
   messages, fast).

Run:  python examples/advice_tradeoffs.py
"""

from __future__ import annotations

import math

from repro.analysis.report import print_table
from repro.core import (
    ChildEncodingAdvice,
    Fip06TreeAdvice,
    LogSpannerAdvice,
    SpannerAdvice,
    SqrtThresholdAdvice,
)
from repro.graphs.generators import connected_erdos_renyi
from repro.graphs.traversal import awake_distance
from repro.lowerbounds.theorem1 import run_prefix_tradeoff, theorem1_message_bound
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup


def frontier() -> None:
    print("=" * 72)
    print("1. The Theorem-1 frontier on class 𝒢 (n = 48)")
    print("=" * 72)
    points = run_prefix_tradeoff(n=48, betas=[0, 1, 2, 3, 4, 5], trials=2, seed=1)
    rows = [
        {
            "beta": p.beta,
            "messages": int(p.messages),
            "advice_avg_bits": round(p.advice_avg_bits, 2),
            "msgs x 2^beta": int(p.product),
            "thm1_threshold": round(p.lb_message_bound, 1),
        }
        for p in points
    ]
    print_table(rows)
    print(
        "messages x 2^beta stays ~n^2: every advice bit buys a factor-2\n"
        "message saving, exactly the exchange rate Theorem 1 proves to be\n"
        "optimal."
    )


def ladder() -> None:
    print()
    print("=" * 72)
    print("2. The Table-1 advising-scheme ladder (dense ER, n = 300)")
    print("=" * 72)
    n = 300
    g = connected_erdos_renyi(n, 0.15, seed=3)
    awake = [next(iter(g.vertices()))]
    setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
    adversary = Adversary(WakeSchedule.all_at_once(awake), UnitDelay())
    rows = []
    for label, algo in (
        ("Cor 1 (tree ports)", Fip06TreeAdvice()),
        ("Thm 5A (sqrt threshold)", SqrtThresholdAdvice()),
        ("Thm 5B (child encoding)", ChildEncodingAdvice()),
        ("Cor 2 (log spanner)", LogSpannerAdvice()),
    ):
        r = run_wakeup(setup, algo, adversary, engine="async", seed=2)
        rows.append(
            {
                "scheme": label,
                "adv_max_bits": r.advice_max_bits,
                "adv_avg_bits": round(r.advice_avg_bits, 1),
                "messages": r.messages,
                "time": round(r.time_all_awake, 1),
            }
        )
    print_table(rows)


def k_dial() -> None:
    print()
    print("=" * 72)
    print("3. The Theorem-6 k-dial (dense ER, n = 256, everyone awake)")
    print("=" * 72)
    n = 256
    g = connected_erdos_renyi(n, 24.0 / n, seed=7)
    awake = [next(iter(g.vertices()))]
    rho = awake_distance(g, awake)
    setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
    adversary = Adversary(WakeSchedule.all_at_once(awake), UnitDelay())
    rows = []
    for k in (1, 2, 3, 5, int(math.log2(n))):
        algo = SpannerAdvice(k=k, spanner_seed=4)
        r = run_wakeup(setup, algo, adversary, engine="async", seed=2)
        rows.append(
            {
                "k": k,
                "stretch 2k-1": 2 * k - 1,
                "spanner_edges": algo.last_spanner.num_edges,
                "messages": r.messages,
                "time": round(r.time_all_awake, 1),
                "adv_avg_bits": round(r.advice_avg_bits, 1),
            }
        )
    print_table(rows)
    print(f"(rho_awk = {rho}; time grows with the spanner stretch 2k-1)")


if __name__ == "__main__":
    frontier()
    ladder()
    k_dial()
