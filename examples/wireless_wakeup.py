#!/usr/bin/env python3
"""Wake-on-Wireless-LAN — the paper's second motivating standard.

A field of battery-powered radios (a random geometric graph: each radio
hears only radios within range) sleeps to save energy.  A gateway must
wake the whole field.  Two costs matter:

* transmissions — each packet costs the sender radio energy;
* listening time — every awake radio burns idle power until the
  operation completes (the awake-time integral of the run).

This example compares flooding, the Theorem-5B child-encoding scheme,
and push gossip on that energy model, across field densities.

Run:  python examples/wireless_wakeup.py
"""

from __future__ import annotations

from repro.analysis.report import print_table
from repro.core.child_encoding import ChildEncodingAdvice
from repro.core.flooding import Flooding
from repro.core.gossip import PushGossipWakeUp
from repro.graphs.generators import random_geometric
from repro.graphs.traversal import awake_distance
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup

TX_COST_UJ = 50.0  # energy per transmission
IDLE_COST_UJ_PER_TAU = 3.0  # awake listening power per time unit


def energy(result) -> float:
    return (
        result.messages * TX_COST_UJ
        + result.metrics.total_awake_time() * IDLE_COST_UJ_PER_TAU
    )


def main() -> None:
    n = 120
    for radius, label in ((0.18, "sparse field"), (0.4, "dense field")):
        g = random_geometric(n, radius=radius, seed=31)
        gateway = 0
        rho = awake_distance(g, [gateway])
        print("=" * 72)
        print(
            f"{label}: {n} radios, range {radius}, {g.num_edges} links, "
            f"rho_awk {rho}"
        )
        print("=" * 72)
        adversary = Adversary(WakeSchedule.singleton(gateway), UnitDelay())
        rows = []
        for algo, knowledge, bandwidth, engine in (
            (Flooding(), Knowledge.KT0, "CONGEST", "async"),
            (ChildEncodingAdvice(), Knowledge.KT0, "CONGEST", "async"),
            (PushGossipWakeUp(active_rounds=64), Knowledge.KT1, "CONGEST", "sync"),
        ):
            setup = make_setup(
                g, knowledge=knowledge, bandwidth=bandwidth, seed=7
            )
            r = run_wakeup(
                setup, algo, adversary, engine=engine, seed=11,
                require_all_awake=False,
            )
            rows.append(
                {
                    "strategy": algo.name
                    + ("(64r)" if isinstance(algo, PushGossipWakeUp) else ""),
                    "tx": r.messages,
                    "wake_time": round(r.time_all_awake, 1),
                    "energy (uJ)": round(energy(r)),
                    "all_awake": r.all_awake,
                    "advice_bits": r.advice_max_bits,
                }
            )
        print_table(rows)
        print()

    print(
        "On sparse fields the advice scheme wins outright (few links to\n"
        "waste); on dense fields flooding's transmission bill explodes\n"
        "while child-encoding stays linear — the Theorem-5B trade of a\n"
        "log-factor of listening time for message-optimality, priced in\n"
        "microjoules."
    )


if __name__ == "__main__":
    main()
