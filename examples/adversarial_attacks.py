#!/usr/bin/env python3
"""Adversarial wake-up attacks — why "all-awake" algorithms break.

Reproduces the paper's Sec-1.3 observation: protocols designed under
the all-awake assumption (here, King–Mashregi-style star sampling) can
be deadlocked by an adversary that wakes exactly one high-degree node,
while the paper's Las Vegas algorithms shrug it off.  Also demonstrates
the staggered "anti-rank" wake-up pattern the Theorem-3 analysis
defends against, and adversarial message delays.

Run:  python examples/adversarial_attacks.py
"""

from __future__ import annotations

import math

from repro.analysis.report import print_table
from repro.core import DfsWakeUp
from repro.core.star_broadcast import StarBroadcast
from repro.graphs.generators import complete_graph, connected_erdos_renyi
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import (
    Adversary,
    SlowEdgeDelay,
    UnitDelay,
    WakeSchedule,
)
from repro.sim.runner import run_wakeup


def attack_one_star_sampling() -> None:
    print("=" * 72)
    print("Attack 1: wake a single high-degree node (Sec 1.3)")
    print("=" * 72)
    n = 64
    g = complete_graph(n)
    trials = 50
    rows = []
    for name, algo_factory in (
        ("star-broadcast (all-awake design)", lambda: StarBroadcast(degree_threshold=5.0)),
        ("dfs-rank (Theorem 3)", DfsWakeUp),
    ):
        fails = 0
        for seed in range(trials):
            setup = make_setup(
                g, knowledge=Knowledge.KT1, bandwidth="LOCAL", seed=seed
            )
            adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
            r = run_wakeup(
                setup, algo_factory(), adversary, engine="async",
                seed=seed, require_all_awake=False,
            )
            if not r.all_awake:
                fails += 1
        rows.append(
            {"algorithm": name, "trials": trials, "failures": fails,
             "failure_rate": fails / trials}
        )
    print_table(rows)
    n_hat = 2 ** math.ceil(math.log2(n))
    print(
        f"predicted star-sampling failure rate: "
        f"1 - 1/sqrt(n log n) = {1 - 1 / math.sqrt(n_hat * math.log(n_hat)):.3f}"
    )


def attack_two_anti_rank_staggering() -> None:
    print()
    print("=" * 72)
    print("Attack 2: staggered anti-rank wake-ups against the DFS tokens")
    print("=" * 72)
    n = 300
    g = connected_erdos_renyi(n, 6.0 / n, seed=5)
    rows = []
    for label, schedule in (
        ("all at once", WakeSchedule.random_subset(g, 16, seed=1)),
        (
            "anti-rank staggered",
            WakeSchedule.anti_rank_staggered(g, waves=5, gap=2 * n, seed=1),
        ),
    ):
        setup = make_setup(g, knowledge=Knowledge.KT1, bandwidth="LOCAL", seed=2)
        adversary = Adversary(schedule, UnitDelay())
        r = run_wakeup(setup, DfsWakeUp(), adversary, engine="async", seed=3)
        rows.append(
            {
                "schedule": label,
                "wake_events": len(schedule),
                "messages": r.messages,
                "time": round(r.time, 1),
                "ok": r.all_awake,
            }
        )
    print_table(rows)
    print(
        "The adversary can stretch the execution by waking fresh nodes "
        "late, but Theorem 3's rank analysis caps the damage at an "
        "O(log n) factor: correctness is never at risk (Las Vegas)."
    )


def attack_three_slow_edges() -> None:
    print()
    print("=" * 72)
    print("Attack 3: adversarially slow links")
    print("=" * 72)
    n = 200
    g = connected_erdos_renyi(n, 8.0 / n, seed=9)
    verts = list(g.vertices())
    # Slow down every link incident to the woken node except one.
    woken = verts[0]
    nbrs = g.neighbors(woken)
    slow = [(woken, u) for u in nbrs[1:]]
    rows = []
    for label, delays in (
        ("unit delays", UnitDelay()),
        ("slow incident links", SlowEdgeDelay(slow, fast=0.05)),
    ):
        setup = make_setup(g, knowledge=Knowledge.KT1, bandwidth="LOCAL", seed=4)
        adversary = Adversary(WakeSchedule.singleton(woken), delays)
        r = run_wakeup(setup, DfsWakeUp(), adversary, engine="async", seed=6)
        rows.append(
            {"delays": label, "messages": r.messages,
             "time": round(r.time, 2), "ok": r.all_awake}
        )
    print_table(rows)
    print(
        "Delays are normalized to tau = 1, so even maximally slowed "
        "links cost at most one time unit each; correctness is "
        "delay-independent."
    )


if __name__ == "__main__":
    attack_one_star_sampling()
    attack_two_anti_rank_staggering()
    attack_three_slow_edges()
