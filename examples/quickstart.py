#!/usr/bin/env python3
"""Quickstart — run every Table-1 algorithm on one network.

This script builds a random connected network, lets the adversary wake
a handful of nodes, and runs each of the paper's algorithms in its
declared model, printing the measured time / messages / advice columns
next to the paper's asymptotic claims.

Run:  python examples/quickstart.py [n]
"""

from __future__ import annotations

import sys

from repro import quick_run
from repro.analysis.report import print_table
from repro.core import algorithm_names, get_algorithm
from repro.experiments import measure_table1, render_table1, workload_context


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 200

    print("=" * 72)
    print("1. One-liner: repro.quick_run()")
    print("=" * 72)
    result = quick_run("dfs-rank", n=n, awake=max(1, n // 20), seed=1)
    print(
        f"dfs-rank on a random {n}-node network: "
        f"{result.messages} messages, time {result.time:.1f}, "
        f"all awake: {result.all_awake}"
    )

    print()
    print("=" * 72)
    print("2. Every registered algorithm")
    print("=" * 72)
    rows = []
    for name in algorithm_names():
        if name in ("prefix-advice", "star-broadcast", "echo-flooding", "push-gossip"):
            continue  # specialized demos; see the other examples
        algo = get_algorithm(name)
        r = quick_run(name, n=n, awake=max(1, n // 20), seed=2)
        rows.append(
            {
                "algorithm": name,
                "model": (
                    f"{'KT1' if algo.requires_kt1 else 'KT0'}/"
                    f"{'CONGEST' if algo.congest_safe else 'LOCAL'}"
                ),
                "messages": r.messages,
                "time": r.time,
                "adv_max_bits": r.advice_max_bits,
                "ok": r.all_awake,
            }
        )
    print_table(rows)

    print()
    print("=" * 72)
    print("3. The full Table-1 reproduction (shared workload)")
    print("=" * 72)
    ctx = workload_context(n=n, seed=4)
    print(
        f"workload: n={ctx['n']:.0f}, m={ctx['m']:.0f}, "
        f"D={ctx['diameter']:.0f}, rho_awk={ctx['rho_awk']:.0f}"
    )
    print(render_table1(measure_table1(n=n, seed=4)))


if __name__ == "__main__":
    main()
