"""Tests for the Trace event log."""

import pytest

from repro.core.flooding import Flooding
from repro.graphs.generators import cycle_graph, path_graph
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.messages import Message
from repro.sim.runner import run_wakeup
from repro.sim.trace import Trace


def _msg(src, dst, seq=0):
    return Message(
        src=src, dst=dst, dst_port=1, src_port=1, payload=("x",),
        bits=8, sent_at=0.0, seq=seq,
    )


class TestManualRecording:
    def test_event_ordering_preserved(self):
        t = Trace()
        t.wake(0.0, "a", "adversary")
        t.send(0.0, _msg("a", "b"))
        t.deliver(1.0, _msg("a", "b"))
        kinds = [e.kind for e in t.events]
        assert kinds == ["wake", "send", "deliver"]
        assert len(t) == 3

    def test_accessors(self):
        t = Trace()
        t.send(0.0, _msg("a", "b", seq=0))
        t.send(0.5, _msg("b", "a", seq=1))
        t.deliver(1.0, _msg("a", "b", seq=0))
        t.wake(1.0, "b", "message")
        assert len(t.sends()) == 2
        assert len(t.deliveries()) == 1
        assert t.wakes() == [(1.0, "b", "message")]

    def test_edges_used(self):
        t = Trace()
        t.send(0.0, _msg("a", "b"))
        t.send(0.0, _msg("a", "b", seq=1))
        assert t.edges_used() == {("a", "b")}

    def test_messages_between_counts_both_directions(self):
        t = Trace()
        t.send(0.0, _msg("a", "b"))
        t.send(0.0, _msg("b", "a", seq=1))
        t.send(0.0, _msg("a", "c", seq=2))
        assert t.messages_between("a", "b") == 2
        assert t.messages_between("b", "a") == 2
        assert t.messages_between("a", "c") == 1
        assert t.messages_between("b", "c") == 0


class TestRingBuffer:
    def test_maxlen_bounds_retained_events(self):
        t = Trace(maxlen=3)
        for i in range(10):
            t.send(float(i), _msg("a", "b", seq=i))
        assert len(t) == 3
        assert t.dropped == 7
        assert [m.seq for m in t.sends()] == [7, 8, 9]

    def test_unbounded_trace_never_drops(self):
        t = Trace()
        for i in range(100):
            t.send(float(i), _msg("a", "b", seq=i))
        assert len(t) == 100
        assert t.dropped == 0

    def test_invalid_maxlen_rejected(self):
        with pytest.raises(ValueError):
            Trace(maxlen=0)
        with pytest.raises(ValueError):
            Trace(maxlen=-4)

    def test_tail_marks_evicted_history(self):
        t = Trace(maxlen=2)
        t.wake(0.0, "a", "adversary")
        t.send(1.0, _msg("a", "b"))
        t.deliver(2.0, _msg("a", "b"))
        tail = t.tail()
        assert tail[0] == "... (1 earlier events not retained)"
        assert len(tail) == 3  # marker + 2 retained lines
        assert "=>" in tail[-1]  # delivery rendering

    def test_tail_count_limits_further(self):
        t = Trace()
        for i in range(5):
            t.send(float(i), _msg("a", "b", seq=i))
        tail = t.tail(2)
        assert tail[0] == "... (3 earlier events not retained)"
        assert len(tail) == 3

    def test_tail_without_eviction_has_no_marker(self):
        t = Trace(maxlen=10)
        t.wake(0.0, "a", "adversary")
        assert t.tail() == ["t=0 wake 'a' by adversary"]

    def test_engine_fills_ring_buffer(self):
        g = cycle_graph(12)
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        flight = Trace(maxlen=5)
        r = run_wakeup(
            setup, Flooding(), adversary, engine="async", trace=flight
        )
        assert r.trace is flight
        assert len(flight) == 5
        assert flight.dropped > 0
        # query helpers describe the retained window only
        assert len(flight.sends()) + len(flight.deliveries()) + len(
            flight.wakes()
        ) == 5


class TestEngineIntegration:
    def test_sends_equal_deliveries_at_quiescence(self):
        g = cycle_graph(8)
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        r = run_wakeup(
            setup, Flooding(), adversary, engine="async", record_trace=True
        )
        assert len(r.trace.sends()) == len(r.trace.deliveries())
        assert len(r.trace.sends()) == r.messages

    def test_wake_events_match_metrics(self):
        g = path_graph(6)
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        r = run_wakeup(
            setup, Flooding(), adversary, engine="async", record_trace=True
        )
        trace_wakes = {v: t for t, v, _c in r.trace.wakes()}
        assert trace_wakes == r.wake_time

    def test_trace_disabled_by_default(self):
        g = path_graph(3)
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
        adversary = Adversary(WakeSchedule.singleton(0), UnitDelay())
        r = run_wakeup(setup, Flooding(), adversary, engine="async")
        assert r.trace is None
