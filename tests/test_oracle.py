"""Tests for the oracle/AdviceMap layer."""

import pytest

from repro.advice.bits import BitWriter, Bits
from repro.advice.oracle import AdviceMap, empty_advice
from repro.errors import AdviceError
from repro.graphs.generators import path_graph
from repro.models.knowledge import make_setup


class TestAdviceMap:
    def test_stats(self):
        m = AdviceMap(
            {
                "a": Bits([1, 0, 1]),
                "b": Bits([1]),
                "c": Bits(),
            }
        )
        assert m.max_bits == 3
        assert m.total_bits == 4
        assert m.average_bits == pytest.approx(4 / 3)
        stats = m.stats()
        assert stats["advice_max_bits"] == 3.0
        assert stats["advice_total_bits"] == 4.0

    def test_empty_map(self):
        m = AdviceMap({})
        assert m.max_bits == 0
        assert m.average_bits == 0.0
        assert len(m) == 0

    def test_lookup(self):
        b = Bits([1, 1])
        m = AdviceMap({"x": b})
        assert m["x"] == b
        assert m.get("y") is None
        assert "x" in m and "y" not in m

    def test_items_iteration(self):
        m = AdviceMap({"x": Bits([1])})
        assert dict(m.items()) == {"x": Bits([1])}

    def test_rejects_non_bits(self):
        with pytest.raises(AdviceError):
            AdviceMap({"x": "101"})  # type: ignore[dict-item]
        with pytest.raises(AdviceError):
            AdviceMap({"x": [1, 0, 1]})  # type: ignore[dict-item]

    def test_bitwriter_values_accepted(self):
        m = AdviceMap({"x": BitWriter().write_gamma(5).getvalue()})
        assert m.max_bits == 5


class TestEmptyAdvice:
    def test_zero_bits_everywhere(self):
        setup = make_setup(path_graph(6), seed=1)
        m = empty_advice(setup)
        assert len(m) == 6
        assert m.total_bits == 0
        for v in setup.graph.vertices():
            assert len(m[v]) == 0
