"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "flooding"])
        assert args.n == 200
        assert args.awake == 1
        assert not args.wave

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nope"])

    def test_sweep_sizes(self):
        args = build_parser().parse_args(
            ["sweep", "flooding", "--sizes", "10", "20"]
        )
        assert args.sizes == [10, 20]


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "dfs-rank" in out
        assert "KT1/LOCAL" in out

    def test_run(self, capsys):
        code = main(
            ["run", "flooding", "--n", "30", "--awake", "2", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "flooding" in out
        assert "True" in out  # all_awake

    def test_run_with_wave(self, capsys):
        code = main(
            ["run", "fip06-tree-advice", "--n", "25", "--seed", "2", "--wave"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "adversary:" in out

    def test_run_sync_algorithm(self, capsys):
        code = main(["run", "fast-wakeup", "--n", "30", "--seed", "3"])
        assert code == 0
        assert "fast-wakeup" in capsys.readouterr().out

    def test_table1(self, capsys):
        code = main(["table1", "--n", "50", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Thm 3" in out
        assert "rho_awk" in out

    def test_sweep(self, capsys):
        code = main(
            ["sweep", "flooding", "--sizes", "20", "40", "--trials", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "messages ~" in out
        assert "n^" in out

    def test_lowerbounds(self, capsys):
        code = main(["lowerbounds", "--n", "24", "--betas", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Theorem 1 frontier" in out
        assert "Theorem 2 matching upper bound" in out
