"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "flooding"])
        assert args.n == 200
        assert args.awake == 1
        assert not args.wave

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nope"])

    def test_sweep_sizes(self):
        args = build_parser().parse_args(
            ["sweep", "flooding", "--sizes", "10", "20"]
        )
        assert args.sizes == [10, 20]


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "dfs-rank" in out
        assert "KT1/LOCAL" in out

    def test_run(self, capsys):
        code = main(
            ["run", "flooding", "--n", "30", "--awake", "2", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "flooding" in out
        assert "True" in out  # all_awake

    def test_run_with_wave(self, capsys):
        code = main(
            ["run", "fip06-tree-advice", "--n", "25", "--seed", "2", "--wave"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "adversary:" in out

    def test_run_sync_algorithm(self, capsys):
        code = main(["run", "fast-wakeup", "--n", "30", "--seed", "3"])
        assert code == 0
        assert "fast-wakeup" in capsys.readouterr().out

    def test_table1(self, capsys):
        code = main(["table1", "--n", "50", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Thm 3" in out
        assert "rho_awk" in out

    def test_sweep(self, capsys):
        code = main(
            ["sweep", "flooding", "--sizes", "20", "40", "--trials", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "messages ~" in out
        assert "n^" in out

    def test_lowerbounds(self, capsys):
        code = main(["lowerbounds", "--n", "24", "--betas", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Theorem 1 frontier" in out
        assert "Theorem 2 matching upper bound" in out


class TestCheckCommands:
    def test_check_defaults(self):
        args = build_parser().parse_args(["check", "flooding"])
        assert args.n == 4
        assert args.graph == "cycle"
        assert args.mutation is None
        assert args.replay_dir.endswith(".replays")

    def test_check_clean_workload_exits_zero(self, capsys):
        code = main(["check", "flooding", "--n", "4", "--graph", "cycle"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Schedule-space exploration" in out
        assert "complete" in out

    def test_check_mutation_finds_and_shrinks(self, capsys, tmp_path):
        code = main(
            [
                "check", "echo-flooding", "--n", "4", "--graph", "path",
                "--mutation", "skip-fifo",
                "--replay-dir", str(tmp_path),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "violation: fifo-per-channel" in out
        assert "shrunk witness" in out
        artifacts = list(tmp_path.glob("check-*.json"))
        assert len(artifacts) == 1

    def test_worstcase_classg(self, capsys, tmp_path):
        code = main(
            [
                "worstcase", "flooding", "--workload", "class-g",
                "--n", "6", "--trials", "8",
                "--out", str(tmp_path / "wc.json"),
                "--replay-dir", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Worst-case search" in out
        assert "bit-identically" in out
        assert (tmp_path / "wc.json").exists()

    def test_cache_info_reports_replays(self, capsys, tmp_path):
        (tmp_path / "a.json").write_text("{}")
        code = main(["cache", "info", "--replay-dir", str(tmp_path)])
        assert code == 0
        assert "replays" in capsys.readouterr().out

    def test_cache_purge_covers_replays(self, capsys, tmp_path):
        (tmp_path / "a.json").write_text("{}")
        (tmp_path / "b.json").write_text("{}")
        code = main(
            [
                "cache", "purge", "replays",
                "--cache-dir", str(tmp_path / "none"),
                "--topology-dir", str(tmp_path / "none2"),
                "--replay-dir", str(tmp_path),
            ]
        )
        assert code == 0
        assert "2 replay artifact(s)" in capsys.readouterr().out
        assert not list(tmp_path.glob("*.json"))


class TestMetricsCommands:
    def _sweep_with_metrics(self, tmp_path):
        snap_path = tmp_path / "metrics.json"
        code = main(
            [
                "sweep", "flooding", "--sizes", "16", "--trials", "1",
                "--workers", "0", "--progress", "off",
                "--cache-dir", str(tmp_path / "cache"),
                "--topology-dir", str(tmp_path / "topo"),
                "--metrics", str(snap_path),
            ]
        )
        assert code == 0
        return snap_path

    def test_metrics_flag_writes_snapshot(self, capsys, tmp_path):
        import json

        snap_path = self._sweep_with_metrics(tmp_path)
        capsys.readouterr()
        snap = json.loads(snap_path.read_text())
        assert snap["counters"][
            'repro_engine_runs_total{engine="async"}'
        ] == 1
        # and the global registry was restored to the null default
        from repro.obs.metrics import NULL_REGISTRY, get_registry

        assert get_registry() is NULL_REGISTRY

    def test_metrics_dump_formats(self, capsys, tmp_path):
        snap_path = self._sweep_with_metrics(tmp_path)
        capsys.readouterr()
        assert main(["metrics", "dump", str(snap_path)]) == 0
        out = capsys.readouterr().out
        assert '"counters"' in out
        assert main(
            ["metrics", "dump", str(snap_path), "--format", "prometheus"]
        ) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_engine_runs_total counter" in out

    def test_metrics_dump_missing_file_errors(self, capsys, tmp_path):
        assert main(["metrics", "dump", str(tmp_path / "no.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_top_renders_snapshot(self, capsys, tmp_path):
        snap_path = self._sweep_with_metrics(tmp_path)
        capsys.readouterr()
        assert main(["top", str(snap_path)]) == 0
        out = capsys.readouterr().out
        assert "executor   cells 1" in out
        assert "engines    runs 1" in out

    def test_progress_top_is_accepted(self, tmp_path):
        code = main(
            [
                "sweep", "flooding", "--sizes", "16", "--trials", "1",
                "--workers", "0", "--progress", "top", "--no-cache",
                "--topology-dir", str(tmp_path / "topo"),
                "--metrics", str(tmp_path / "m.json"),
            ]
        )
        assert code == 0
