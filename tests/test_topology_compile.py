"""Compiled-topology artifact layer tests (`repro.graphs.compile`).

The contract under test:

* **fidelity** — a topology rematerialized from its artifact (or from
  a disk round-trip) has the builder's exact vertex/neighbor insertion
  order, the same ``rho_awk``, and consumes a seeded rng identically
  to the legacy per-trial rebuild (``random_ports`` vs
  ``PortAssignment.random``);
* **store correctness** — corrupted, truncated, or wrong-salt/-version
  artifacts are silent misses that trigger rebuild + rewrite; writes
  are atomic (no torn temp files); N concurrent workers racing on one
  key perform exactly one build;
* **cache discipline** — the in-process LRU bounds memory and evicts
  its graph-id side table; ``cached_spanner`` builds each spanner once
  per topology and replays it from persisted extras;
* **one traversal per (workload, n)** — a multi-trial batch through
  the executor compiles each distinct topology exactly once (the
  regression that motivated the layer: ``awake_distance`` used to run
  per trial).
"""

from __future__ import annotations

import multiprocessing
import pickle
import random

import pytest

import repro.graphs.compile as compile_mod
from repro.experiments.parallel import CellSpec, ParallelSweepExecutor
from repro.experiments.sweeps import build_workload, sweep_cells
from repro.graphs.compile import (
    STORE_VERSION,
    CompiledTopology,
    TopologyStore,
    build_topology,
    cached_spanner,
    clear_memory_cache,
    compiled_topology,
    topology_key,
)
from repro.graphs.graph import Graph
from repro.graphs.spanner import greedy_spanner
from repro.graphs.traversal import awake_distance
from repro.models.ports import PortAssignment

WORKLOAD = {"kind": "er_single_wake", "avg_degree": 4.0, "seed": 5}
N = 40


@pytest.fixture(autouse=True)
def _fresh_memory_cache():
    clear_memory_cache()
    yield
    clear_memory_cache()


def _edge_set(graph):
    return {frozenset(e) for e in graph.edges()}


class TestTopologyKey:
    def test_stable(self):
        assert topology_key(WORKLOAD, N) == topology_key(dict(WORKLOAD), N)

    @pytest.mark.parametrize(
        "workload, n",
        [
            ({**WORKLOAD, "seed": 6}, N),
            ({**WORKLOAD, "avg_degree": 6.0}, N),
            ({**WORKLOAD, "kind": "er_all_awake"}, N),
            (WORKLOAD, N + 1),
        ],
    )
    def test_any_changed_input_changes_key(self, workload, n):
        assert topology_key(workload, n) != topology_key(WORKLOAD, N)

    def test_salt_bump_changes_key(self):
        assert topology_key(WORKLOAD, N, salt="a") != topology_key(
            WORKLOAD, N, salt="b"
        )


class TestArtifactFidelity:
    @pytest.fixture(scope="class")
    def built(self):
        graph, awake = build_workload(dict(WORKLOAD))(N)
        topo = CompiledTopology.compile(graph, awake, key="k")
        # The disk representation, round-tripped: a worker would see
        # exactly this object.
        clone = CompiledTopology.from_payload(
            pickle.loads(pickle.dumps(topo.to_payload()))
        )
        return graph, awake, topo, clone

    def test_insertion_order_is_preserved(self, built):
        graph, _, _, clone = built
        g2 = clone.graph()
        assert list(g2.vertices()) == list(graph.vertices())
        for v in graph.vertices():
            assert list(g2.neighbors(v)) == list(graph.neighbors(v))

    def test_rho_awk_matches_fresh_traversal(self, built):
        graph, awake, topo, clone = built
        rho = float(awake_distance(graph, list(awake)))
        assert topo.rho_awk == rho
        assert clone.rho_awk == rho

    def test_awake_vertices_round_trip(self, built):
        _, awake, _, clone = built
        assert clone.awake_vertices() == list(awake)

    def test_num_edges(self, built):
        graph, _, _, clone = built
        assert clone.num_edges() == len(list(graph.edges()))

    def test_random_ports_bit_compatible_with_legacy(self, built):
        graph, _, _, clone = built
        legacy = PortAssignment.random(graph, random.Random(13))
        compiled = clone.random_ports(random.Random(13))
        for v in graph.vertices():
            assert compiled.table(v) == legacy.table(v)

    def test_prevalidated_matches_validated_constructor(self, built):
        graph, _, _, _ = built
        order = {
            v: list(random.Random(99).sample(
                list(graph.neighbors(v)), graph.degree(v)
            ))
            for v in graph.vertices()
        }
        validated = PortAssignment(graph, {v: list(o) for v, o in
                                           order.items()})
        fast = PortAssignment.prevalidated(graph, {v: list(o) for v, o in
                                                   order.items()})
        for v in graph.vertices():
            assert fast.table(v) == validated.table(v)
            assert list(fast.ports(v)) == list(validated.ports(v))


class TestStore:
    def test_cold_build_writes_one_artifact(self, tmp_path):
        store = TopologyStore(tmp_path)
        stats = {}
        topo = store.fetch_or_build(WORKLOAD, N, stats=stats)
        assert stats == {"build": 1}
        assert store.artifact_count() == 1
        assert store.path(topo.key).is_file()
        assert store.size_bytes() > 0

    def test_disk_then_memory_hits(self, tmp_path):
        TopologyStore(tmp_path).fetch_or_build(WORKLOAD, N)
        clear_memory_cache()
        store = TopologyStore(tmp_path)
        stats = {}
        store.fetch_or_build(WORKLOAD, N, stats=stats)
        store.fetch_or_build(WORKLOAD, N, stats=stats)
        assert stats == {"hit_disk": 1, "hit_mem": 1}

    def test_disk_round_trip_is_faithful(self, tmp_path):
        store = TopologyStore(tmp_path)
        fresh = store.fetch_or_build(WORKLOAD, N)
        rows = [
            (v, tuple(fresh.graph().neighbors(v)))
            for v in fresh.graph().vertices()
        ]
        clear_memory_cache()
        loaded = TopologyStore(tmp_path).fetch_or_build(WORKLOAD, N)
        assert loaded.rho_awk == fresh.rho_awk
        assert [
            (v, tuple(loaded.graph().neighbors(v)))
            for v in loaded.graph().vertices()
        ] == rows

    @pytest.mark.parametrize(
        "corruption",
        ["garbage", "truncate", "empty"],
        ids=["garbage-bytes", "truncated", "zero-length"],
    )
    def test_corrupted_artifact_rebuilds_and_rewrites(
        self, tmp_path, corruption
    ):
        store = TopologyStore(tmp_path)
        topo = store.fetch_or_build(WORKLOAD, N)
        path = store.path(topo.key)
        raw = path.read_bytes()
        if corruption == "garbage":
            path.write_bytes(b"not a pickle at all")
        elif corruption == "truncate":
            path.write_bytes(raw[: len(raw) // 2])
        else:
            path.write_bytes(b"")

        clear_memory_cache()
        store = TopologyStore(tmp_path)
        stats = {}
        rebuilt = store.fetch_or_build(WORKLOAD, N, stats=stats)
        assert stats == {"build": 1}
        assert rebuilt.rho_awk == topo.rho_awk
        # ... and the rewrite is valid again: a third store disk-hits.
        clear_memory_cache()
        stats = {}
        TopologyStore(tmp_path).fetch_or_build(WORKLOAD, N, stats=stats)
        assert stats == {"hit_disk": 1}

    def test_salt_mismatch_is_a_miss(self, tmp_path):
        store_a = TopologyStore(tmp_path, salt="salt-a")
        topo = store_a.fetch_or_build(WORKLOAD, N)
        # The envelope guard: even pointed at salt-a's artifact file, a
        # salt-b store refuses to load it.
        store_b = TopologyStore(tmp_path, salt="salt-b")
        assert store_b._load(topo.key) is None
        # And through the normal path a salt bump re-keys entirely:
        # fresh build, old artifact orphaned, both on disk.
        clear_memory_cache()
        stats = {}
        store_b.fetch_or_build(WORKLOAD, N, stats=stats)
        assert stats == {"build": 1}
        assert store_b.artifact_count() == 2

    def test_wrong_store_version_is_a_miss(self, tmp_path):
        store = TopologyStore(tmp_path)
        topo = store.fetch_or_build(WORKLOAD, N)
        path = store.path(topo.key)
        envelope = pickle.loads(path.read_bytes())
        envelope["version"] = STORE_VERSION + 1
        path.write_bytes(pickle.dumps(envelope))
        assert store._load(topo.key) is None

    def test_body_digest_mismatch_is_a_miss(self, tmp_path):
        store = TopologyStore(tmp_path)
        topo = store.fetch_or_build(WORKLOAD, N)
        path = store.path(topo.key)
        envelope = pickle.loads(path.read_bytes())
        envelope["body"] = envelope["body"][:-1] + b"\x00"
        path.write_bytes(pickle.dumps(envelope))
        assert store._load(topo.key) is None

    def test_writes_leave_no_temp_files(self, tmp_path):
        store = TopologyStore(tmp_path)
        store.fetch_or_build(WORKLOAD, N)
        store.fetch_or_build({**WORKLOAD, "seed": 6}, N)
        leftovers = [
            p for p in tmp_path.rglob("*") if ".tmp." in p.name
        ]
        assert leftovers == []

    def test_purge_removes_artifacts_and_locks(self, tmp_path):
        store = TopologyStore(tmp_path)
        store.fetch_or_build(WORKLOAD, N)
        store.fetch_or_build({**WORKLOAD, "seed": 6}, N)
        assert store.purge() == 2
        assert store.artifact_count() == 0
        assert list(tmp_path.rglob("*.lock")) == []

    def test_concurrent_workers_build_exactly_once(self, tmp_path):
        procs = 4
        with multiprocessing.Pool(procs) as pool:
            results = pool.map(
                _concurrent_fetch, [(str(tmp_path), WORKLOAD, N)] * procs
            )
        stats_list = [s for s, _ in results]
        rhos = {rho for _, rho in results}
        assert sum(s.get("build", 0) for s in stats_list) == 1
        assert len(rhos) == 1
        assert TopologyStore(tmp_path).artifact_count() == 1


def _concurrent_fetch(args):
    """Pool worker: one cold fetch against a shared store root."""
    root, workload, n = args
    clear_memory_cache()  # forked children inherit the parent's LRU
    stats = {}
    topo = TopologyStore(root).fetch_or_build(workload, n, stats=stats)
    return stats, topo.rho_awk


class TestMemoryLRU:
    def test_lru_bounds_entries_and_graph_index(self, monkeypatch):
        monkeypatch.setattr(compile_mod, "MEMORY_CACHE_SIZE", 2)
        for n in (16, 20, 24):
            compiled_topology(WORKLOAD, n)
        assert len(compile_mod._MEM_CACHE) == 2
        assert len(compile_mod._TOPO_BY_GRAPH) == 2
        assert topology_key(WORKLOAD, 16) not in compile_mod._MEM_CACHE

    def test_evicted_topology_rebuilds(self, monkeypatch):
        monkeypatch.setattr(compile_mod, "MEMORY_CACHE_SIZE", 1)
        stats = {}
        compiled_topology(WORKLOAD, 16, stats=stats)
        compiled_topology(WORKLOAD, 20, stats=stats)  # evicts n=16
        compiled_topology(WORKLOAD, 16, stats=stats)
        assert stats == {"build": 3}

    def test_repeated_fetches_hit_memory(self):
        stats = {}
        first = compiled_topology(WORKLOAD, N, stats=stats)
        second = compiled_topology(WORKLOAD, N, stats=stats)
        assert first is second
        assert stats == {"build": 1, "hit_mem": 1}


class TestCachedSpanner:
    K = 3

    def _builder(self, calls):
        def build(g):
            calls.append(1)
            return greedy_spanner(g, self.K)

        return build

    def test_built_once_per_topology(self):
        topo = compiled_topology(WORKLOAD, N)
        calls = []
        first = cached_spanner(
            topo.graph(), "greedy", {"k": self.K}, self._builder(calls)
        )
        second = cached_spanner(
            topo.graph(), "greedy", {"k": self.K}, self._builder(calls)
        )
        assert first is second
        assert len(calls) == 1

    def test_distinct_params_are_distinct_memos(self):
        topo = compiled_topology(WORKLOAD, N)
        s3 = cached_spanner(
            topo.graph(), "greedy", {"k": 3}, lambda g: greedy_spanner(g, 3)
        )
        s5 = cached_spanner(
            topo.graph(), "greedy", {"k": 5}, lambda g: greedy_spanner(g, 5)
        )
        assert s3 is not s5

    def test_plain_graph_falls_through_to_builder(self):
        graph, _ = build_workload(dict(WORKLOAD))(N)
        calls = []
        cached_spanner(graph, "greedy", {"k": self.K}, self._builder(calls))
        cached_spanner(graph, "greedy", {"k": self.K}, self._builder(calls))
        assert len(calls) == 2

    def test_persisted_extras_replay_without_builder(self, tmp_path):
        store = TopologyStore(tmp_path)
        topo = store.fetch_or_build(WORKLOAD, N)
        expected = cached_spanner(
            topo.graph(), "greedy", {"k": self.K},
            lambda g: greedy_spanner(g, self.K),
        )
        # A fresh process (simulated: cold LRU, new store) must rebuild
        # the spanner from the artifact's extras, not the builder.
        clear_memory_cache()
        stats = {}
        reloaded = TopologyStore(tmp_path).fetch_or_build(
            WORKLOAD, N, stats=stats
        )
        assert stats == {"hit_disk": 1}
        replayed = cached_spanner(
            reloaded.graph(), "greedy", {"k": self.K},
            lambda g: pytest.fail("builder must not run: extras persisted"),
        )
        assert _edge_set(replayed) == _edge_set(expected)
        assert list(replayed.vertices()) == list(reloaded.graph().vertices())


class TestOneTraversalPerTopology:
    """Satellite regression: `_execute_cell` used to rebuild the graph
    and re-run `awake_distance` for every trial; the compiled layer
    must do both exactly once per distinct (workload, n)."""

    SIZES = [16, 24]
    TRIALS = 3

    def _cells(self):
        return sweep_cells(
            "flooding",
            dict(WORKLOAD),
            sizes=self.SIZES,
            engine="async",
            knowledge="KT0",
            bandwidth="CONGEST",
            trials=self.TRIALS,
            seed=0,
            delay={"kind": "uniform", "seed": 0},
        )

    def test_multi_trial_batch_compiles_each_topology_once(
        self, monkeypatch
    ):
        calls = []

        def counting_awake_distance(graph, awake):
            calls.append(1)
            return awake_distance(graph, awake)

        monkeypatch.setattr(
            compile_mod, "awake_distance", counting_awake_distance
        )
        cells = self._cells()
        assert len(cells) == len(self.SIZES) * self.TRIALS
        executor = ParallelSweepExecutor(
            workers=0, use_cache=False, use_topology_store=False
        )
        outcomes = executor.run(cells)
        assert all(o.ok for o in outcomes)
        assert len(calls) == len(self.SIZES)
        assert executor.stats["topology.build"] == len(self.SIZES)
        assert executor.stats["topology.hit_mem"] == len(cells) - len(
            self.SIZES
        )

    def test_warm_store_batch_builds_nothing(self, tmp_path):
        cells = self._cells()
        cold = ParallelSweepExecutor(
            workers=0, use_cache=False, topology_dir=tmp_path,
            use_topology_store=True,
        )
        cold.run(cells)
        assert cold.stats["topology.build"] == len(self.SIZES)
        clear_memory_cache()
        warm = ParallelSweepExecutor(
            workers=0, use_cache=False, topology_dir=tmp_path,
            use_topology_store=True,
        )
        warm.run(cells)
        assert warm.stats["topology.build"] == 0
        assert warm.stats["topology.hit_disk"] == len(self.SIZES)
