"""Smoke tests: every example script runs to completion.

Run as subprocesses so the scripts are exercised exactly as a user
would invoke them (shebang path, ``__main__`` guard, argv handling).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py", "80")
    assert "Table 1" in out
    assert "dfs-rank" in out
    assert "True" in out


def test_datacenter():
    out = run_example("datacenter_wakeup.py")
    assert "datacenter:" in out
    assert "child-encoding" in out
    assert "cuts wake-up traffic" in out


def test_leader_election_demo():
    out = run_example("leader_election_demo.py")
    assert "elected leader id" in out
    assert "spanning tree valid: True" in out
    assert "tree-broadcast" in out


@pytest.mark.slow
def test_adversarial_attacks():
    out = run_example("adversarial_attacks.py")
    assert "Attack 1" in out
    assert "star-broadcast" in out
    assert "anti-rank staggered" in out


@pytest.mark.slow
def test_advice_tradeoffs():
    out = run_example("advice_tradeoffs.py")
    assert "Theorem-1 frontier" in out
    assert "k-dial" in out


def test_wireless_wakeup():
    out = run_example("wireless_wakeup.py")
    assert "sparse field" in out
    assert "dense field" in out
    assert "child-encoding" in out
