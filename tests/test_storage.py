"""Tests for experiment result persistence."""

import json
from dataclasses import dataclass

import pytest

from repro.errors import ReproError
from repro.experiments.storage import (
    FORMAT_VERSION,
    compare_records,
    load_records,
    save_records,
)


@dataclass
class Row:
    n: int
    messages: float


class TestSaveLoad:
    def test_roundtrip_dataclasses(self, tmp_path):
        path = tmp_path / "out.json"
        save_records(
            path, [Row(10, 20.0), Row(20, 41.0)], experiment="x",
            params={"sizes": [10, 20]},
        )
        payload = load_records(path)
        assert payload["experiment"] == "x"
        assert payload["format_version"] == FORMAT_VERSION
        assert payload["records"] == [
            {"n": 10, "messages": 20.0},
            {"n": 20, "messages": 41.0},
        ]
        assert payload["params"] == {"sizes": [10, 20]}
        assert "python" in payload["environment"]

    def test_roundtrip_dicts_and_exotics(self, tmp_path):
        path = tmp_path / "out.json"
        save_records(
            path,
            [{"a": (1, 2), "b": frozenset({3}), "c": None}],
            experiment="y",
        )
        rec = load_records(path)["records"][0]
        assert rec["a"] == [1, 2]
        assert rec["b"] == ["3"]
        assert rec["c"] is None

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError):
            load_records(tmp_path / "nope.json")

    def test_corrupt_file(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{not json")
        with pytest.raises(ReproError):
            load_records(p)

    def test_version_mismatch(self, tmp_path):
        p = tmp_path / "old.json"
        p.write_text(json.dumps({"format_version": 99, "records": []}))
        with pytest.raises(ReproError):
            load_records(p)


class TestCompare:
    def _payload(self, values):
        return {"records": [{"messages": v} for v in values]}

    def test_no_drift(self):
        drifts = compare_records(
            self._payload([100, 200]), self._payload([110, 190]),
            key="messages",
        )
        assert drifts == []

    def test_detects_drift(self):
        drifts = compare_records(
            self._payload([100]), self._payload([200]), key="messages"
        )
        assert len(drifts) == 1
        assert "drifted" in drifts[0]

    def test_detects_count_change(self):
        drifts = compare_records(
            self._payload([1]), self._payload([1, 2]), key="messages"
        )
        assert any("count" in d for d in drifts)

    def test_ignores_non_numeric(self):
        old = {"records": [{"messages": "n/a"}]}
        new = {"records": [{"messages": 5}]}
        assert compare_records(old, new, key="messages") == []

    def test_tolerance(self):
        drifts = compare_records(
            self._payload([100]), self._payload([120]),
            key="messages", tolerance=0.1,
        )
        assert drifts
        assert not compare_records(
            self._payload([100]), self._payload([120]),
            key="messages", tolerance=0.3,
        )
