"""Tests for the bit-level advice codecs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.advice.bits import BitReader, BitWriter, Bits, gamma_cost
from repro.errors import AdviceError


class TestBits:
    def test_construction_and_length(self):
        b = Bits([1, 0, 1])
        assert len(b) == 3
        assert list(b) == [1, 0, 1]
        assert b[0] == 1

    def test_invalid_bit_values(self):
        with pytest.raises(AdviceError):
            Bits([2])

    def test_equality_and_hash(self):
        assert Bits([1, 0]) == Bits([1, 0])
        assert Bits([1]) != Bits([0])
        assert hash(Bits([1, 0])) == hash(Bits([1, 0]))

    def test_concatenation(self):
        assert Bits([1]) + Bits([0, 1]) == Bits([1, 0, 1])
        with pytest.raises(AdviceError):
            Bits() + [1, 0]  # type: ignore[operator]

    def test_to01_roundtrip(self):
        b = Bits([1, 1, 0, 1])
        assert b.to01() == "1101"
        assert Bits.from01("1101") == b

    def test_empty(self):
        assert len(Bits()) == 0
        assert Bits().to01() == ""


class TestWriterPrimitives:
    def test_write_bit(self):
        w = BitWriter().write_bit(1).write_bit(0)
        assert w.getvalue() == Bits([1, 0])
        with pytest.raises(AdviceError):
            BitWriter().write_bit(7)

    def test_write_uint(self):
        w = BitWriter().write_uint(5, 4)
        assert w.getvalue().to01() == "0101"

    def test_write_uint_overflow(self):
        with pytest.raises(AdviceError):
            BitWriter().write_uint(8, 3)
        with pytest.raises(AdviceError):
            BitWriter().write_uint(-1, 3)

    def test_write_uint_zero_width(self):
        assert len(BitWriter().write_uint(0, 0)) == 0

    def test_unary(self):
        assert BitWriter().write_unary(3).getvalue().to01() == "0001"
        assert BitWriter().write_unary(0).getvalue().to01() == "1"
        with pytest.raises(AdviceError):
            BitWriter().write_unary(-1)

    def test_gamma_small_values(self):
        assert BitWriter().write_gamma(1).getvalue().to01() == "1"
        assert BitWriter().write_gamma(2).getvalue().to01() == "010"
        assert BitWriter().write_gamma(5).getvalue().to01() == "00101"
        with pytest.raises(AdviceError):
            BitWriter().write_gamma(0)

    def test_gamma_cost(self):
        assert gamma_cost(1) == 1
        assert gamma_cost(2) == 3
        assert gamma_cost(1024) == 21
        for v in (1, 3, 9, 100, 5000):
            assert len(BitWriter().write_gamma(v)) == gamma_cost(v)
        with pytest.raises(AdviceError):
            gamma_cost(0)


class TestReaderPrimitives:
    def test_underflow(self):
        r = BitReader(Bits([1]))
        r.read_bit()
        with pytest.raises(AdviceError):
            r.read_bit()

    def test_remaining(self):
        r = BitReader(Bits([1, 0, 1]))
        assert r.remaining == 3
        r.read_bit()
        assert r.remaining == 2

    def test_read_uint(self):
        r = BitReader(Bits.from01("0101"))
        assert r.read_uint(4) == 5


@given(values=st.lists(st.integers(0, 2**20), max_size=30))
@settings(max_examples=60)
def test_gamma0_roundtrip(values):
    w = BitWriter()
    for v in values:
        w.write_gamma0(v)
    r = BitReader(w.getvalue())
    assert [r.read_gamma0() for _ in values] == values
    assert r.remaining == 0


@given(
    values=st.lists(st.integers(0, 255), max_size=20),
    width=st.just(8),
)
@settings(max_examples=40)
def test_uint_list_roundtrip(values, width):
    bits = BitWriter().write_uint_list(values, width).getvalue()
    assert BitReader(bits).read_uint_list(width) == values


@given(values=st.lists(st.integers(0, 10**6), max_size=15))
@settings(max_examples=40)
def test_gamma_list_roundtrip(values):
    bits = BitWriter().write_gamma_list(values).getvalue()
    assert BitReader(bits).read_gamma_list() == values


@given(
    payload=st.lists(
        st.tuples(st.sampled_from(["bit", "uint", "gamma"]), st.integers(0, 1000)),
        max_size=25,
    )
)
@settings(max_examples=60)
def test_mixed_stream_roundtrip(payload):
    """Interleaved heterogeneous fields decode in order."""
    w = BitWriter()
    for kind, v in payload:
        if kind == "bit":
            w.write_bit(v & 1)
        elif kind == "uint":
            w.write_uint(v, 10)
        else:
            w.write_gamma0(v)
    r = BitReader(w.getvalue())
    for kind, v in payload:
        if kind == "bit":
            assert r.read_bit() == (v & 1)
        elif kind == "uint":
            assert r.read_uint(10) == v
        else:
            assert r.read_gamma0() == v
    assert r.remaining == 0


def test_write_bits_embedding():
    inner = BitWriter().write_gamma(7).getvalue()
    outer = BitWriter().write_bit(1).write_bits(inner).getvalue()
    r = BitReader(outer)
    assert r.read_bit() == 1
    assert r.read_gamma() == 7
