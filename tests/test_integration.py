"""Cross-module integration tests: every algorithm on every workload
family, model-matrix coverage, and cross-engine consistency."""

import random

import pytest

from repro.core import (
    ChildEncodingAdvice,
    DfsWakeUp,
    FastWakeUp,
    Fip06TreeAdvice,
    Flooding,
    LogSpannerAdvice,
    SpannerAdvice,
    SqrtThresholdAdvice,
)
from repro.graphs.generators import (
    barbell_graph,
    caterpillar_graph,
    connected_erdos_renyi,
    cycle_graph,
    grid_graph,
    lollipop_graph,
    path_graph,
    random_tree,
    star_graph,
)
from repro.graphs.traversal import awake_distance
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import (
    Adversary,
    PerEdgeDelay,
    UniformRandomDelay,
    UnitDelay,
    WakeSchedule,
)
from repro.sim.runner import run_wakeup

GRAPHS = {
    "path": lambda: path_graph(18),
    "cycle": lambda: cycle_graph(17),
    "star": lambda: star_graph(19),
    "grid": lambda: grid_graph(4, 5),
    "tree": lambda: random_tree(22, seed=6),
    "er": lambda: connected_erdos_renyi(25, 0.15, seed=8),
    "barbell": lambda: barbell_graph(6, 4),
    "lollipop": lambda: lollipop_graph(8, 5),
    "caterpillar": lambda: caterpillar_graph(5, 3),
}

KT0_CONGEST_ALGOS = [
    Flooding,
    Fip06TreeAdvice,
    SqrtThresholdAdvice,
    ChildEncodingAdvice,
    lambda: SpannerAdvice(k=2),
    LogSpannerAdvice,
]

KT1_LOCAL_ALGOS = [DfsWakeUp]


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize(
    "algo_factory", KT0_CONGEST_ALGOS, ids=lambda f: getattr(f, "name", "spanner2")
)
def test_kt0_congest_matrix(graph_name, algo_factory):
    """Every KT0 CONGEST algorithm wakes every graph family, with the
    CONGEST cap enforced throughout."""
    g = GRAPHS[graph_name]()
    setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
    adversary = Adversary(
        WakeSchedule.singleton(next(iter(g.vertices()))), UnitDelay()
    )
    r = run_wakeup(setup, algo_factory(), adversary, engine="async", seed=2)
    assert r.all_awake
    assert r.max_message_bits <= setup.bandwidth.cap_bits


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_kt1_local_matrix(graph_name):
    g = GRAPHS[graph_name]()
    setup = make_setup(g, knowledge=Knowledge.KT1, bandwidth="LOCAL", seed=1)
    adversary = Adversary(
        WakeSchedule.singleton(next(iter(g.vertices()))), UnitDelay()
    )
    r = run_wakeup(setup, DfsWakeUp(), adversary, engine="async", seed=2)
    assert r.all_awake


@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_fast_wakeup_matrix(graph_name):
    g = GRAPHS[graph_name]()
    setup = make_setup(g, knowledge=Knowledge.KT1, bandwidth="LOCAL", seed=1)
    adversary = Adversary(
        WakeSchedule.singleton(next(iter(g.vertices()))), UnitDelay()
    )
    r = run_wakeup(setup, FastWakeUp(), adversary, engine="sync", seed=2)
    assert r.all_awake


class TestDelayRobustness:
    """Algorithms must stay correct under every delay strategy the
    oblivious adversary can field."""

    @pytest.mark.parametrize(
        "delays",
        [
            UnitDelay(),
            UniformRandomDelay(seed=3),
            PerEdgeDelay(seed=4),
        ],
        ids=["unit", "uniform", "per-edge"],
    )
    @pytest.mark.parametrize(
        "algo_factory",
        [Flooding, Fip06TreeAdvice, ChildEncodingAdvice],
        ids=["flooding", "fip06", "cen"],
    )
    def test_kt0_under_delays(self, delays, algo_factory):
        g = connected_erdos_renyi(30, 0.15, seed=12)
        setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=1)
        adversary = Adversary(WakeSchedule.random_subset(g, 3, seed=5), delays)
        r = run_wakeup(setup, algo_factory(), adversary, engine="async", seed=2)
        assert r.all_awake

    @pytest.mark.parametrize(
        "delays",
        [UnitDelay(), UniformRandomDelay(seed=7), PerEdgeDelay(seed=8)],
        ids=["unit", "uniform", "per-edge"],
    )
    def test_dfs_under_delays(self, delays):
        g = connected_erdos_renyi(30, 0.15, seed=13)
        setup = make_setup(g, knowledge=Knowledge.KT1, seed=1)
        adversary = Adversary(WakeSchedule.random_subset(g, 4, seed=6), delays)
        r = run_wakeup(setup, DfsWakeUp(), adversary, engine="async", seed=2)
        assert r.all_awake


class TestLateWakeups:
    """The adversary may wake sleeping nodes mid-execution; correctness
    and permanence must survive it."""

    @pytest.mark.parametrize(
        "algo_factory,knowledge,bandwidth,engine",
        [
            (Flooding, Knowledge.KT0, "CONGEST", "async"),
            (Fip06TreeAdvice, Knowledge.KT0, "CONGEST", "async"),
            (ChildEncodingAdvice, Knowledge.KT0, "CONGEST", "async"),
            (DfsWakeUp, Knowledge.KT1, "LOCAL", "async"),
            (FastWakeUp, Knowledge.KT1, "LOCAL", "sync"),
        ],
        ids=["flooding", "fip06", "cen", "dfs", "fast"],
    )
    def test_staggered_schedule(self, algo_factory, knowledge, bandwidth, engine):
        g = connected_erdos_renyi(40, 0.12, seed=21)
        verts = list(g.vertices())
        schedule = WakeSchedule.staggered(
            [(0.0, [verts[0]]), (3.0, [verts[10]]), (11.0, [verts[20]])]
        )
        setup = make_setup(g, knowledge=knowledge, bandwidth=bandwidth, seed=1)
        r = run_wakeup(
            setup, algo_factory(), Adversary(schedule, UnitDelay()),
            engine=engine, seed=2,
        )
        assert r.all_awake


class TestCrossEngineConsistency:
    def test_flooding_identical_messages_both_engines(self):
        """With unit delays, flooding's message count and wake times
        coincide across engines (sanity of the time normalization)."""
        g = grid_graph(5, 6)
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=3)
        adversary = Adversary(WakeSchedule.all_at_once([0, 29]), UnitDelay())
        a = run_wakeup(setup, Flooding(), adversary, engine="async", seed=1)
        s = run_wakeup(setup, Flooding(), adversary, engine="sync", seed=1)
        assert a.messages == s.messages
        for v in g.vertices():
            assert a.wake_time[v] == pytest.approx(s.wake_time[v])


class TestWakeTimeInvariant:
    """No algorithm can wake a node faster than its hop distance from
    the awake set (with delays normalized to at most 1)."""

    @pytest.mark.parametrize(
        "algo_factory,knowledge,bandwidth,engine",
        [
            (Flooding, Knowledge.KT0, "CONGEST", "async"),
            (Fip06TreeAdvice, Knowledge.KT0, "CONGEST", "async"),
            (ChildEncodingAdvice, Knowledge.KT0, "CONGEST", "async"),
            (lambda: SpannerAdvice(k=3), Knowledge.KT0, "CONGEST", "async"),
            (DfsWakeUp, Knowledge.KT1, "LOCAL", "async"),
            (FastWakeUp, Knowledge.KT1, "LOCAL", "sync"),
        ],
        ids=["flooding", "fip06", "cen", "spanner", "dfs", "fast"],
    )
    def test_no_faster_than_distance(
        self, algo_factory, knowledge, bandwidth, engine
    ):
        from repro.graphs.traversal import multi_source_bfs

        g = connected_erdos_renyi(35, 0.15, seed=31)
        awake = [list(g.vertices())[0]]
        setup = make_setup(g, knowledge=knowledge, bandwidth=bandwidth, seed=2)
        adversary = Adversary(WakeSchedule.all_at_once(awake), UnitDelay())
        r = run_wakeup(setup, algo_factory(), adversary, engine=engine, seed=4)
        dist = multi_source_bfs(g, awake)
        for v in g.vertices():
            assert r.wake_time[v] >= dist[v] - 1e-9
