"""Tests for the lower-bound graph classes 𝒢 and 𝒢ₖ."""

import pytest

from repro.errors import GraphError
from repro.graphs.traversal import girth, is_connected
from repro.lowerbounds.graph_g import build_class_g, fixed_ids
from repro.lowerbounds.graph_gk import build_class_gk, verify_fact1
from repro.models.knowledge import Knowledge


class TestClassG:
    def test_sizes(self):
        inst = build_class_g(10)
        assert inst.graph.num_vertices == 30
        # complete bipartite U x V plus the matching
        assert inst.graph.num_edges == 100 + 10

    def test_center_degrees(self):
        inst = build_class_g(8)
        for v in inst.centers:
            assert inst.graph.degree(v) == 9  # n + 1

    def test_pendants_have_degree_one(self):
        inst = build_class_g(8)
        for w in inst.pendants:
            assert inst.graph.degree(w) == 1

    def test_matching_is_crucial(self):
        """w_i's only neighbor is v_i: no one else can wake it."""
        inst = build_class_g(6)
        for v, w in inst.matching.items():
            assert inst.graph.neighbors(w) == [v]

    def test_fixed_ids_are_permutation_of_3n(self):
        inst = build_class_g(7)
        ids = fixed_ids(inst)
        assert sorted(ids.values()) == list(range(1, 22))

    def test_setup_defaults_kt0(self):
        inst = build_class_g(5)
        setup = inst.make_setup(seed=1)
        assert setup.knowledge is Knowledge.KT0

    def test_setup_port_randomness_varies(self):
        inst = build_class_g(6)
        a = inst.make_setup(seed=1)
        b = inst.make_setup(seed=2)
        v = inst.centers[0]
        orders_differ = (
            a.ports.neighbors_in_port_order(v)
            != b.ports.neighbors_in_port_order(v)
        )
        assert orders_differ

    def test_invalid_n(self):
        with pytest.raises(GraphError):
            build_class_g(0)

    def test_connected(self):
        assert is_connected(build_class_g(4).graph)


class TestClassGk:
    @pytest.mark.parametrize("k,q", [(3, 2), (3, 3), (5, 2)])
    def test_fact1(self, k, q):
        inst = build_class_gk(k, q)
        checks = verify_fact1(inst)
        assert all(checks.values()), checks

    def test_center_degree_formula(self):
        inst = build_class_gk(3, 3)
        assert inst.center_degree == 3 + 1  # n^{1/k} + 1
        for v in inst.centers:
            assert inst.graph.degree(v) == 4

    def test_edge_count_formula(self):
        inst = build_class_gk(3, 3)
        # q^{k+1} core edges + n pendant edges
        assert inst.graph.num_edges == 3**4 + 27

    def test_girth_preserved_by_pendants(self):
        inst = build_class_gk(3, 3)
        assert girth(inst.graph) >= 8

    def test_ids_fixed_for_centers(self):
        inst = build_class_gk(3, 2)
        s1 = inst.make_setup(seed=1)
        s2 = inst.make_setup(seed=99)
        for j, v in enumerate(inst.centers, start=1):
            assert s1.id_of(v) == 2 * inst.n + j
            assert s2.id_of(v) == 2 * inst.n + j

    def test_other_ids_permuted(self):
        inst = build_class_gk(3, 2)
        s1 = inst.make_setup(seed=1)
        s2 = inst.make_setup(seed=2)
        others = inst.padding + inst.pendants
        assert sorted(s1.id_of(v) for v in others) == list(
            range(1, 2 * inst.n + 1)
        )
        assert any(s1.id_of(v) != s2.id_of(v) for v in others)

    def test_id_swap(self):
        inst = build_class_gk(3, 2)
        a, b = inst.padding[0], inst.pendants[0]
        plain = inst.make_setup(seed=5)
        swapped = inst.make_setup(seed=5, id_swap=(a, b))
        assert plain.id_of(a) == swapped.id_of(b)
        assert plain.id_of(b) == swapped.id_of(a)
        # everything else identical
        for v in inst.padding[1:]:
            assert plain.id_of(v) == swapped.id_of(v)

    def test_setup_is_kt1(self):
        inst = build_class_gk(3, 2)
        assert inst.make_setup(seed=0).knowledge is Knowledge.KT1

    def test_invalid_k(self):
        with pytest.raises(GraphError):
            build_class_gk(1, 3)
