"""Tests for the gossip protocols (Sec 1.3 / footnote 3)."""

import math

import pytest

from repro.analysis.stats import median
from repro.core.gossip import PushGossipWakeUp, PushPullBroadcast
from repro.graphs.generators import (
    complete_graph,
    connected_erdos_renyi,
    lollipop_graph,
    random_regular,
)
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup


def run_push(graph, awake, seed=0, active_rounds=0):
    setup = make_setup(graph, knowledge=Knowledge.KT1, bandwidth="CONGEST", seed=seed)
    adversary = Adversary(WakeSchedule.all_at_once(awake), UnitDelay())
    return run_wakeup(
        setup,
        PushGossipWakeUp(active_rounds=active_rounds),
        adversary,
        engine="sync",
        seed=seed + 1,
        require_all_awake=False,
        max_rounds=10**6,
    )


class TestPushGossip:
    def test_wakes_regular_expander_quickly(self):
        """[SS11]: push-only suffices on regular well-connected graphs —
        O(log n) rounds."""
        g = random_regular(64, 6, seed=3)
        r = run_push(g, [0], seed=1)
        assert r.all_awake
        assert r.time_all_awake <= 8 * math.log2(64)

    def test_wakes_complete_graph(self):
        g = complete_graph(50)
        r = run_push(g, [0], seed=2)
        assert r.all_awake
        assert r.time_all_awake <= 8 * math.log2(50)

    def test_footnote3_lollipop_is_slow(self):
        """Footnote 3: constant expansion does not save push-only —
        the pendant waits ~n rounds (its only neighbor pushes to it
        w.p. 1/n per round)."""
        n = 40
        g = lollipop_graph(n, 1)
        pendant = n
        waits = []
        for seed in range(8):
            r = run_push(g, [3], seed=seed)
            assert r.all_awake
            waits.append(r.wake_time[pendant])
        med = median(waits)
        # expected wait ~ n; allow broad randomness but demand it far
        # exceeds the O(log n) that the clique needs
        assert med >= 2 * math.log2(n)

    def test_budget_exhaustion_reports_failure(self):
        g = lollipop_graph(30, 1)
        r = run_push(g, [0], seed=1, active_rounds=2)
        assert not r.all_awake

    def test_message_count_bounded_by_awake_rounds(self):
        """Each awake node sends at most one push per round."""
        g = complete_graph(20)
        r = run_push(g, [0], seed=4, active_rounds=10)
        assert r.messages <= 20 * 10


class TestPushPullBroadcast:
    def _run(self, graph, source_vertex, seed=0, active_rounds=0):
        setup = make_setup(graph, knowledge=Knowledge.KT1, bandwidth="CONGEST", seed=seed)
        algo = PushPullBroadcast(
            source_id=setup.id_of(source_vertex), active_rounds=active_rounds
        )
        adversary = Adversary(
            WakeSchedule.all_at_once(list(graph.vertices())), UnitDelay()
        )
        run_wakeup(setup, algo, adversary, engine="sync", seed=seed + 1)
        return algo

    def test_completes_on_complete_graph_in_log_rounds(self):
        g = complete_graph(64)
        algo = self._run(g, 0, seed=1)
        assert algo.all_informed()
        assert algo.completion_round() <= 8 * math.log2(64)

    def test_pull_rescues_the_lollipop_pendant(self):
        """The paper's contrast: with pull available (all-awake
        broadcast), even the footnote-3 pendant learns the rumor in
        O(log n) rounds — it pulls from its clique neighbor."""
        n = 40
        g = lollipop_graph(n, 1)
        rounds = []
        for seed in range(5):
            algo = self._run(g, 3, seed=seed)
            assert algo.all_informed()
            rounds.append(algo.completion_round())
        assert median(rounds) <= 6 * math.log2(n)

    def test_source_informed_at_round_zero(self):
        g = complete_graph(10)
        algo = self._run(g, 4, seed=2)
        assert algo.informed_at[4] == 0

    def test_incomplete_within_tiny_budget(self):
        g = connected_erdos_renyi(60, 0.08, seed=5)
        algo = self._run(g, 0, seed=3, active_rounds=1)
        assert not algo.all_informed()
        assert algo.completion_round() is None


def test_push_pull_faster_than_push_only_wakeup_on_lollipop():
    """The headline Sec-1.3 comparison on one instance."""
    n = 40
    g = lollipop_graph(n, 1)
    push = run_push(g, [3], seed=6)
    setup = make_setup(g, knowledge=Knowledge.KT1, bandwidth="CONGEST", seed=6)
    algo = PushPullBroadcast(source_id=setup.id_of(3))
    adversary = Adversary(
        WakeSchedule.all_at_once(list(g.vertices())), UnitDelay()
    )
    run_wakeup(setup, algo, adversary, engine="sync", seed=7)
    assert algo.all_informed()
    assert algo.completion_round() < push.wake_time[n]
