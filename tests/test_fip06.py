"""Tests for the Corollary-1 [FIP06] BFS-tree advising scheme."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fip06 import (
    Fip06TreeAdvice,
    decode_tree_ports,
    encode_tree_ports,
)
from repro.graphs.generators import (
    complete_graph,
    connected_erdos_renyi,
    grid_graph,
    path_graph,
    random_tree,
    star_graph,
)
from repro.graphs.traversal import diameter
from repro.models.knowledge import Knowledge, make_setup
from repro.sim.adversary import Adversary, UnitDelay, WakeSchedule
from repro.sim.runner import run_wakeup


def run_scheme(graph, awake, seed=0, engine="async"):
    setup = make_setup(graph, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=seed)
    adversary = Adversary(WakeSchedule.all_at_once(awake), UnitDelay())
    return run_wakeup(
        setup, Fip06TreeAdvice(), adversary, engine=engine, seed=seed + 1
    )


@given(
    degree=st.integers(1, 40),
    data=st.data(),
)
@settings(max_examples=80)
def test_encoding_roundtrip(degree, data):
    k = data.draw(st.integers(0, degree))
    ports = sorted(
        data.draw(
            st.sets(st.integers(1, degree), min_size=k, max_size=k)
        )
    )
    bits = encode_tree_ports(ports, degree)
    assert decode_tree_ports(bits, degree) == ports


def test_encoding_picks_shorter_form():
    # Tree degree 1 at a degree-100 node: list form wins.
    lone = encode_tree_ports([37], 100)
    assert len(lone) < 100
    # Tree degree = full degree at a star center: bitmap wins.
    full = encode_tree_ports(list(range(1, 101)), 100)
    assert len(full) == 101


class TestBounds:
    def test_messages_at_most_two_per_tree_edge(self):
        for seed in range(3):
            g = connected_erdos_renyi(50, 0.1, seed=seed)
            r = run_scheme(g, [0], seed=seed)
            assert r.all_awake
            assert r.messages <= 2 * (g.num_vertices - 1)

    def test_messages_linear_even_on_dense_graph(self):
        g = complete_graph(40)
        r = run_scheme(g, [0])
        assert r.messages <= 2 * 39

    def test_time_order_diameter(self):
        g = grid_graph(9, 9)
        r = run_scheme(g, [0])
        assert r.time_all_awake <= 2 * diameter(g) + 1

    def test_max_advice_linear(self):
        g = star_graph(80)
        setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
        advice = Fip06TreeAdvice().compute_advice(setup)
        assert advice.max_bits <= g.num_vertices + 2

    def test_avg_advice_logarithmic(self):
        for n in (50, 100, 200):
            g = connected_erdos_renyi(n, 6.0 / n, seed=n)
            setup = make_setup(g, knowledge=Knowledge.KT0, seed=1)
            advice = Fip06TreeAdvice().compute_advice(setup)
            assert advice.average_bits <= 8 * math.log2(n)


class TestCorrectness:
    @pytest.mark.parametrize("engine", ["async", "sync"])
    def test_all_awake_from_any_single_start(self, engine):
        g = random_tree(25, seed=2)
        for start in list(g.vertices())[::5]:
            r = run_scheme(g, [start], engine=engine)
            assert r.all_awake

    def test_multiple_wake_sources(self):
        g = grid_graph(6, 6)
        r = run_scheme(g, [0, 35, 17])
        assert r.all_awake

    def test_congest_cap_respected(self):
        g = complete_graph(30)
        r = run_scheme(g, [0])
        setup = make_setup(g, knowledge=Knowledge.KT0, bandwidth="CONGEST", seed=0)
        assert r.max_message_bits <= setup.bandwidth.cap_bits
